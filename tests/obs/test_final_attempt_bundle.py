"""Telemetry accounting when a pooled task fails on its *final* attempt.

A failed attempt's bundle rides home attached to the exception itself
(`obs.remote.run_captured`), and the dispatch driver merges it when the
failure is recorded.  The invariants pinned here:

* the final attempt's exception-attached bundle merges exactly once —
  a retried-then-exhausted task never double-merges any attempt;
* ``pool.tasks_failed`` increments exactly once per failed attempt, so
  ``max_attempts=N`` of a persistent failure counts N, not 1 and not
  N x attempts-seen;
* a fail-then-succeed task merges one failure bundle and one success
  bundle — nothing is dropped and nothing is duplicated.
"""

import pytest

from repro import obs
from repro.engine.parallel import RunFailure, WorkerPool, run_many
from repro.obs import events as obs_events


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    yield
    obs.reset_metrics()
    obs.reset_report()


# ----------------------------------------------------------------------
# module-level callables (must pickle into fork workers)
# ----------------------------------------------------------------------
def emit_marker_then_raise(tag):
    obs.emit("advisory", source="final-attempt", tag=tag)
    raise ValueError(f"always failing ({tag})")


class RaiseOnceThenReturn:
    """Fails its first attempt (flag file), succeeds afterwards."""

    def __init__(self, flag_path, value):
        self.flag_path = str(flag_path)
        self.value = value

    def __call__(self):
        import os

        obs.emit("advisory", source="final-attempt", tag="attempt")
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("failed")
            raise ValueError("first attempt is doomed")
        return self.value


class SpecRaises:
    def __init__(self, tag):
        self.tag = tag

    def __call__(self):
        emit_marker_then_raise(self.tag)


def _marker_events(log):
    return [e for e in log.by_kind("advisory") if e.source == "final-attempt"]


# ----------------------------------------------------------------------
# map_shards
# ----------------------------------------------------------------------
def test_final_attempt_bundle_merges_exactly_once_per_attempt():
    """Two attempts, both failing: two marker events, two task_errors."""
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="always failing"):
                pool.map_shards(
                    emit_marker_then_raise,
                    [("only",)],
                    max_attempts=2,
                    retry_backoff_s=0.0,
                    label="doomed.shard",
                )
    # one bundle per failed attempt, each merged exactly once
    assert len(_marker_events(log)) == 2
    assert len(log.by_kind(obs_events.TASK_ERROR)) == 2
    assert obs.counter_value("pool.tasks_failed") == 2.0
    assert obs.counter_value("pool.tasks_dispatched") == 2.0
    assert obs.counter_value("pool.tasks_retried") == 1.0


def test_single_attempt_failure_counts_once():
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map_shards(
                    emit_marker_then_raise,
                    [("solo",)],
                    max_attempts=1,
                    label="doomed.shard",
                )
    assert len(_marker_events(log)) == 1
    assert obs.counter_value("pool.tasks_failed") == 1.0
    assert obs.counter_value("pool.tasks_retried") == 0.0


def test_fail_then_succeed_serial_baseline(tmp_path):
    """The serial short-circuit emits in-process: one marker per attempt."""
    task = RaiseOnceThenReturn(tmp_path / "failed.flag", 42)
    with obs_events.recording() as log:
        results = run_many([task], workers=1, max_attempts=2, retry_backoff_s=0.0)
    assert results[0].result == 42
    assert len(_marker_events(log)) == 2


# ----------------------------------------------------------------------
# run_many
# ----------------------------------------------------------------------
def test_run_many_exhausted_spec_counts_each_attempt_once():
    specs = [SpecRaises("a"), SpecRaises("b"), SpecRaises("c")]
    with obs_events.recording() as log:
        results = run_many(
            specs, workers=2, max_attempts=2, retry_backoff_s=0.0
        )
    assert all(isinstance(entry, RunFailure) for entry in results)
    assert all(entry.attempts == 2 for entry in results)
    # 3 specs x 2 attempts: every attempt's bundle merged exactly once
    assert len(_marker_events(log)) == 6
    assert obs.counter_value("pool.tasks_failed") == 6.0


def test_run_many_fail_then_succeed_pooled(tmp_path):
    """Pooled retry: one failure bundle + one success bundle, no dupes."""
    specs = [
        RaiseOnceThenReturn(tmp_path / "flaky.flag", 7),
        SpecRaises("doomed"),
        lambda_free_ok,
    ]
    with obs_events.recording() as log:
        results = run_many(
            specs, workers=2, max_attempts=2, retry_backoff_s=0.0
        )
    assert results[0].result == 7
    assert isinstance(results[1], RunFailure)
    assert results[2].result == "ok"
    # flaky: 1 failed + 1 success marker; doomed: 2 failed markers
    assert len(_marker_events(log)) == 4
    # failures counted once per failed attempt only
    assert obs.counter_value("pool.tasks_failed") == 3.0


def lambda_free_ok():
    return "ok"
