"""Tests for the remaining gallery builders (small-scale data)."""

from repro.analysis import experiments as E
from repro.analysis.report import format_cell
from repro.analysis.gallery import (
    build_figure9,
    build_figure12,
    build_figure14,
    render_all,
)

SMALL = dict(n_instances=96, step_minutes=60)


class TestFormatCell:
    def test_float(self):
        assert format_cell(1.23456) == "1.235"

    def test_int_and_str(self):
        assert format_cell(7) == "7"
        assert format_cell("x") == "x"


class TestBuilders:
    def test_figure9_page(self):
        dc = E.get_datacenter("DC3", **SMALL)
        page = build_figure9(dc)
        assert "Figure 9" in page
        assert page.count("<polyline") >= 4  # >=2 children x 2 panels
        assert "<table>" in page

    def test_figure12_page(self):
        study = E.run_figure12("DC1", **SMALL)
        page = build_figure12(study)
        assert "Figure 12" in page
        assert page.count("<polyline") == 6  # 3 panels x 2 series
        assert "Pre-SmoothOperator" in page

    def test_figure14_page(self):
        results = {
            "DC1": {
                "average": 0.33, "off_peak": 0.37,
                "average_vs_pre": 0.45, "off_peak_vs_pre": 0.47,
            },
            "DC3": {
                "average": 0.17, "off_peak": 0.21,
                "average_vs_pre": 0.45, "off_peak_vs_pre": 0.44,
            },
        }
        page = build_figure14(results)
        assert "Figure 14" in page
        assert page.count("<path") == 4  # 2 DCs x 2 series

    def test_render_all_small(self, tmp_path):
        paths = render_all(tmp_path, **SMALL)
        assert len(paths) == 8
        for path in paths:
            assert path.exists()
            content = path.read_text()
            assert "<svg" in content and "</html>" in content
