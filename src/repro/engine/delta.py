"""Delta-driven fleet state: the incremental-state substrate (Sec. 3.6 online loop).

The paper's deployment is a continuous control loop: instances move one
swap at a time, traces refresh one instance at a time, and every consumer
(aggregates, asynchrony scores, headroom, monitors) needs the *new* fleet
state after each step.  Recomputing the whole fleet per step is O(fleet);
this module provides the O(affected subtree) alternative:

* :class:`Move` / :class:`FleetDelta` — immutable descriptions of what
  changed: instance placements (arrivals, departures, moves, swaps) and
  in-place trace refreshes.
* :func:`dirty_nodes` — the set of power-tree nodes whose aggregate state
  a delta invalidates: the union of the touched leaves' root paths.
* :class:`PlacementState` — the single owner of the live placement.  It
  validates and applies each delta to its own mapping, fans the delta out
  to registered indices (:meth:`~repro.infra.aggregation.NodePowerView.apply_delta`,
  :class:`~repro.core.metrics.AsynchronyIndex`,
  :class:`~repro.infra.headroom.HeadroomIndex`,
  :class:`~repro.robust.headroom.RobustHeadroomIndex`, monitors), and
  emits the ``delta.*`` counters so run reports show how much of the work
  went through the incremental path.

The contract throughout is *exactness*, not approximation: every index
applies a delta by recomputing its dirty entries with the identical
expressions (and identical member orderings) the full rebuild uses, so
any delta sequence yields bit-identical state to a from-scratch pass —
pinned by the golden parity and hypothesis suites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .. import obs

__all__ = [
    "FleetDelta",
    "Move",
    "PlacementState",
    "dirty_nodes",
]


@dataclass(frozen=True)
class Move:
    """One instance placement change.

    ``src_leaf=None`` describes an arrival (first placement), and
    ``dst_leaf=None`` a departure; both set is an ordinary move.
    """

    instance_id: str
    src_leaf: Optional[str]
    dst_leaf: Optional[str]

    def __post_init__(self) -> None:
        if self.src_leaf is None and self.dst_leaf is None:
            raise ValueError("a move needs a source and/or a destination leaf")
        if self.src_leaf == self.dst_leaf:
            raise ValueError("source and destination leaves are identical")


@dataclass(frozen=True)
class FleetDelta:
    """An immutable batch of placement moves and in-place trace refreshes.

    ``trace_updates`` names instances whose rows in the (shared, mutable)
    trace matrix were rewritten in place: membership is unchanged but every
    aggregate containing them is stale.
    """

    moves: Tuple[Move, ...] = ()
    trace_updates: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for move in self.moves:
            if move.instance_id in seen:
                raise ValueError(
                    f"instance {move.instance_id!r} appears in multiple moves; "
                    "split the sequence into separate deltas"
                )
            seen.add(move.instance_id)

    # ------------------------------------------------------------------
    # constructors for the common shapes
    # ------------------------------------------------------------------
    @classmethod
    def swap(cls, instance_a: str, leaf_a: str, instance_b: str, leaf_b: str) -> "FleetDelta":
        """Exchange two instances between their leaves (the Sec. 3.6 action)."""
        return cls(
            moves=(
                Move(instance_a, leaf_a, leaf_b),
                Move(instance_b, leaf_b, leaf_a),
            )
        )

    @classmethod
    def move(cls, instance_id: str, src_leaf: str, dst_leaf: str) -> "FleetDelta":
        return cls(moves=(Move(instance_id, src_leaf, dst_leaf),))

    @classmethod
    def place(cls, instance_id: str, leaf: str) -> "FleetDelta":
        """An arrival: the instance appears on ``leaf``."""
        return cls(moves=(Move(instance_id, None, leaf),))

    @classmethod
    def remove(cls, instance_id: str, leaf: str) -> "FleetDelta":
        """A departure: the instance leaves the fleet."""
        return cls(moves=(Move(instance_id, leaf, None),))

    @classmethod
    def trace_update(cls, *instance_ids: str) -> "FleetDelta":
        """In-place refresh of the named instances' trace rows."""
        return cls(trace_updates=tuple(instance_ids))

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.moves or self.trace_updates)

    def touched_leaves(self, leaf_of=None) -> List[str]:
        """Leaves whose membership or content this delta changes, first-touch order.

        ``leaf_of`` resolves trace-updated instances to their current leaf
        (a mapping or a callable); without it, trace updates contribute no
        leaves — membership moves always carry their leaves explicitly.
        """
        resolve = None
        if leaf_of is not None:
            resolve = leaf_of if callable(leaf_of) else leaf_of.__getitem__
        touched: List[str] = []
        seen = set()
        for move in self.moves:
            for leaf in (move.src_leaf, move.dst_leaf):
                if leaf is not None and leaf not in seen:
                    seen.add(leaf)
                    touched.append(leaf)
        if resolve is not None:
            for instance_id in self.trace_updates:
                leaf = resolve(instance_id)
                if leaf not in seen:
                    seen.add(leaf)
                    touched.append(leaf)
        return touched


def dirty_nodes(topology, touched_leaves: Iterable[str]) -> List[str]:
    """Names of every node whose aggregate a delta invalidates.

    The union of each touched leaf's root path, root-first per leaf,
    deduplicated in first-touch order — exactly the nodes an incremental
    index must refresh, and no others.
    """
    dirty: List[str] = []
    seen = set()
    for leaf_name in touched_leaves:
        for node in topology.node(leaf_name).path_from_root():
            if node.name not in seen:
                seen.add(node.name)
                dirty.append(node.name)
    return dirty


class PlacementState:
    """The single live owner of a placement, fanning deltas out to indices.

    The mutable counterpart of the immutable
    :class:`~repro.infra.assignment.Assignment` — and the placement-side
    sibling of :class:`~repro.engine.state.FleetState` (which owns the
    scenario-run state the policy pipeline edits).  All placement changes
    flow through :meth:`apply`; registered subscribers (anything with an
    ``apply_delta(delta)`` method) observe every delta exactly once, in
    registration order.

    Per-leaf member lists use append-on-arrival order, and
    :meth:`assignment` materializes the mapping leaf-by-leaf in topology
    order — so a :class:`~repro.infra.aggregation.NodePowerView` built
    from the materialized assignment reproduces the incremental indices'
    state bit-for-bit.
    """

    def __init__(self, topology, traces, mapping) -> None:
        if hasattr(mapping, "as_mapping"):  # an Assignment
            mapping = mapping.as_mapping()
        self.topology = topology
        self.traces = traces
        self._leaf_names = {leaf.name for leaf in topology.leaves()}
        self._leaf_of: Dict[str, str] = {}
        self._members: Dict[str, List[str]] = {
            leaf.name: [] for leaf in topology.leaves()
        }
        for instance_id, leaf_name in mapping.items():
            self._validate_arrival(instance_id, leaf_name)
            self._members[leaf_name].append(instance_id)
            self._leaf_of[instance_id] = leaf_name
        self._subscribers: list = []
        self._version = 0

    # ------------------------------------------------------------------
    def _validate_arrival(self, instance_id: str, leaf_name: str) -> None:
        if leaf_name not in self._leaf_names:
            raise KeyError(f"{leaf_name!r} is not a leaf of this topology")
        if instance_id in self._leaf_of:
            raise ValueError(f"{instance_id!r} is already placed")
        if instance_id not in self.traces:
            raise ValueError(f"{instance_id!r} has no trace")
        leaf = self.topology.node(leaf_name)
        if leaf.capacity is not None and len(self._members[leaf_name]) >= leaf.capacity:
            raise ValueError(f"leaf {leaf_name!r} is at capacity ({leaf.capacity})")

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of deltas applied so far."""
        return self._version

    def __len__(self) -> int:
        return len(self._leaf_of)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._leaf_of

    def leaf_of(self, instance_id: str) -> str:
        try:
            return self._leaf_of[instance_id]
        except KeyError:
            raise KeyError(f"{instance_id!r} is not placed")

    def members(self, leaf_name: str) -> List[str]:
        """Current members of a leaf, in arrival order (a copy)."""
        if leaf_name not in self._members:
            raise KeyError(f"{leaf_name!r} is not a leaf of this topology")
        return list(self._members[leaf_name])

    def mapping(self) -> Dict[str, str]:
        """instance id → leaf name, leaf-by-leaf in topology order."""
        return {
            instance_id: leaf_name
            for leaf_name, members in self._members.items()
            for instance_id in members
        }

    def assignment(self):
        """Materialize the current placement as an immutable Assignment.

        Iterates leaves in topology order, members in arrival order — the
        canonical ordering every incremental index maintains — so a full
        rebuild from the returned assignment is bit-identical to the
        incrementally maintained state.
        """
        from ..infra.assignment import Assignment  # engine→infra edge stays lazy

        return Assignment(self.topology, self.mapping())

    # ------------------------------------------------------------------
    def register(self, index):
        """Subscribe an index; it sees every subsequent delta once, in order."""
        self._subscribers.append(index)
        return index

    def apply(self, delta: FleetDelta) -> List[str]:
        """Validate and apply a delta; returns the dirtied node names.

        The batch is validated as a whole before any mutation, so a
        rejected delta leaves the state untouched — and capacity is
        checked against the *net* post-delta occupancy, so a swap into a
        full leaf is legal (the paired departure frees the slot).
        """
        started = time.perf_counter()
        net: Dict[str, int] = {}
        for move in delta.moves:
            instance_id = move.instance_id
            if move.dst_leaf is not None and move.dst_leaf not in self._leaf_names:
                raise KeyError(f"{move.dst_leaf!r} is not a leaf of this topology")
            if move.src_leaf is not None:
                current = self._leaf_of.get(instance_id)
                if current != move.src_leaf:
                    raise ValueError(
                        f"{instance_id!r} is on {current!r}, not {move.src_leaf!r}"
                    )
                net[move.src_leaf] = net.get(move.src_leaf, 0) - 1
            elif instance_id in self._leaf_of:
                raise ValueError(f"{instance_id!r} is already placed")
            if move.dst_leaf is not None:
                if instance_id not in self.traces:
                    raise ValueError(f"{instance_id!r} has no trace")
                net[move.dst_leaf] = net.get(move.dst_leaf, 0) + 1
        for leaf_name, change in net.items():
            if change <= 0:
                continue
            leaf = self.topology.node(leaf_name)
            if (
                leaf.capacity is not None
                and len(self._members[leaf_name]) + change > leaf.capacity
            ):
                raise ValueError(
                    f"leaf {leaf_name!r} is at capacity ({leaf.capacity})"
                )
        final_dst = {move.instance_id: move.dst_leaf for move in delta.moves}
        for instance_id in delta.trace_updates:
            placed = (
                final_dst[instance_id] is not None
                if instance_id in final_dst
                else instance_id in self._leaf_of
            )
            if not placed:
                raise KeyError(f"{instance_id!r} is not placed")
        # Mutate: departures first so paired arrivals land in freed slots;
        # arrivals append in move order, matching the sequential ordering
        # every subscriber maintains.
        for move in delta.moves:
            if move.src_leaf is not None:
                self._members[move.src_leaf].remove(move.instance_id)
                del self._leaf_of[move.instance_id]
        for move in delta.moves:
            if move.dst_leaf is not None:
                self._members[move.dst_leaf].append(move.instance_id)
                self._leaf_of[move.instance_id] = move.dst_leaf
        dirty = dirty_nodes(self.topology, delta.touched_leaves(self._leaf_of))
        for subscriber in self._subscribers:
            subscriber.apply_delta(delta)
        self._version += 1
        obs.count("delta.applied")
        obs.count("delta.moves", len(delta.moves))
        obs.count("delta.nodes_dirtied", len(dirty))
        obs.observe("delta.apply_s", time.perf_counter() - started)
        return dirty

    # ------------------------------------------------------------------
    # conveniences for the common actions
    # ------------------------------------------------------------------
    def swap(self, instance_a: str, instance_b: str) -> List[str]:
        """Exchange two placed instances' leaves."""
        return self.apply(
            FleetDelta.swap(
                instance_a,
                self.leaf_of(instance_a),
                instance_b,
                self.leaf_of(instance_b),
            )
        )

    def move(self, instance_id: str, dst_leaf: str) -> List[str]:
        return self.apply(FleetDelta.move(instance_id, self.leaf_of(instance_id), dst_leaf))

    def place(self, instance_id: str, leaf_name: str) -> List[str]:
        return self.apply(FleetDelta.place(instance_id, leaf_name))

    def remove(self, instance_id: str) -> List[str]:
        return self.apply(FleetDelta.remove(instance_id, self.leaf_of(instance_id)))

    def update_traces(self, *instance_ids: str) -> List[str]:
        """Announce in-place rewrites of the named instances' trace rows."""
        return self.apply(FleetDelta.trace_update(*instance_ids))
