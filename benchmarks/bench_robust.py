"""Spike-burst chaos: robust vs nominal placement → ``BENCH_robust.json``.

Runs the named :data:`repro.robust.chaos.SPIKE_SUITE` head-to-head suite
and gates the robustness claim the package makes: across the Γ ≥ 2
scenarios, the Γ-robust placement must avoid at least 80% of the
spike-induced budget violations the nominal placement suffers, while
provisioning at most 15% more breaker capacity.  The Γ = 0 control must
change nothing (the robust placer falls back to the nominal placement).

The emitted document carries one row per scenario (violations, trips,
avoided fractions, capacity cost, swap counts) plus the aggregate gate
verdict; ``tools/bench_compare.py`` re-applies the same thresholds in CI
and treats a missing committed baseline as a new benchmark to record.

Scale is the validated reference fleet (override with
``BENCH_ROBUST_INSTANCES`` / ``BENCH_ROBUST_STEP_MINUTES``): 360
instances over 48 RPPs, two synthesized weeks, 30-minute sampling.
"""

import os

import pytest

from repro import obs
from repro.robust import SPIKE_SUITE, format_robust_table, run_robust_suite

N_INSTANCES = int(os.environ.get("BENCH_ROBUST_INSTANCES", "360"))
STEP_MINUTES = int(os.environ.get("BENCH_ROBUST_STEP_MINUTES", "30"))
WEEKS = 2

#: Aggregate gate: Γ ≥ 2 scenarios must avoid this share of the nominal
#: placement's violation steps …
MIN_AVOIDED_FRACTION = 0.80
#: … while provisioning at most this much extra breaker capacity.
MAX_CAPACITY_OVERHEAD = 0.15


def _run():
    return run_robust_suite(
        dc_name="DC1",
        n_instances=N_INSTANCES,
        step_minutes=STEP_MINUTES,
        weeks=WEEKS,
    )


@pytest.mark.benchmark(group="robust")
def test_robust_spike_suite(benchmark, emit_report):
    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_report("robust_suite", format_robust_table(outcomes))

    by_name = {o.scenario.name: o for o in outcomes}
    control = by_name["gamma_zero_control"]
    protected = [o for o in outcomes if o.gamma >= 2]
    assert protected, "suite lost its Γ ≥ 2 scenarios"

    # The control pins the fallback: at Γ = 0 the robust placement *is*
    # the nominal placement, so both sides must take identical damage.
    assert control.robust.violation_steps == control.nominal.violation_steps
    assert control.robust.breaker_trips == control.nominal.breaker_trips
    assert control.n_swaps == 0

    # Every protected scenario must have something to protect against —
    # a nominal placement that never violates would make the avoided
    # fraction vacuous.
    for outcome in protected:
        assert outcome.nominal.violation_steps > 0, (
            f"{outcome.scenario.name}: nominal placement survived the "
            "bursts; the scenario no longer stresses anything"
        )
        assert outcome.n_infeasible == 0

    total_nominal = sum(o.nominal.violation_steps for o in protected)
    total_robust = sum(o.robust.violation_steps for o in protected)
    avoided_fraction = 1.0 - total_robust / total_nominal
    max_capacity_overhead = max(o.headroom_sacrifice_fraction for o in protected)

    workload = {
        "n_scenarios": len(outcomes),
        "n_instances": N_INSTANCES,
        "step_minutes": STEP_MINUTES,
        "weeks": WEEKS,
    }
    rows = [
        {
            "scenario": o.scenario.name,
            "gamma": o.gamma,
            "spike_watts": o.scenario.spike_watts,
            "budget_margin": o.scenario.budget_margin,
            "nominal_violation_steps": o.nominal.violation_steps,
            "robust_violation_steps": o.robust.violation_steps,
            "nominal_trips": o.nominal.breaker_trips,
            "robust_trips": o.robust.breaker_trips,
            "avoided_violation_fraction": o.avoided_violation_fraction,
            "avoided_trip_fraction": o.avoided_trip_fraction,
            "capacity_overhead": o.headroom_sacrifice_fraction,
            "n_swaps": o.n_swaps,
        }
        for o in outcomes
    ]
    gate = {
        "avoided_fraction": avoided_fraction,
        "min_avoided_fraction": MIN_AVOIDED_FRACTION,
        "max_capacity_overhead": max_capacity_overhead,
        "capacity_overhead_limit": MAX_CAPACITY_OVERHEAD,
        "passed": (
            avoided_fraction >= MIN_AVOIDED_FRACTION
            and max_capacity_overhead <= MAX_CAPACITY_OVERHEAD
        ),
    }
    obs.update_bench("robust", "workload", workload)
    obs.update_bench("robust", "scenarios", rows)
    obs.update_bench("robust", "gate", gate)

    assert avoided_fraction >= MIN_AVOIDED_FRACTION, (
        f"robust placement avoided only {avoided_fraction:.1%} of "
        f"spike-induced violations (gate: {MIN_AVOIDED_FRACTION:.0%})"
    )
    assert max_capacity_overhead <= MAX_CAPACITY_OVERHEAD, (
        f"robust placement costs {max_capacity_overhead:.1%} extra "
        f"capacity (gate: {MAX_CAPACITY_OVERHEAD:.0%})"
    )
