"""Unit tests for the spike-burst chaos scenarios (small scale).

Quality numbers (≥80% violations avoided at ≤15% capacity overhead) are
gated at reference scale by ``benchmarks/bench_robust.py``; here we pin
the mechanics — scenario validation, burst determinism, the self-restoring
budget audit, and the Γ=0 control taking identical damage on both sides.
"""

import numpy as np
import pytest

from repro.analysis import experiments
from repro.robust import (
    SPIKE_SUITE,
    SpikeScenario,
    format_robust_table,
    run_robust_scenario,
    spike_scenario_by_name,
)
from repro.robust.chaos import _burst_windows

SMALL = dict(n_instances=120, step_minutes=60, weeks=2)


@pytest.fixture(scope="module")
def control_outcome():
    return run_robust_scenario(spike_scenario_by_name("gamma_zero_control"), **SMALL)


@pytest.fixture(scope="module")
def pair_outcome():
    return run_robust_scenario(spike_scenario_by_name("pair_spike"), **SMALL)


# ----------------------------------------------------------------------
# scenario definitions
# ----------------------------------------------------------------------
def test_suite_names_are_unique_and_resolvable():
    names = [s.name for s in SPIKE_SUITE]
    assert len(set(names)) == len(names)
    for name in names:
        assert spike_scenario_by_name(name).name == name
    with pytest.raises(KeyError, match="unknown spike scenario"):
        spike_scenario_by_name("nope")


def test_scenario_validation():
    ok = dict(name="x", description="", gamma=1, burst_group=1)
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "gamma": -1})
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "burst_group": 0})
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "n_bursts": 0})
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "spiky_fraction": 1.5})
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "spike_watts": -1.0})
    with pytest.raises(ValueError):
        SpikeScenario(**{**ok, "budget_margin": -0.1})


def test_burst_windows_deterministic_and_peak_aimed():
    scenario = spike_scenario_by_name("pair_spike")
    values = np.zeros(100)
    values[60] = 5.0
    first = _burst_windows(scenario, "node-a", values)
    again = _burst_windows(scenario, "node-a", values)
    other = _burst_windows(scenario, "node-b", values)
    assert first == again  # same scenario + node → same windows
    assert first != other  # per-node seeding decorrelates background bursts
    assert len(first) == scenario.n_bursts
    assert first[0] == (60, 60 + scenario.burst_duration_samples)
    for start, stop in first:
        assert 0 <= start < stop <= 100


# ----------------------------------------------------------------------
# the control: Γ=0 must change nothing
# ----------------------------------------------------------------------
def test_control_takes_identical_damage_on_both_sides(control_outcome):
    outcome = control_outcome
    assert outcome.gamma == 0
    assert outcome.n_swaps == 0
    assert outcome.robust.violation_steps == outcome.nominal.violation_steps
    assert outcome.robust.breaker_trips == outcome.nominal.breaker_trips
    assert outcome.robust.provisioned_watts == pytest.approx(
        outcome.nominal.provisioned_watts
    )
    assert outcome.avoided_violation_fraction == 0.0
    assert outcome.headroom_sacrifice_fraction == pytest.approx(0.0)


# ----------------------------------------------------------------------
# a protected scenario: structure of the outcome
# ----------------------------------------------------------------------
def test_protected_outcome_is_fully_populated(pair_outcome):
    outcome = pair_outcome
    assert outcome.gamma == 2
    assert outcome.n_infeasible == 0
    for side in (outcome.nominal, outcome.robust):
        assert side.violation_steps >= 0
        assert side.violation_events >= 0
        assert side.provisioned_watts > 0
        assert side.min_headroom_watts <= side.mean_headroom_watts
        assert side.event_counts  # utilization records at minimum
    assert outcome.avoided_violation_fraction <= 1.0
    assert outcome.headroom_per_violation_avoided >= 0.0


def test_scenario_restores_cached_topology_budgets(pair_outcome):
    dc = experiments.get_datacenter("DC1", **SMALL)
    saved = {node.name: node.budget_watts for node in dc.topology.nodes()}
    run_robust_scenario(spike_scenario_by_name("pair_spike"), **SMALL)
    for node in dc.topology.nodes():
        assert node.budget_watts == saved[node.name]


def test_format_robust_table_lists_every_scenario(control_outcome, pair_outcome):
    table = format_robust_table([control_outcome, pair_outcome])
    assert "gamma_zero_control" in table
    assert "pair_spike" in table
    assert "avoided" in table
