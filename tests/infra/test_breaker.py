"""Unit tests for the circuit-breaker model."""

import numpy as np
import pytest

from repro.infra import (
    Assignment,
    BreakerModel,
    NodePowerView,
    audit_view,
    build_topology,
    power_safe,
    two_level_spec,
)
from repro.traces import PowerTrace, TimeGrid, TraceSet


@pytest.fixture
def grid():
    return TimeGrid(0, 10, 60)


def trace_with_overload(grid, start, length, level=20.0, base=5.0):
    values = np.full(grid.n_samples, base)
    values[start : start + length] = level
    return PowerTrace(grid, values)


class TestTripDetection:
    def test_no_trip_under_budget(self, grid):
        model = BreakerModel(tolerance_minutes=10)
        trace = PowerTrace.constant(grid, 5)
        assert model.trips(trace, budget=10) == []

    def test_trip_on_sustained_overload(self, grid):
        model = BreakerModel(tolerance_minutes=30)
        trace = trace_with_overload(grid, start=10, length=5)
        trips = model.trips(trace, budget=10, node_name="n")
        assert len(trips) == 1
        assert trips[0].node_name == "n"
        assert trips[0].start_index == 10
        assert trips[0].duration_samples == 5
        assert trips[0].peak_overload_watts == pytest.approx(10.0)

    def test_short_blip_tolerated(self, grid):
        model = BreakerModel(tolerance_minutes=30)
        trace = trace_with_overload(grid, start=10, length=2)
        assert model.trips(trace, budget=10) == []

    def test_overload_at_end_of_trace(self, grid):
        model = BreakerModel(tolerance_minutes=10)
        trace = trace_with_overload(grid, start=55, length=5)
        trips = model.trips(trace, budget=10)
        assert len(trips) == 1

    def test_multiple_trips(self, grid):
        model = BreakerModel(tolerance_minutes=10)
        values = np.full(grid.n_samples, 5.0)
        values[5:10] = 20
        values[30:35] = 20
        trips = model.trips(PowerTrace(grid, values), budget=10)
        assert len(trips) == 2

    def test_zero_tolerance_trips_immediately(self, grid):
        model = BreakerModel(tolerance_minutes=0)
        trace = trace_with_overload(grid, start=3, length=1)
        assert len(model.trips(trace, budget=10)) == 1

    def test_negative_budget_rejected(self, grid):
        with pytest.raises(ValueError):
            BreakerModel().trips(PowerTrace.zeros(grid), budget=-1)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            BreakerModel(tolerance_minutes=-1)


class TestAudit:
    def test_audit_flags_only_overloaded(self, grid):
        topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=2))
        traces = TraceSet(
            grid,
            ["hot", "cool"],
            np.vstack(
                [
                    trace_with_overload(grid, 5, 10).values,
                    PowerTrace.constant(grid, 1).values,
                ]
            ),
        )
        assignment = Assignment(topo, {"hot": "dc/rpp0", "cool": "dc/rpp1"})
        view = NodePowerView(topo, assignment, traces)
        topo.node("dc/rpp0").budget_watts = 10.0
        topo.node("dc/rpp1").budget_watts = 10.0
        # Root left unbudgeted: should be skipped.
        report = audit_view(view, BreakerModel(tolerance_minutes=10))
        assert set(report) == {"dc/rpp0"}

    def test_audit_clean_view_empty(self, grid):
        topo = build_topology(two_level_spec("dc", leaves=1, leaf_capacity=2))
        traces = TraceSet(grid, ["a"], PowerTrace.constant(grid, 1).values[None, :])
        assignment = Assignment(topo, {"a": "dc/rpp0"})
        view = NodePowerView(topo, assignment, traces)
        topo.node("dc/rpp0").budget_watts = 10.0
        assert audit_view(view) == {}


class TestToleranceEdgeCases:
    def test_tolerance_below_grid_step_trips_on_single_sample(self, grid):
        # 5-minute tolerance on a 10-minute grid: one hot sample persists
        # longer than the breaker tolerates.
        model = BreakerModel(tolerance_minutes=5)
        trace = trace_with_overload(grid, start=7, length=1)
        trips = model.trips(trace, budget=10)
        assert len(trips) == 1
        assert trips[0].duration_samples == 1

    def test_overload_spanning_entire_trace(self, grid):
        model = BreakerModel(tolerance_minutes=30)
        trace = PowerTrace.constant(grid, 20)
        trips = model.trips(trace, budget=10, node_name="dc")
        assert len(trips) == 1
        assert trips[0].start_index == 0
        assert trips[0].duration_samples == grid.n_samples

    def test_trip_exactly_at_tolerance_boundary(self, grid):
        # 30-minute tolerance, 10-minute steps: 3 samples trip, 2 don't.
        model = BreakerModel(tolerance_minutes=30)
        at = trace_with_overload(grid, start=10, length=3)
        below = trace_with_overload(grid, start=10, length=2)
        assert len(model.trips(at, budget=10)) == 1
        assert model.trips(below, budget=10) == []

    def test_power_exactly_at_budget_is_safe(self, grid):
        model = BreakerModel(tolerance_minutes=0)
        assert model.trips(PowerTrace.constant(grid, 10), budget=10) == []


class TestPowerSafe:
    def _view(self, grid, hot):
        topo = build_topology(two_level_spec("dc", leaves=1, leaf_capacity=2))
        trace = trace_with_overload(grid, 5, 10) if hot else PowerTrace.constant(grid, 1)
        traces = TraceSet(grid, ["a"], trace.values[None, :])
        view = NodePowerView(topo, Assignment(topo, {"a": "dc/rpp0"}), traces)
        topo.node("dc/rpp0").budget_watts = 10.0
        return view

    def test_true_for_clean_view(self, grid):
        assert power_safe(self._view(grid, hot=False))

    def test_false_for_overloaded_view(self, grid):
        view = self._view(grid, hot=True)
        assert not power_safe(view, BreakerModel(tolerance_minutes=10))

    def test_matches_audit_view(self, grid):
        view = self._view(grid, hot=True)
        model = BreakerModel(tolerance_minutes=10)
        assert power_safe(view, model) == (audit_view(view, model) == {})
