"""LC load balancing with a guarded per-server load level (Sec. 4.2).

The conversion policy "stops sending queries to [a] server" once its load
exceeds the conversion threshold ``L_conv`` and routes the next query to
other LC servers or a conversion server.  With homogeneous servers and an
even spreader this reduces to: each server carries ``demand / n`` up to
``L_conv``; demand beyond ``n × L_conv`` is unservable (QoS loss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DispatchOutcome:
    """What happened to one step's (or series of steps') LC demand.

    All arrays share the demand's shape.
    """

    served: np.ndarray
    dropped: np.ndarray
    per_server_load: np.ndarray

    def total_served(self) -> float:
        return float(np.sum(self.served))

    def total_dropped(self) -> float:
        return float(np.sum(self.dropped))

    def violation_fraction(self) -> float:
        """Fraction of time steps with dropped (QoS-violating) demand."""
        return float(np.mean(self.dropped > 1e-12))


def dispatch(
    demand: np.ndarray, n_servers: np.ndarray, guard_load: float
) -> DispatchOutcome:
    """Spread ``demand`` over ``n_servers`` servers guarded at ``guard_load``.

    Parameters
    ----------
    demand:
        Demand per step, in fully-loaded-server units.
    n_servers:
        Active LC servers per step (may vary as conversion kicks in).
    guard_load:
        Per-server load ceiling ``L_conv`` ∈ (0, 1].

    Both inputs broadcast; scalars are fine.
    """
    if not 0 < guard_load <= 1:
        raise ValueError("guard_load must be in (0, 1]")
    demand = np.asarray(demand, dtype=np.float64)
    n_servers = np.asarray(n_servers, dtype=np.float64)
    if np.any(demand < 0):
        raise ValueError("demand cannot be negative")
    if np.any(n_servers < 0):
        raise ValueError("server count cannot be negative")
    capacity = n_servers * guard_load
    served = np.minimum(demand, capacity)
    dropped = demand - served
    # Treat vanishing fleets as empty: dividing two denormals can
    # otherwise report a per-server load above the guard.
    meaningful = n_servers > 1e-9
    with np.errstate(divide="ignore", invalid="ignore"):
        per_server = np.where(meaningful, served / np.where(meaningful, n_servers, 1.0), 0.0)
    return DispatchOutcome(
        served=served, dropped=dropped, per_server_load=per_server
    )
