"""Stage-by-stage pipeline profile → ``BENCH_pipeline.json`` / ``BENCH_remap.json``.

Runs the full pipeline (synthesize → score → cluster → place → remap →
evaluate) under the :mod:`repro.obs` tracer and emits machine-readable
benchmark documents at the repo root: per-stage wall/CPU timings with
workload-size fields, plus the remapping loop's swap counters and the
resulting peak-reduction numbers.  CI uploads the ``BENCH_*.json`` files as
artifacts so the perf trajectory accrues per PR.

The fleet size is small enough for CI (override with the
``BENCH_PROFILE_INSTANCES`` environment variable).
"""

import os
import time

import pytest

from repro import obs
from repro.core.pipeline import SmoothOperator, SmoothOperatorConfig
from repro.core.placement import PlacementConfig, WorkloadAwarePlacer
from repro.core.remapping import RemapConfig
from repro.datasets import build_datacenter, dc3_spec
from repro.infra.topology import Level

N_INSTANCES = int(os.environ.get("BENCH_PROFILE_INSTANCES", "480"))
STEP_MINUTES = 10
WEEKS = 3


def _profiled_run():
    obs.reset_metrics()
    with obs.tracing() as tracer:
        with obs.span("profile", instances=N_INSTANCES):
            dc = build_datacenter(
                dc3_spec(n_instances=N_INSTANCES),
                weeks=WEEKS,
                step_minutes=STEP_MINUTES,
            )
            operator = SmoothOperator(
                SmoothOperatorConfig(
                    placement=PlacementConfig(seed=0),
                    remap=RemapConfig(level=Level.RPP, max_swaps=30),
                )
            )
            outcome = operator.optimize(dc.records, dc.topology)
            report = SmoothOperator.evaluate(
                dc.records, dc.baseline, outcome.assignment
            )
    return tracer, dc, outcome, report


@pytest.mark.benchmark(group="profile")
def test_pipeline_profile(benchmark, emit_report):
    tracer, dc, outcome, report = benchmark.pedantic(
        _profiled_run, rounds=1, iterations=1
    )
    stages = obs.stage_timings(tracer)
    names = {row["stage"] for row in stages}
    # The profile must cover the full pipeline.
    for required in ("synthesize", "score", "cluster", "place", "remap"):
        assert required in names, f"stage {required!r} missing from profile"

    counters = obs.snapshot_metrics()["counters"]
    workload = {
        "datacenter": dc.name,
        "instances": len(dc.records),
        "samples_per_trace": dc.records[0].training_trace.grid.n_samples,
        "step_minutes": STEP_MINUTES,
        "weeks": WEEKS,
    }
    obs.update_bench("pipeline", "workload", workload)
    obs.update_bench("pipeline", "stages", stages)
    obs.update_bench(
        "remap",
        "remap",
        {
            "workload": workload,
            "swaps_accepted": outcome.remap.n_swaps,
            "swaps_attempted": counters.get("remap.swaps_attempted", 0.0),
            "candidates_evaluated": counters.get("remap.candidates_evaluated", 0.0),
            "peak_reduction": report.peak_reduction,
            "extra_server_fraction": report.extra_server_fraction,
        },
    )
    emit_report("profile", tracer.render())


@pytest.mark.benchmark(group="profile")
def test_tracing_overhead(benchmark, emit_report):
    """Placement under tracing must cost ≤ 5% over the untraced run."""
    dc = build_datacenter(
        dc3_spec(n_instances=N_INSTANCES), weeks=WEEKS, step_minutes=STEP_MINUTES
    )

    def _place():
        placer = WorkloadAwarePlacer(PlacementConfig(seed=0))
        started = time.perf_counter()
        placer.place(dc.records, dc.topology)
        return time.perf_counter() - started

    def _measure():
        untraced = min(_place() for _ in range(3))
        with obs.tracing():
            traced = min(_place() for _ in range(3))
        return untraced, traced

    untraced, traced = benchmark.pedantic(_measure, rounds=1, iterations=1)
    overhead = traced / untraced - 1.0
    emit_report(
        "profile_overhead",
        f"placement untraced {untraced:.3f}s, traced {traced:.3f}s "
        f"({overhead:+.2%} overhead)",
    )
    # 5% relative plus a small absolute floor so timer jitter on very fast
    # runs cannot fail the guard.
    assert traced <= untraced * 1.05 + 0.05


@pytest.mark.benchmark(group="profile")
def test_telemetry_overhead(benchmark, emit_report):
    """The full observability stack (tracing + events + flight recorder)
    must cost ≤ 10% over a plain pipeline run — the tentpole's overhead
    budget."""
    from repro.obs import events, telemetry

    dc = build_datacenter(
        dc3_spec(n_instances=N_INSTANCES), weeks=WEEKS, step_minutes=STEP_MINUTES
    )

    def _optimize():
        operator = SmoothOperator(
            SmoothOperatorConfig(
                placement=PlacementConfig(seed=0),
                remap=RemapConfig(level=Level.RPP, max_swaps=30),
            )
        )
        started = time.perf_counter()
        operator.optimize(dc.records, dc.topology)
        return time.perf_counter() - started

    def _measure():
        plain = min(_optimize() for _ in range(3))
        with obs.tracing(), events.recording(), telemetry.recording():
            instrumented = min(_optimize() for _ in range(3))
        return plain, instrumented

    plain, instrumented = benchmark.pedantic(_measure, rounds=1, iterations=1)
    overhead = instrumented / plain - 1.0
    emit_report(
        "telemetry_overhead",
        f"optimize plain {plain:.3f}s, instrumented {instrumented:.3f}s "
        f"({overhead:+.2%} overhead)",
    )
    # 10% relative plus an absolute floor against timer jitter.
    assert instrumented <= plain * 1.10 + 0.05
