"""Unit tests for scope-restricted placement."""

import pytest

from repro.baselines import oblivious_placement
from repro.core import PlacementConfig, WorkloadAwarePlacer, scoped_placement
from repro.infra import Level, NodePowerView
from repro.traces import training_trace_set


@pytest.fixture
def config():
    return PlacementConfig(seed=0, kmeans_n_init=2)


class TestScopedPlacement:
    def test_instances_stay_in_their_subtree(self, tiny_records, tiny_topology, config):
        baseline = oblivious_placement(tiny_records, tiny_topology)
        scoped = scoped_placement(tiny_records, baseline, Level.RPP, config)
        for node in tiny_topology.nodes_at_level(Level.RPP):
            before = set(baseline.instances_under(node.name))
            after = set(scoped.instances_under(node.name))
            assert before == after

    def test_places_everything(self, tiny_records, tiny_topology, config):
        baseline = oblivious_placement(tiny_records, tiny_topology)
        scoped = scoped_placement(tiny_records, baseline, Level.SB, config)
        assert len(scoped) == len(tiny_records)

    def test_subtree_peaks_unchanged_at_scope_level(
        self, tiny_records, tiny_topology, config
    ):
        traces = training_trace_set(tiny_records)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        scoped = scoped_placement(tiny_records, baseline, Level.SB, config)
        before = NodePowerView(tiny_topology, baseline, traces)
        after = NodePowerView(tiny_topology, scoped, traces)
        for node in tiny_topology.nodes_at_level(Level.SB):
            assert after.node_peak(node.name) == pytest.approx(
                before.node_peak(node.name)
            )

    def test_improves_below_scope(self, tiny_records, tiny_topology, config):
        traces = training_trace_set(tiny_records)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        scoped = scoped_placement(tiny_records, baseline, Level.SB, config)
        before = NodePowerView(tiny_topology, baseline, traces).sum_of_peaks(Level.RACK)
        after = NodePowerView(tiny_topology, scoped, traces).sum_of_peaks(Level.RACK)
        assert after <= before

    def test_global_at_least_as_good(self, tiny_records, tiny_topology, config):
        """The global placer upper-bounds what scoped placement can do."""
        traces = training_trace_set(tiny_records)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        scoped = scoped_placement(tiny_records, baseline, Level.SB, config)
        global_result = WorkloadAwarePlacer(config).place(tiny_records, tiny_topology)
        scoped_peaks = NodePowerView(tiny_topology, scoped, traces).sum_of_peaks(
            Level.RACK
        )
        global_peaks = NodePowerView(
            tiny_topology, global_result.assignment, traces
        ).sum_of_peaks(Level.RACK)
        assert global_peaks <= scoped_peaks * 1.02

    def test_missing_records_rejected(self, tiny_records, tiny_topology, config):
        baseline = oblivious_placement(tiny_records, tiny_topology)
        with pytest.raises(ValueError):
            scoped_placement(tiny_records[:-1], baseline, Level.SB, config)

    def test_worker_count_never_changes_the_placement(
        self, tiny_records, tiny_topology, config
    ):
        """Subtrees are independent and per-node seeds derive from node
        names, so the pooled fan-out must reproduce the serial mapping."""
        from repro.engine.parallel import shutdown_pools

        baseline = oblivious_placement(tiny_records, tiny_topology)
        serial = scoped_placement(tiny_records, baseline, Level.RPP, config)
        try:
            pooled = scoped_placement(
                tiny_records, baseline, Level.RPP, config, workers=2
            )
        finally:
            shutdown_pools()
        assert pooled.as_mapping() == serial.as_mapping()
