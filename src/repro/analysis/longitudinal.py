"""Longitudinal adaptation: placement quality over months of drift.

Sec. 3.6: "our framework continuously records the I-traces ... and
dynamically re-evaluates the severity of the fragmentation problem ...
[applying] incremental adjustment" when the placement goes stale.  This
module simulates that regime end-to-end:

* service behaviour drifts week over week (peak hours shift, amplitudes
  grow/shrink) while every instance keeps its stable *personality*;
* a :class:`FragmentationMonitor` watches each week's telemetry;
* when it raises advisories, the Sec. 3.6 swap engine runs with a bounded
  migration budget.

The output is the weekly sum-of-peaks trajectory with and without
adaptation — the quantity that decides how often a datacenter must re-run
placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.remapping import RemapConfig, RemappingEngine
from ..infra.aggregation import NodePowerView
from ..infra.assignment import Assignment
from ..traces.instance import InstanceRecord
from ..traces.profiles import ServiceProfile
from ..traces.synthesis import InstancePersonality, TraceSynthesizer, draw_personality
from ..traces.traceset import TraceSet
from .monitoring import FragmentationMonitor, MonitorConfig

#: A drift function: (profile, week_index) -> profile for that week.
DriftFn = Callable[[ServiceProfile, int], ServiceProfile]


def no_drift(profile: ServiceProfile, week: int) -> ServiceProfile:
    return profile


def phase_drift(hours_per_week: float) -> DriftFn:
    """Peak hours slide by ``hours_per_week`` each week (access-pattern
    migration, e.g. a user base shifting across time zones)."""

    def drift(profile: ServiceProfile, week: int) -> ServiceProfile:
        new_hour = (profile.peak_hour + hours_per_week * week) % 24.0
        return replace(profile, peak_hour=new_hour)

    return drift


def amplitude_drift(fraction_per_week: float) -> DriftFn:
    """Dynamic power swing grows by ``fraction_per_week`` weekly (feature
    launches, organic growth)."""

    def drift(profile: ServiceProfile, week: int) -> ServiceProfile:
        factor = (1.0 + fraction_per_week) ** week
        new_peak = profile.idle_watts + profile.swing_watts * factor
        return replace(profile, peak_watts=new_peak)

    return drift


def combined_drift(*drifts: DriftFn) -> DriftFn:
    def drift(profile: ServiceProfile, week: int) -> ServiceProfile:
        for fn in drifts:
            profile = fn(profile, week)
        return profile

    return drift


@dataclass(frozen=True)
class PhaseConvergenceEvent:
    """A subset of instances snaps to a common peak phase from some week on.

    The one drift mode that genuinely ages a *balanced* placement: a
    service-uniform change hits every node alike (the spread is immune),
    and independent random walks diffuse instances apart (reducing
    fragmentation).  But an event that synchronises a *random subset* of
    instances — a feature launch concentrating load on certain shards, a
    batch-window consolidation — lands unevenly across nodes, and the nodes
    that drew many affected instances fragment.  That is what the Sec. 3.6
    swaps repair.
    """

    week: int
    instance_ids: frozenset
    target_offset_hours: float

    def applies(self, instance_id: str, week_index: int) -> bool:
        return week_index >= self.week and instance_id in self.instance_ids


@dataclass
class DriftingFleet:
    """A fleet whose instances keep stable personalities while their
    services drift; emits one week of telemetry at a time.

    Two drift channels:

    * ``drift`` — service-level: the shared activity shape changes.  Note
      that a well-spread placement is largely *immune* to this: every node
      holds the same service mix, so all nodes degrade alike and no swap
      can help (a genuine property, exercised by the tests).
    * ``personality_walk_hours`` / ``personality_walk_amplitude`` —
      instance-level random walks of each instance's phase offset and
      amplitude scale.  This is what actually ages a placement: individual
      shards gain/lose popularity and shift regionally, so nodes diverge
      and the Sec. 3.6 swaps earn their keep.
    """

    records: List[InstanceRecord]
    profiles: Dict[str, ServiceProfile]
    drift: DriftFn
    step_minutes: int = 30
    seed: int = 0
    personality_walk_hours: float = 0.0
    personality_walk_amplitude: float = 0.0
    event: Optional[PhaseConvergenceEvent] = None
    _personalities: Dict[str, InstancePersonality] = field(default_factory=dict)
    _walk_seeds: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        for record in self.records:
            profile = self.profiles[record.service]
            self._personalities[record.instance_id] = draw_personality(profile, rng)
            self._walk_seeds[record.instance_id] = int(rng.integers(2**31))

    def _personality_at(self, instance_id: str, week_index: int) -> InstancePersonality:
        base = self._personalities[instance_id]
        phase = base.phase_offset_hours
        amplitude = base.amplitude_scale
        if week_index > 0 and (
            self.personality_walk_hours > 0.0 or self.personality_walk_amplitude > 0.0
        ):
            walk_rng = np.random.default_rng(self._walk_seeds[instance_id])
            phase_steps = walk_rng.normal(
                0.0, self.personality_walk_hours, size=week_index
            )
            amp_steps = walk_rng.normal(
                0.0, self.personality_walk_amplitude, size=week_index
            )
            phase += float(phase_steps.sum())
            amplitude = float(np.clip(amplitude * np.exp(amp_steps.sum()), 0.2, 3.0))
        if self.event is not None and self.event.applies(instance_id, week_index):
            phase = self.event.target_offset_hours
        return InstancePersonality(
            phase_offset_hours=phase,
            amplitude_scale=amplitude,
            baseline_scale=base.baseline_scale,
        )

    def week(self, week_index: int) -> TraceSet:
        """Synthesise week ``week_index`` of telemetry for the whole fleet."""
        synthesizer = TraceSynthesizer(
            weeks=1,
            step_minutes=self.step_minutes,
            seed=self.seed * 7919 + week_index,
        )
        traces = {}
        for record in self.records:
            profile = self.drift(self.profiles[record.service], week_index)
            traces[record.instance_id] = synthesizer.instance_trace(
                profile, self._personality_at(record.instance_id, week_index)
            )
        return TraceSet.from_traces(traces)


@dataclass
class WeekOutcome:
    """One simulated week's health and any adaptation performed."""

    week: int
    sum_of_peaks: float
    advisories: int
    swaps_performed: int


@dataclass
class LongitudinalResult:
    """The weekly trajectory, with and without adaptation."""

    adaptive: List[WeekOutcome]
    static: List[float]

    def final_gap(self) -> float:
        """Fractional sum-of-peaks advantage of adapting, final week."""
        static_final = self.static[-1]
        adaptive_final = self.adaptive[-1].sum_of_peaks
        if static_final == 0:
            return 0.0
        return 1.0 - adaptive_final / static_final

    def total_swaps(self) -> int:
        return sum(outcome.swaps_performed for outcome in self.adaptive)


class LongitudinalSimulation:
    """Run the monitor → remap loop over ``n_weeks`` of drifting telemetry."""

    def __init__(
        self,
        fleet: DriftingFleet,
        initial_assignment: Assignment,
        *,
        level: str,
        monitor_config: Optional[MonitorConfig] = None,
        remap_config: Optional[RemapConfig] = None,
    ) -> None:
        self.fleet = fleet
        self.initial_assignment = initial_assignment
        self.level = level
        self.monitor_config = monitor_config or MonitorConfig(
            level=level, sum_of_peaks_tolerance=0.02
        )
        self.remap_config = remap_config or RemapConfig(
            level=level, max_swaps=20, candidate_nodes=5
        )

    def run(self, n_weeks: int) -> LongitudinalResult:
        if n_weeks <= 0:
            raise ValueError("n_weeks must be positive")
        topology = self.initial_assignment.topology
        assignment = self.initial_assignment
        monitor = FragmentationMonitor(assignment, self.monitor_config)

        adaptive: List[WeekOutcome] = []
        static: List[float] = []
        for week in range(n_weeks):
            traces = self.fleet.week(week)
            # The static arm never adapts.
            static_view = NodePowerView(topology, self.initial_assignment, traces)
            static.append(static_view.sum_of_peaks(self.level))

            if week == 0:
                snapshot = monitor.calibrate(traces)
                swaps = 0
            else:
                snapshot = monitor.observe(f"week-{week}", traces)
                swaps = 0
                if snapshot.advisories:
                    engine = RemappingEngine(self.remap_config)
                    result = engine.run(assignment, traces)
                    swaps = result.n_swaps
                    if swaps:
                        assignment = result.assignment
                        monitor = FragmentationMonitor(
                            assignment, self.monitor_config
                        )
                        monitor.calibrate(traces)
            view = NodePowerView(topology, assignment, traces)
            adaptive.append(
                WeekOutcome(
                    week=week,
                    sum_of_peaks=view.sum_of_peaks(self.level),
                    advisories=len(snapshot.advisories),
                    swaps_performed=swaps,
                )
            )
        return LongitudinalResult(adaptive=adaptive, static=static)
