"""Machine-readable benchmark emission: ``BENCH_<name>.json`` files.

Benchmarks call :func:`update_bench` to merge one named section into a
repo-root ``BENCH_<name>.json`` document, so CI can upload the files as
artifacts and the perf trajectory accrues per PR.  :func:`stage_timings`
flattens a traced run into the per-stage rows those documents carry.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Union

from .spans import Span, Tracer

__all__ = ["bench_path", "stage_timings", "update_bench"]

#: Repo root: src/repro/obs/bench.py -> three levels up from src/.
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def bench_path(
    name: str, root: Optional[Union[str, pathlib.Path]] = None
) -> pathlib.Path:
    """Path of the ``BENCH_<name>.json`` document under ``root``."""
    base = pathlib.Path(root) if root is not None else REPO_ROOT
    return base / f"BENCH_{name}.json"


def stage_timings(tracer: Tracer) -> List[Dict[str, object]]:
    """Per-stage rows from a traced run, one per distinct span name.

    Same-named spans anywhere in the forest merge: wall/CPU times and
    counters sum, ``calls`` counts the regions merged.  Rows come out in
    first-seen (execution) order.
    """
    order: List[str] = []
    merged: Dict[str, Span] = {}
    for span in tracer.walk():
        row = merged.get(span.name)
        if row is None:
            row = merged[span.name] = Span(span.name)
            row.calls = 0
            order.append(span.name)
        row.wall_s += span.wall_s
        row.cpu_s += span.cpu_s
        row.calls += span.calls
        for key, value in span.counters.items():
            row.counters[key] = row.counters.get(key, 0.0) + value
    rows: List[Dict[str, object]] = []
    for name in order:
        span = merged[name]
        row: Dict[str, object] = {
            "stage": name,
            "wall_s": span.wall_s,
            "cpu_s": span.cpu_s,
            "calls": span.calls,
        }
        if span.counters:
            row["counters"] = dict(span.counters)
        rows.append(row)
    return rows


def update_bench(
    name: str,
    section: str,
    payload: object,
    *,
    root: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Merge ``payload`` as ``section`` into ``BENCH_<name>.json``.

    The document keeps every other section intact, so several benchmarks
    (e.g. ``bench_profile`` stages and ``bench_scale`` scaling curves) can
    contribute to one file.  Returns the path written.
    """
    path = bench_path(name, root)
    document: Dict[str, object] = {"benchmark": name, "sections": {}}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (ValueError, OSError):
            loaded = None
        if isinstance(loaded, dict) and isinstance(loaded.get("sections"), dict):
            document = loaded
    sections = document.setdefault("sections", {})
    sections[section] = payload  # type: ignore[index]
    document["benchmark"] = name
    document["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
