"""Unit tests for the Table 1 comparison matrix."""

import pytest

from repro.analysis import CAPABILITIES, TABLE1, table1_headers, table1_rows


class TestTable1:
    def test_four_approaches(self):
        assert [a.name for a in TABLE1] == [
            "Power Routing",
            "Stat. Multiplexing",
            "DistributedUPS",
            "SmoothOperator",
        ]

    def test_smoothoperator_supports_everything(self):
        smoop = TABLE1[-1]
        assert all(smoop.supports(c) for c in CAPABILITIES)

    def test_no_prior_work_supports_everything(self):
        for approach in TABLE1[:-1]:
            assert not all(approach.supports(c) for c in CAPABILITIES)

    def test_paper_checkmarks(self):
        """Spot-check the cells given in the paper's Table 1."""
        by_name = {a.name: a for a in TABLE1}
        assert by_name["Power Routing"].supports("Balancing local peaks")
        assert not by_name["Power Routing"].supports("Using existing power infra.")
        assert by_name["Stat. Multiplexing"].supports("Using existing power infra.")
        assert not by_name["Stat. Multiplexing"].supports("Using temporal information")
        assert by_name["DistributedUPS"].supports("Using temporal information")
        assert not by_name["DistributedUPS"].supports("Using existing power infra.")

    def test_unknown_capability_rejected(self):
        with pytest.raises(KeyError):
            TABLE1[0].supports("Quantum provisioning")

    def test_rows_render(self):
        rows = table1_rows()
        headers = table1_headers()
        assert len(rows) == len(CAPABILITIES)
        assert all(len(row) == len(headers) for row in rows)
        # SmoothOperator column (last) is all "yes".
        assert all(row[-1] == "yes" for row in rows)
