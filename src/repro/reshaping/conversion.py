"""History-based server conversion: phase detection (Sec. 4.2).

The runtime monitors the average load over the *original* set of LC servers
and distinguishes two phases:

* **Batch-heavy Phase** — average LC load below ``L_conv``; conversion
  servers host batch service instances;
* **LC-heavy Phase** — average LC load approaching ``L_conv``; conversion
  servers convert to LC instances.

Storage disaggregation makes the switch cheap: data lives on dedicated
storage nodes, so no migration and no reboot is required (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.demand import DemandTrace


@dataclass(frozen=True)
class ConversionPolicy:
    """Phase-detection and conversion-sizing parameters.

    ``trigger_fraction`` expresses "when this average LC load increases to a
    level *close to* ``L_conv``" — conversion fires once the average load on
    the original fleet passes ``trigger_fraction × L_conv``.

    ``max_batch_conversion_fraction`` bounds how many conversion servers the
    batch tier can absorb during Batch-heavy Phase, as a fraction of the
    original batch fleet.  A batch scheduler cannot productively feed
    unbounded extra workers (job parallelism, input locality, and storage
    bandwidth on the disaggregated flash tier all bind); extras beyond the
    bound stay in LC mode.  ``None`` removes the bound.
    """

    conversion_threshold: float
    trigger_fraction: float = 0.95
    max_batch_conversion_fraction: Optional[float] = 0.10

    def __post_init__(self) -> None:
        if not 0 < self.conversion_threshold <= 1:
            raise ValueError("conversion_threshold must be in (0, 1]")
        if not 0 < self.trigger_fraction <= 1:
            raise ValueError("trigger_fraction must be in (0, 1]")
        if (
            self.max_batch_conversion_fraction is not None
            and self.max_batch_conversion_fraction < 0
        ):
            raise ValueError("max_batch_conversion_fraction cannot be negative")

    def batch_convertible(self, extra_servers: int, n_batch: int) -> int:
        """How many of ``extra_servers`` may run batch at once."""
        if extra_servers < 0 or n_batch < 0:
            raise ValueError("counts cannot be negative")
        if self.max_batch_conversion_fraction is None:
            return extra_servers
        return min(extra_servers, int(self.max_batch_conversion_fraction * n_batch))

    @property
    def trigger_load(self) -> float:
        return self.conversion_threshold * self.trigger_fraction

    def lc_heavy_mask(self, demand: DemandTrace, n_lc_original: int) -> np.ndarray:
        """Boolean mask of steps in LC-heavy Phase.

        Phase is judged on the average load the demand would put on the
        *original* LC fleet (the paper's monitored signal).
        """
        if n_lc_original <= 0:
            raise ValueError("n_lc_original must be positive")
        avg_load = demand.per_server_load(n_lc_original)
        return avg_load >= self.trigger_load

    def phase_fractions(self, demand: DemandTrace, n_lc_original: int) -> dict:
        """Fraction of time spent in each phase — a workload fingerprint."""
        mask = self.lc_heavy_mask(demand, n_lc_original)
        lc_heavy = float(np.mean(mask))
        return {"lc_heavy": lc_heavy, "batch_heavy": 1.0 - lc_heavy}
