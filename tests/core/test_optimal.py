"""Tests for the exhaustive optimal placer, and heuristics vs optimum."""

import numpy as np
import pytest

from repro.core import (
    GreedyPeakPlacer,
    PlacementConfig,
    WorkloadAwarePlacer,
    optimal_leaf_placement,
)
from repro.infra import NodePowerView, build_topology, two_level_spec
from repro.traces import (
    InstanceRecord,
    PowerTrace,
    ServiceInstance,
    TimeGrid,
    TraceSynthesizer,
    db_profile,
    training_trace_set,
    web_profile,
)


@pytest.fixture
def grid():
    return TimeGrid.for_weeks(1, step_minutes=6 * 60)


def make_record(grid, name, values):
    return InstanceRecord(
        instance=ServiceInstance(name, name.split("-")[0]),
        training_trace=PowerTrace(grid, values),
    )


class TestOptimal:
    def test_figure3_toy_case(self, grid):
        """Two synchronous + two anti-phase instances, two leaves: the
        optimum mixes one of each (the Figure 3 'optimal placement')."""
        n = grid.n_samples
        up = np.linspace(0, 10, n)
        down = np.linspace(10, 0, n)
        records = [
            make_record(grid, "up-0", up),
            make_record(grid, "up-1", up),
            make_record(grid, "down-0", down),
            make_record(grid, "down-1", down),
        ]
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=2))
        result = optimal_leaf_placement(records, topo)
        assert result.sum_of_leaf_peaks == pytest.approx(20.0)
        for leaf in topo.leaves():
            members = result.assignment.instances_on_leaf(leaf.name)
            services = {m.split("-")[0] for m in members}
            assert services == {"up", "down"}

    def test_counts_layouts(self, grid):
        records = [
            make_record(grid, f"x-{i}", np.full(grid.n_samples, float(i + 1)))
            for i in range(4)
        ]
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=2))
        result = optimal_leaf_placement(records, topo)
        # 4!/(2!2!) = 6 distinct balanced layouts.
        assert result.evaluated_layouts == 6

    def test_size_limit(self, grid):
        records = [
            make_record(grid, f"x-{i}", np.ones(grid.n_samples)) for i in range(13)
        ]
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=20))
        with pytest.raises(ValueError):
            optimal_leaf_placement(records, topo)

    def test_empty_rejected(self):
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=2))
        with pytest.raises(ValueError):
            optimal_leaf_placement([], topo)


class TestHeuristicsVsOptimum:
    @pytest.fixture
    def small_fleet(self):
        synthesizer = TraceSynthesizer(weeks=2, step_minutes=120, seed=17)
        return synthesizer.fleet(
            [(web_profile(), 4), (db_profile(), 4)], test_weeks=0
        )

    def test_workload_aware_near_optimal(self, small_fleet):
        topo = build_topology(two_level_spec("cmp", leaves=2, leaf_capacity=4))
        optimum = optimal_leaf_placement(small_fleet, topo)
        traces = training_trace_set(small_fleet)
        heuristic = WorkloadAwarePlacer(
            PlacementConfig(seed=0, kmeans_n_init=4)
        ).place(small_fleet, topo)
        leaf_level = topo.levels()[-1]
        value = NodePowerView(topo, heuristic.assignment, traces).sum_of_peaks(
            leaf_level
        )
        assert value <= optimum.sum_of_leaf_peaks * 1.05

    def test_greedy_near_optimal(self, small_fleet):
        topo = build_topology(two_level_spec("cmp", leaves=2, leaf_capacity=4))
        optimum = optimal_leaf_placement(small_fleet, topo)
        traces = training_trace_set(small_fleet)
        greedy = GreedyPeakPlacer().place(small_fleet, topo)
        leaf_level = topo.levels()[-1]
        value = NodePowerView(topo, greedy, traces).sum_of_peaks(leaf_level)
        assert value <= optimum.sum_of_leaf_peaks * 1.05

    def test_optimum_is_a_lower_bound(self, small_fleet):
        """No heuristic may beat the exhaustive optimum."""
        topo = build_topology(two_level_spec("cmp", leaves=2, leaf_capacity=4))
        optimum = optimal_leaf_placement(small_fleet, topo)
        traces = training_trace_set(small_fleet)
        leaf_level = topo.levels()[-1]
        for assignment in (
            WorkloadAwarePlacer(PlacementConfig(seed=1)).place(
                small_fleet, topo
            ).assignment,
            GreedyPeakPlacer().place(small_fleet, topo),
        ):
            value = NodePowerView(topo, assignment, traces).sum_of_peaks(leaf_level)
            assert value >= optimum.sum_of_leaf_peaks - 1e-9
