"""Unit tests for random and round-robin baselines."""

import pytest

from repro.baselines import (
    oblivious_placement,
    random_placement,
    round_robin_placement,
)
from repro.core import node_asynchrony_scores
from repro.infra import Level, NodePowerView
from repro.traces import training_trace_set


class TestRandomPlacement:
    def test_places_everything(self, tiny_records, tiny_topology):
        assignment = random_placement(tiny_records, tiny_topology, seed=0)
        assert len(assignment) == len(tiny_records)

    def test_seed_determinism(self, tiny_records, tiny_topology):
        a = random_placement(tiny_records, tiny_topology, seed=1).as_mapping()
        b = random_placement(tiny_records, tiny_topology, seed=1).as_mapping()
        assert a == b

    def test_seeds_differ(self, tiny_records, tiny_topology):
        a = random_placement(tiny_records, tiny_topology, seed=1).as_mapping()
        b = random_placement(tiny_records, tiny_topology, seed=2).as_mapping()
        assert a != b

    def test_empty_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            random_placement([], tiny_topology)

    def test_random_beats_oblivious_on_fragmentation(
        self, tiny_records, tiny_topology
    ):
        """Accidental mixing already de-fragments vs pure grouping."""
        traces = training_trace_set(tiny_records)
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        random = random_placement(tiny_records, tiny_topology, seed=3)
        obl = NodePowerView(tiny_topology, oblivious, traces).sum_of_peaks(Level.RACK)
        rnd = NodePowerView(tiny_topology, random, traces).sum_of_peaks(Level.RACK)
        assert rnd < obl


class TestRoundRobin:
    def test_places_everything(self, tiny_records, tiny_topology):
        assignment = round_robin_placement(tiny_records, tiny_topology)
        assert len(assignment) == len(tiny_records)

    def test_spreads_services(self, tiny_records, tiny_topology):
        assignment = round_robin_placement(tiny_records, tiny_topology)
        by_id = {r.instance_id: r.service for r in tiny_records}
        for leaf in tiny_topology.leaves():
            members = assignment.instances_on_leaf(leaf.name)
            if len(members) >= 4:
                assert len({by_id[m] for m in members}) > 1

    def test_improves_asynchrony_vs_oblivious(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        spread = round_robin_placement(tiny_records, tiny_topology)
        obl_scores = node_asynchrony_scores(oblivious, traces, Level.RPP)
        rr_scores = node_asynchrony_scores(spread, traces, Level.RPP)
        assert min(rr_scores.values()) >= min(obl_scores.values())

    def test_empty_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            round_robin_placement([], tiny_topology)
