"""Unit tests for the Prometheus and JSON exporters."""

import numpy as np
import pytest

from repro import obs
from repro.obs import events as obs_events
from repro.obs import export, telemetry
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("remap.swaps_accepted", 3)
    registry.set_gauge("fleet.instances", 480)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.observe("place.node_seconds", value)
    return registry


class TestPrometheusText:
    def test_counter_gets_total_suffix(self):
        text = export.prometheus_text(_populated_registry())
        assert "repro_remap_swaps_accepted_total 3.0" in text
        assert "# TYPE repro_remap_swaps_accepted_total counter" in text

    def test_gauge_and_summary_lines(self):
        text = export.prometheus_text(_populated_registry())
        assert "repro_fleet_instances 480.0" in text
        assert 'repro_place_node_seconds{quantile="0.5"}' in text
        assert "repro_place_node_seconds_sum 10.0" in text
        assert "repro_place_node_seconds_count 4.0" in text

    def test_recorder_rendered_as_path_labelled_gauges(self):
        recorder = telemetry.FlightRecorder()
        recorder.record("dc/rpp0", "utilization", np.array([0.5, 0.75]))
        text = export.prometheus_text(MetricsRegistry(), recorder)
        assert 'repro_node_utilization{path="dc/rpp0"} 0.75' in text

    def test_round_trip_through_parser(self):
        """The acceptance criterion: exposition output parses back exactly."""
        registry = _populated_registry()
        recorder = telemetry.FlightRecorder()
        recorder.record("dc/suite0/rpp1", "utilization", 0.875)
        recorder.record("dc/suite0/rpp1", "slack", 125.0)
        text = export.prometheus_text(registry, recorder)
        parsed = export.parse_prometheus_text(text)
        assert parsed[("repro_remap_swaps_accepted_total", ())] == 3.0
        assert parsed[("repro_fleet_instances", ())] == 480.0
        assert parsed[("repro_place_node_seconds_count", ())] == 4.0
        assert (
            parsed[("repro_node_utilization", (("path", "dc/suite0/rpp1"),))] == 0.875
        )
        assert parsed[("repro_node_slack", (("path", "dc/suite0/rpp1"),))] == 125.0
        # Every non-comment line produced must have parsed into a sample.
        samples = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(parsed) == len(samples)

    def test_label_escaping_round_trips(self):
        recorder = telemetry.FlightRecorder()
        tricky = 'dc/"quoted"\\backslash'
        recorder.record(tricky, "utilization", 1.0)
        text = export.prometheus_text(MetricsRegistry(), recorder)
        parsed = export.parse_prometheus_text(text)
        assert parsed[("repro_node_utilization", (("path", tricky),))] == 1.0

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird name-with.dots")
        text = export.prometheus_text(registry)
        assert "repro_weird_name_with_dots_total" in text

    def test_empty_registry_is_empty_text(self):
        assert export.prometheus_text(MetricsRegistry()) == ""


class TestParser:
    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            export.parse_prometheus_text("not a metric line at all!")

    def test_comments_and_blanks_skipped(self):
        parsed = export.parse_prometheus_text("# HELP x y\n\nmetric 1.5\n")
        assert parsed == {("metric", ()): 1.5}


class TestJsonDocument:
    def test_sections_match_supplied_surfaces(self):
        registry = _populated_registry()
        recorder = telemetry.FlightRecorder()
        recorder.record("dc", "utilization", 0.5)
        log = obs_events.EventLog()
        log.emit(obs_events.VIOLATION, node="dc")
        with obs.tracing() as tracer:
            with obs.span("profile"):
                pass
        document = export.json_document(
            tracer=tracer, registry=registry, recorder=recorder, events=log
        )
        assert set(document) == {"spans", "stages", "metrics", "telemetry", "events"}
        assert document["spans"][0]["name"] == "profile"
        assert document["events"]["count"] == 1
        assert document["events"]["by_kind"] == {"violation": 1}
        assert document["telemetry"]["nodes"]["dc"]["utilization"]["count"] == 1

    def test_empty_call_is_empty_document(self):
        assert export.json_document() == {}

    def test_json_serialisable(self):
        import json

        log = obs_events.EventLog()
        log.emit(obs_events.CAPPING, node="dc", shed=1.5)
        document = export.json_document(events=log)
        json.dumps(document)  # must not raise
