"""Headroom analysis: how many extra servers the unlocked budget hosts.

The paper's headline placement result — "host up to 13% more machines ...
without changing the underlying power infrastructure" — is the translation
of per-node peak reductions into server counts.  An extra server draws power
through *every* ancestor node, so the number that fits at a leaf is limited
by the scarcest headroom along its root path.  :func:`plan_expansion` runs
that hierarchy-aware greedy fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .aggregation import NodePowerView


@dataclass(frozen=True)
class ExpansionPlan:
    """Result of a headroom fill.

    Attributes
    ----------
    extra_per_leaf:
        Extra servers placed at each leaf.
    per_server_watts:
        Peak power reserved per extra server.
    original_count:
        Number of instances already placed (for the percentage).
    """

    extra_per_leaf: Dict[str, int]
    per_server_watts: float
    original_count: int

    @property
    def total_extra(self) -> int:
        return sum(self.extra_per_leaf.values())

    @property
    def expansion_fraction(self) -> float:
        """Extra servers as a fraction of the original fleet (the "13%")."""
        if self.original_count == 0:
            return 0.0
        return self.total_extra / self.original_count


def node_headroom(
    view: NodePowerView,
    *,
    reserve: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Budget minus observed peak for every budgeted node.

    ``reserve`` optionally subtracts a per-node charge from the headroom
    before flooring at zero — e.g. the top-Γ spike-radius sum from
    :func:`repro.robust.headroom.robust_node_loads`, so expansion planning
    never hands out headroom the robust accounting has already promised to
    spikes.
    """
    headroom: Dict[str, float] = {}
    for node in view.topology.nodes():
        if node.budget_watts is None:
            continue
        reserved = reserve.get(node.name, 0.0) if reserve else 0.0
        headroom[node.name] = max(
            0.0, node.budget_watts - view.node_peak(node.name) - reserved
        )
    return headroom


class HeadroomIndex:
    """Per-node nominal headroom maintained under deltas.

    The incremental counterpart of :func:`node_headroom`: instead of a
    full ``recompute()`` after every placement action, call
    :meth:`apply` with the :class:`~repro.engine.delta.FleetDelta` that
    describes the action and only the dirtied budgeted nodes' entries are
    refreshed — with the identical expression the full pass uses, so
    :meth:`headroom` stays bit-identical to ``node_headroom`` over a
    freshly rebuilt view.

    The index drives its view, but shares it safely with other
    subscribers via the view's delta version (whoever sees the delta
    first advances the view; later subscribers reuse ``last_dirty``).
    """

    def __init__(
        self,
        view: NodePowerView,
        *,
        reserve: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.view = view
        self.reserve = dict(reserve) if reserve else {}
        self._seen_version = view.version
        self._budgets: Dict[str, float] = {
            node.name: node.budget_watts
            for node in view.topology.nodes()
            if node.budget_watts is not None
        }
        self._values: Dict[str, float] = {
            name: self._entry(name) for name in self._budgets
        }

    def _entry(self, node_name: str) -> float:
        reserved = self.reserve.get(node_name, 0.0) if self.reserve else 0.0
        return max(
            0.0, self._budgets[node_name] - self.view.node_peak(node_name) - reserved
        )

    # ------------------------------------------------------------------
    def apply(self, delta) -> None:
        """Apply a delta: refresh headroom for the dirtied budgeted nodes."""
        if self.view.version == self._seen_version:
            dirty = self.view.apply_delta(delta)
        elif self.view.version == self._seen_version + 1:
            dirty = list(self.view.last_dirty)
        else:
            raise RuntimeError(
                "view advanced more than one delta ahead of this index"
            )
        self._seen_version = self.view.version
        for name in dirty:
            if name in self._values:
                self._values[name] = self._entry(name)

    #: Subscriber-protocol alias — :class:`~repro.engine.delta.PlacementState`
    #: fan-out calls ``apply_delta``.
    apply_delta = apply

    def headroom(self) -> Dict[str, float]:
        """Current headroom of every budgeted node (topology node order)."""
        return dict(self._values)

    def verify(self) -> None:
        """Cross-check against a full :func:`node_headroom` pass; raise on drift."""
        fresh = node_headroom(self.view, reserve=self.reserve or None)
        if fresh != self._values:
            raise RuntimeError("incremental headroom diverged from full recompute")


def plan_expansion(
    view: NodePowerView,
    per_server_watts: float,
    *,
    respect_leaf_capacity: bool = False,
) -> ExpansionPlan:
    """Greedily fill leaves with extra servers within every ancestor's headroom.

    Every node on the path from a leaf to the root must retain non-negative
    headroom after each extra server is reserved ``per_server_watts`` of peak
    power.  Leaves are visited in descending-headroom order so the fill lands
    where the placement freed the most budget.

    Parameters
    ----------
    view:
        Post-optimisation power view with budgets assigned on all nodes.
    per_server_watts:
        Peak power reserved per added server (conservative: its full peak,
        since a new server's phase behaviour is unknown at planning time).
    respect_leaf_capacity:
        If True, also honour each leaf's physical slot capacity.
    """
    if per_server_watts <= 0:
        raise ValueError("per_server_watts must be positive")
    headroom = node_headroom(view)
    unbudgeted = [n.name for n in view.topology.nodes() if n.budget_watts is None]
    if unbudgeted:
        raise ValueError(f"nodes without budgets: {unbudgeted[:5]}")

    leaves = sorted(
        view.topology.leaves(), key=lambda leaf: headroom[leaf.name], reverse=True
    )
    extra: Dict[str, int] = {leaf.name: 0 for leaf in view.topology.leaves()}
    for leaf in leaves:
        path = [node.name for node in leaf.path_from_root()]
        fit = int(min(headroom[name] for name in path) // per_server_watts)
        if respect_leaf_capacity and leaf.capacity is not None:
            used = len(view.assignment.instances_on_leaf(leaf.name))
            fit = min(fit, max(0, leaf.capacity - used))
        if fit <= 0:
            continue
        extra[leaf.name] = fit
        for name in path:
            headroom[name] -= fit * per_server_watts
    return ExpansionPlan(
        extra_per_leaf=extra,
        per_server_watts=per_server_watts,
        original_count=len(view.assignment),
    )
