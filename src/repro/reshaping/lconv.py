"""Learning the conversion threshold ``L_conv`` (Sec. 4.2).

"First, we learn the guarded per-LC-server load level from the historical
data (training data), namely the load level of each server when LC achieves
satisfactory QoS, and define this load level as the conversion threshold."

With our linear service model, QoS is satisfied as long as a server's load
stays below a saturation point; the threshold is learned as a high
percentile of the historically observed per-server load, optionally padded
and capped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.demand import DemandTrace


@dataclass(frozen=True)
class ThresholdPolicy:
    """How ``L_conv`` is derived from historical load.

    Attributes
    ----------
    percentile:
        Load percentile defining "the level at which QoS was satisfactory".
    headroom:
        Multiplicative pad above the percentile (QoS was satisfactory *at*
        the historical peak, so a small pad is defensible).
    ceiling:
        Hard cap — a server can never be loaded past this.
    """

    percentile: float = 99.0
    headroom: float = 1.0
    ceiling: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.headroom < 1.0:
            raise ValueError("headroom cannot shrink the threshold")
        if not 0 < self.ceiling <= 1.0:
            raise ValueError("ceiling must be in (0, 1]")


def learn_conversion_threshold(
    training_demand: DemandTrace,
    n_lc_servers: int,
    policy: ThresholdPolicy = ThresholdPolicy(),
) -> float:
    """``L_conv`` from a training week of demand spread over the LC fleet."""
    if n_lc_servers <= 0:
        raise ValueError("n_lc_servers must be positive")
    per_server = training_demand.per_server_load(n_lc_servers)
    level = float(np.percentile(per_server, policy.percentile)) * policy.headroom
    if level <= 0:
        raise ValueError("training demand is identically zero; cannot learn L_conv")
    return min(level, policy.ceiling)


def threshold_from_slo(
    latency_model,
    slo_ms: float,
    *,
    percentile: float = 99.0,
    ceiling: float = 1.0,
) -> float:
    """``L_conv`` derived from a latency SLO instead of history.

    The principled alternative to the percentile heuristic: the guarded
    per-server load is the highest utilisation at which the latency model's
    tail still meets the SLO (see :class:`repro.sim.latency.LatencyModel`).
    """
    if not 0 < ceiling <= 1:
        raise ValueError("ceiling must be in (0, 1]")
    load = latency_model.load_for_slo(slo_ms, percentile=percentile)
    if load <= 0:
        raise ValueError("SLO admits no positive load")
    return min(load, ceiling)
