"""Unit tests for the SVG figure toolkit and gallery builders."""

import re

import numpy as np

from repro.analysis.figures import (
    LineSeries,
    _nice_ticks,
    data_table,
    figure_page,
    grouped_bar_chart,
    multi_panel_lines,
    write_figure,
)


class TestTicks:
    def test_clean_steps(self):
        ticks = _nice_ticks(0, 100)
        assert all(t % 20 == 0 or t % 25 == 0 for t in ticks)

    def test_covers_range(self):
        ticks = _nice_ticks(3, 97)
        assert min(ticks) >= 3
        assert max(ticks) <= 97

    def test_degenerate_range(self):
        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 1


class TestLinePanels:
    def test_polyline_per_series(self):
        panels = [
            (
                "p1",
                [
                    LineSeries("a", np.linspace(0, 10, 50)),
                    LineSeries("b", np.linspace(10, 0, 50)),
                ],
            )
        ]
        svg = multi_panel_lines(panels, legend_labels=["a", "b"])
        assert svg.count("<polyline") == 2
        assert "var(--series-1)" in svg
        assert "var(--series-2)" in svg

    def test_band_rendered_as_wash(self):
        values = np.linspace(1, 5, 30)
        panels = [
            ("p", [LineSeries("s", values, band=(values - 0.5, values + 0.5))])
        ]
        svg = multi_panel_lines(panels)
        assert 'opacity="0.10"' in svg  # area wash, never a solid block

    def test_single_series_no_legend(self):
        panels = [("only", [LineSeries("only", np.ones(10))])]
        svg = multi_panel_lines(panels)
        assert "<rect" not in svg  # no legend swatches

    def test_coordinates_inside_viewbox(self):
        panels = [
            ("p", [LineSeries("s", np.abs(np.sin(np.linspace(0, 9, 400))) * 1e4)])
        ]
        svg = multi_panel_lines(panels)
        match = re.search(r'viewBox="0 0 (\d+) (\d+)"', svg)
        width, height = map(float, match.groups())
        for points in re.findall(r'points="([^"]+)"', svg):
            for pair in points.split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= width
                assert -1 <= y <= height + 1

    def test_downsampling_bounds_point_count(self):
        panels = [("p", [LineSeries("s", np.random.default_rng(0).random(5000))])]
        svg = multi_panel_lines(panels)
        points = re.search(r'points="([^"]+)"', svg).group(1)
        assert len(points.split()) <= 400


class TestBars:
    def test_bar_per_value(self):
        svg = grouped_bar_chart(
            ["a", "b"], [("s1", [1, 2]), ("s2", [3, 4])], title="t"
        )
        assert svg.count("<path") == 4
        assert svg.count("<title>") == 4  # native hover tooltips

    def test_legend_present_for_multi_series(self):
        svg = grouped_bar_chart(["a"], [("s1", [1]), ("s2", [2])])
        assert "s1" in svg and "s2" in svg
        assert svg.count("<rect") >= 2  # swatches

    def test_values_on_caps(self):
        svg = grouped_bar_chart(["a"], [("s", [12.5])])
        assert ">12.5<" in svg or ">13<" in svg

    def test_text_uses_text_tokens_not_series_colors(self):
        svg = grouped_bar_chart(["a"], [("s1", [1]), ("s2", [2])])
        for text in re.findall(r"<text[^>]*>", svg):
            assert "--series-" not in text

    def test_bars_capped_at_24px(self):
        svg = grouped_bar_chart(["one"], [("s", [5])], width=840)
        # Bar width appears in the path as the horizontal extent.
        xs = [float(v) for v in re.findall(r"M([\d.]+),", svg)]
        assert xs  # a bar was drawn


class TestPageAssembly:
    def test_page_structure(self):
        page = figure_page("T", "sub", "<svg></svg>", data_table(["h"], [["v"]]))
        assert "<!DOCTYPE html>" in page
        assert "prefers-color-scheme: dark" in page
        assert "<table>" in page
        assert "T</h1>" in page

    def test_table_escapes(self):
        table = data_table(["<h>"], [["<img>"]])
        assert "&lt;h&gt;" in table
        assert "&lt;img&gt;" in table

    def test_write_figure(self, tmp_path):
        path = write_figure(tmp_path / "sub" / "f.html", "<html></html>")
        assert path.exists()
        assert path.read_text() == "<html></html>"


class TestGalleryOnDemoData:
    def test_build_figure6(self, demo_datacenter):
        from repro.analysis.gallery import build_figure6

        page = build_figure6(demo_datacenter, services=["web", "db", "hadoop"])
        assert "Figure 6" in page
        assert page.count("<polyline") == 3
        assert "<table>" in page

    def test_build_figure10(self):
        from repro.analysis.gallery import build_figure10
        from repro.infra import Level

        results = {
            "DC1": {
                Level.SUITE: 0.01, Level.MSB: 0.01, Level.SB: 0.02,
                Level.RPP: 0.025, "extra_servers": 0.03,
            },
            "DC3": {
                Level.SUITE: 0.02, Level.MSB: 0.06, Level.SB: 0.12,
                Level.RPP: 0.15, "extra_servers": 0.10,
            },
        }
        page = build_figure10(results)
        assert page.count("<path") == 8  # 2 DCs x 4 levels
        assert "RPP" in page
