"""Property-based tests for asynchrony scores (Eq. 6-7 invariants)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    asynchrony_score,
    differential_scores_for_node,
    pairwise_asynchrony,
    score_matrix,
)
from repro.traces import PowerTrace, TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


def trace_values(min_peak=1e-3):
    return hnp.arrays(
        dtype=np.float64,
        shape=24,
        elements=st.floats(0, 1e3, allow_nan=False, allow_infinity=False),
    ).filter(lambda v: v.max() > min_peak)


def trace_sets(n_min=2, n_max=6):
    return st.integers(n_min, n_max).flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=(n, 24),
            elements=st.floats(0, 1e3, allow_nan=False, allow_infinity=False),
        ).filter(lambda m: np.all(m.max(axis=1) > 1e-3))
    )


class TestScoreBounds:
    @given(trace_sets())
    def test_score_in_range(self, matrix):
        """1 <= A_M <= |M| (Sec. 3.4)."""
        ts = TraceSet(GRID, [f"t{i}" for i in range(matrix.shape[0])], matrix)
        score = asynchrony_score(ts)
        assert 1.0 - 1e-9 <= score <= matrix.shape[0] + 1e-9

    @given(trace_values())
    def test_self_pair_scores_one(self, values):
        trace = PowerTrace(GRID, values)
        assert pairwise_asynchrony(trace, trace) == pytest.approx(1.0)

    @given(trace_values(), st.floats(0.01, 100, allow_nan=False))
    def test_scaling_one_member_keeps_bounds(self, values, factor):
        a = PowerTrace(GRID, values)
        b = a * factor
        score = pairwise_asynchrony(a, b)
        assert score == pytest.approx(1.0)  # scaled copies peak together

    @given(trace_sets())
    def test_permutation_invariance(self, matrix):
        ts = TraceSet(GRID, [f"t{i}" for i in range(matrix.shape[0])], matrix)
        reversed_ts = ts.subset(list(reversed(ts.ids)))
        assert asynchrony_score(ts) == pytest.approx(asynchrony_score(reversed_ts))

    @given(trace_values(), trace_values())
    def test_pairwise_symmetry(self, va, vb):
        a, b = PowerTrace(GRID, va), PowerTrace(GRID, vb)
        assert pairwise_asynchrony(a, b) == pytest.approx(pairwise_asynchrony(b, a))


class TestScoreMatrixProperties:
    @given(trace_sets(2, 4), trace_sets(2, 3))
    def test_matrix_entries_bounded(self, instances_matrix, basis_matrix):
        instances = TraceSet(
            GRID, [f"i{k}" for k in range(instances_matrix.shape[0])], instances_matrix
        )
        basis = TraceSet(
            GRID, [f"s{k}" for k in range(basis_matrix.shape[0])], basis_matrix
        )
        scores = score_matrix(instances, basis)
        assert np.all(scores >= 1.0 - 1e-9)
        assert np.all(scores <= 2.0 + 1e-9)  # pairwise scores cap at 2


class TestDifferentialScores:
    @given(trace_sets(3, 6))
    def test_differential_scores_bounded(self, matrix):
        ts = TraceSet(GRID, [f"t{i}" for i in range(matrix.shape[0])], matrix)
        scores = differential_scores_for_node(ts)
        for value in scores.values():
            assert 1.0 - 1e-9 <= value <= 2.0 + 1e-9
