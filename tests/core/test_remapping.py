"""Unit tests for the differential-score swap loop (Sec. 3.6)."""

import numpy as np
import pytest

from repro.baselines import oblivious_placement
from repro.core import (
    RemapConfig,
    RemappingEngine,
    node_asynchrony_scores,
)
from repro.infra import Assignment, Level, NodePowerView, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet, training_trace_set


@pytest.fixture
def fragmented():
    """Two leaves: leaf0 has two synchronous 'up' ramps, leaf1 two 'down'."""
    grid = TimeGrid(0, 60, 24)
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    traces = TraceSet(grid, ["u1", "u2", "d1", "d2"], np.vstack([up, up, down, down]))
    assignment = Assignment(
        topo, {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp1"}
    )
    return topo, assignment, traces


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, max_swaps=-1)
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, candidate_nodes=0)
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, min_improvement=-0.1)


class TestSwapLoop:
    def test_fixes_fragmented_toy(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        assert result.n_swaps >= 1
        scores = node_asynchrony_scores(result.assignment, traces, Level.RPP)
        # After remapping both leaves hold one up + one down: score ~2.
        for score in scores.values():
            assert score > 1.8

    def test_reduces_sum_of_peaks(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        before = NodePowerView(topo, assignment, traces).sum_of_peaks(Level.RPP)
        after = NodePowerView(topo, result.assignment, traces).sum_of_peaks(Level.RPP)
        assert after < before

    def test_no_swaps_when_already_optimal(self, fragmented):
        topo, _, traces = fragmented
        optimal = Assignment(
            topo, {"u1": "dc/rpp0", "d1": "dc/rpp0", "u2": "dc/rpp1", "d2": "dc/rpp1"}
        )
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(optimal, traces)
        assert result.n_swaps == 0
        assert result.assignment.as_mapping() == optimal.as_mapping()

    def test_max_swaps_zero(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=0))
        result = engine.run(assignment, traces)
        assert result.n_swaps == 0

    def test_swap_records_gains(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        for swap in result.swaps:
            assert swap.gain_a > 0
            assert swap.gain_b > 0
            assert swap.node_a != swap.node_b

    def test_single_group_is_noop(self):
        grid = TimeGrid(0, 60, 24)
        topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
        traces = TraceSet(grid, ["a"], np.ones((1, 24)))
        assignment = Assignment(topo, {"a": "dc/rpp0"})
        engine = RemappingEngine(RemapConfig(level=Level.RPP))
        result = engine.run(assignment, traces)
        assert result.n_swaps == 0


class TestOnRealFleet:
    def test_improves_oblivious_placement(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        engine = RemappingEngine(
            RemapConfig(level=Level.RPP, max_swaps=20, candidate_nodes=2)
        )
        result = engine.run(oblivious, traces)
        before = NodePowerView(tiny_topology, oblivious, traces).sum_of_peaks(Level.RPP)
        after = NodePowerView(tiny_topology, result.assignment, traces).sum_of_peaks(
            Level.RPP
        )
        assert after <= before
