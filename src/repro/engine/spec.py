"""Declarative scenario specs: what to run, not how to run it.

A :class:`ScenarioSpec` describes one reshaping/chaos scenario — fleet,
demand, fault models, extra-server budget, seed — and maps to a pipeline
of policies/actuators via :func:`build_pipeline`.  A :class:`ChaosSpec`
describes one end-to-end chaos-harness run (synthesize → inject → repair →
place → reshape).  Both are plain picklable dataclasses, so
:func:`repro.engine.parallel.run_many` can fan them out to worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..sim.demand import DemandTrace
from .policy import (
    Actuator,
    ConversionFaultPolicy,
    ConversionPlanPolicy,
    EmergencyCapping,
    Policy,
    PowerSpikePolicy,
    ServerFailurePolicy,
    StaticFleetPolicy,
    ThrottleBoostPlan,
)
from .state import FleetDescription

#: Scenario modes the engine knows how to build a pipeline for.
MODES = (
    "pre",
    "lc_only",
    "conversion",
    "throttle_boost",
    "conversion_chaos",
    "throttle_boost_chaos",
    "spike_chaos",
)

#: The scenario label each mode stamps on its result (matches the legacy
#: runtimes: the chaotic throttle/boost run keeps the clean run's name).
_MODE_LABELS = {
    "pre": "pre",
    "lc_only": "lc_only",
    "conversion": "conversion",
    "throttle_boost": "throttle_boost",
    "conversion_chaos": "conversion_chaos",
    "throttle_boost_chaos": "throttle_boost",
    "spike_chaos": "spike_chaos",
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One reshaping scenario, declaratively.

    ``conversion`` is required for every mode (it carries the dispatch
    threshold); the fault models (``failures``, ``conversion_faults``,
    ``breaker``, ``capping_policy``) only matter for the chaos modes and
    default to the no-fault models when ``None``.  ``policies`` /
    ``actuators`` override the mode's default pipeline when given.
    """

    mode: str
    fleet: FleetDescription
    demand: DemandTrace
    conversion: Any = None
    throttle: Any = None
    dvfs: Any = None
    failures: Any = None
    conversion_faults: Any = None
    breaker: Any = None
    capping_policy: Any = None
    #: Correlated power-spike bursts (a PowerSpikeSchedule); only the
    #: spike_chaos mode consumes it by default.
    spikes: Any = None
    extra_servers: int = 0
    extra_throttle_funded: Optional[int] = None
    seed: int = 0
    name: Optional[str] = None
    policies: Optional[Tuple[Policy, ...]] = None
    actuators: Optional[Tuple[Actuator, ...]] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.extra_servers < 0:
            raise ValueError("extra server count cannot be negative")

    @property
    def scenario_name(self) -> str:
        return self.name if self.name is not None else _MODE_LABELS[self.mode]


def build_pipeline(
    spec: ScenarioSpec,
) -> Tuple[Tuple[Policy, ...], Tuple[Actuator, ...]]:
    """The (policies, actuators) pipeline for one spec.

    Explicit ``spec.policies`` / ``spec.actuators`` win; otherwise the
    mode picks the same plugin sequence the legacy runtimes hard-coded.
    """
    if spec.policies is not None or spec.actuators is not None:
        return tuple(spec.policies or ()), tuple(spec.actuators or ())
    if spec.mode == "pre":
        return (), ()
    if spec.mode == "lc_only":
        return (StaticFleetPolicy(spec.extra_servers),), ()
    if spec.mode == "conversion":
        return (ConversionPlanPolicy(spec.extra_servers),), ()
    if spec.mode == "throttle_boost":
        return (
            ThrottleBoostPlan(spec.extra_servers, spec.extra_throttle_funded),
        ), ()
    if spec.mode == "conversion_chaos":
        return (
            ConversionPlanPolicy(spec.extra_servers),
            ConversionFaultPolicy(),
            ServerFailurePolicy(),
        ), (EmergencyCapping(attach_fault_logs=True),)
    if spec.mode == "throttle_boost_chaos":
        return (
            ThrottleBoostPlan(spec.extra_servers, spec.extra_throttle_funded),
        ), (EmergencyCapping(),)
    if spec.mode == "spike_chaos":
        return (
            ConversionPlanPolicy(spec.extra_servers),
            PowerSpikePolicy(),
        ), (EmergencyCapping(),)
    raise ValueError(f"unknown mode {spec.mode!r}")  # pragma: no cover


@dataclass(frozen=True)
class ChaosSpec:
    """One end-to-end chaos-harness run, declaratively.

    ``scenario`` is a :class:`~repro.faults.harness.ChaosScenario` or its
    name in the default suite.  Sizing fields left ``None`` fall back to
    the chaos harness's experiment-scale defaults.
    """

    scenario: Any
    dc_name: str = "DC1"
    n_instances: Optional[int] = None
    step_minutes: Optional[int] = None
    weeks: Optional[int] = None
    repair_policy: Any = None
    budget_margin: float = 0.05

    def resolved_scenario(self):
        """The ChaosScenario object (looks up string names in the suite)."""
        if isinstance(self.scenario, str):
            from ..faults.harness import scenario_by_name

            return scenario_by_name(self.scenario)
        return self.scenario

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.faults.harness.run_chaos_scenario`."""
        kwargs: Dict[str, Any] = {
            "dc_name": self.dc_name,
            "budget_margin": self.budget_margin,
        }
        for key in ("n_instances", "step_minutes", "weeks", "repair_policy"):
            value = getattr(self, key)
            if value is not None:
                kwargs[key] = value
        return kwargs


def chaos_spec(
    scenario: Any,
    *,
    dc_name: str = "DC1",
    n_instances: Optional[int] = None,
    step_minutes: Optional[int] = None,
    weeks: Optional[int] = None,
    repair_policy: Any = None,
    budget_margin: float = 0.05,
) -> ChaosSpec:
    """The shared scenario loader for the CLI and sweep drivers.

    Accepts a scenario name or object and resolves names eagerly so typos
    fail at build time, not inside a worker process.
    """
    spec = ChaosSpec(
        scenario=scenario,
        dc_name=dc_name,
        n_instances=n_instances,
        step_minutes=step_minutes,
        weeks=weeks,
        repair_policy=repair_policy,
        budget_margin=budget_margin,
    )
    return ChaosSpec(
        scenario=spec.resolved_scenario(),
        dc_name=spec.dc_name,
        n_instances=spec.n_instances,
        step_minutes=spec.step_minutes,
        weeks=spec.weeks,
        repair_policy=spec.repair_policy,
        budget_margin=spec.budget_margin,
    )
