"""Micro-benchmarks of the core computational kernels.

These are honest pytest-benchmark timings (multiple rounds), useful for
tracking performance of the hot paths: asynchrony scoring, balanced
k-means, and tree aggregation.
"""

import numpy as np
import pytest

from repro.core import balanced_kmeans, score_matrix
from repro.traces import TimeGrid, TraceSet


@pytest.fixture(scope="module")
def fleet_matrix():
    rng = np.random.default_rng(0)
    grid = TimeGrid.for_weeks(1, step_minutes=10)
    matrix = rng.random((512, grid.n_samples)) * 200
    return TraceSet(grid, [f"i{k}" for k in range(512)], matrix)


@pytest.fixture(scope="module")
def basis(fleet_matrix):
    return fleet_matrix.subset([f"i{k}" for k in range(10)])


@pytest.mark.benchmark(group="core-ops")
def test_score_matrix_512x10(benchmark, fleet_matrix, basis):
    scores = benchmark(score_matrix, fleet_matrix, basis)
    assert scores.shape == (512, 10)


@pytest.mark.benchmark(group="core-ops")
def test_balanced_kmeans_512(benchmark, fleet_matrix, basis):
    scores = score_matrix(fleet_matrix, basis)
    result = benchmark(balanced_kmeans, scores, 8, seed=0, n_init=2, max_iter=30)
    assert result.sizes().sum() == 512


@pytest.mark.benchmark(group="core-ops")
def test_aggregate_peak(benchmark, fleet_matrix):
    value = benchmark(fleet_matrix.aggregate_peak)
    assert value > 0


@pytest.mark.benchmark(group="core-ops")
def test_placement_end_to_end_small(benchmark):
    """Time the full placer on a 150-instance fleet."""
    from repro.core import PlacementConfig, WorkloadAwarePlacer
    from repro.datasets import build_datacenter, small_demo_spec

    dc = build_datacenter(
        small_demo_spec(n_instances=150, seed=3), weeks=2, step_minutes=30
    )
    placer = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2))

    result = benchmark(placer.place, dc.records, dc.topology)
    assert len(result.assignment) == 150
