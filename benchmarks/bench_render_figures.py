"""Render the figure gallery — viewable HTML/SVG versions of the paper's
figures, written to benchmarks/results/figures/."""

import pytest

from repro.analysis.gallery import render_all


@pytest.mark.benchmark(group="figures")
def test_render_figures(benchmark, emit_report, full_scale):
    paths = benchmark.pedantic(
        render_all,
        args=("benchmarks/results/figures",),
        kwargs=full_scale,
        rounds=1,
        iterations=1,
    )
    listing = "\n".join(str(p) for p in paths)
    emit_report("figures_index", "Figure gallery:\n" + listing)

    assert len(paths) == 8
    for path in paths:
        content = path.read_text()
        assert "<svg" in content
        assert "<table>" in content          # table view always ships
        assert "prefers-color-scheme" in content  # dark mode selected
