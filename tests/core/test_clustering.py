"""Unit tests for k-means and balanced k-means."""

import numpy as np
import pytest

from repro.core import balanced_kmeans, kmeans


def blobs(rng, centers, per_cluster=20, spread=0.1):
    points = []
    for cx, cy in centers:
        points.append(
            np.column_stack(
                [
                    rng.normal(cx, spread, per_cluster),
                    rng.normal(cy, spread, per_cluster),
                ]
            )
        )
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        points = blobs(rng, [(0, 0), (10, 10), (0, 10)])
        result = kmeans(points, 3, seed=1)
        # Every blob should be pure: its 20 members share one label.
        for start in range(0, 60, 20):
            labels = result.labels[start : start + 20]
            assert len(set(labels.tolist())) == 1

    def test_inertia_decreases_with_k(self, rng):
        points = blobs(rng, [(0, 0), (5, 5)])
        i1 = kmeans(points, 1, seed=0).inertia
        i2 = kmeans(points, 2, seed=0).inertia
        assert i2 < i1

    def test_k_equals_n(self, rng):
        points = rng.random((5, 2))
        result = kmeans(points, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one(self, rng):
        points = rng.random((10, 3))
        result = kmeans(points, 1, seed=0)
        assert np.allclose(result.centroids[0], points.mean(axis=0))

    def test_invalid_k(self, rng):
        points = rng.random((5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 6)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_determinism(self, rng):
        points = rng.random((40, 3))
        a = kmeans(points, 4, seed=7)
        b = kmeans(points, 4, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_duplicate_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_members_and_sizes(self, rng):
        points = rng.random((12, 2))
        result = kmeans(points, 3, seed=0)
        assert result.sizes().sum() == 12
        for cluster in range(result.k):
            for idx in result.members(cluster):
                assert result.labels[idx] == cluster

    def test_members_out_of_range(self, rng):
        result = kmeans(rng.random((6, 2)), 2, seed=0)
        with pytest.raises(IndexError):
            result.members(5)


class TestBalancedKMeans:
    def test_sizes_differ_by_at_most_one(self, rng):
        points = rng.random((50, 4))
        result = balanced_kmeans(points, 7, seed=0)
        sizes = result.sizes()
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == 50

    def test_exactly_equal_when_divisible(self, rng):
        points = rng.random((40, 3))
        result = balanced_kmeans(points, 4, seed=0)
        assert np.all(result.sizes() == 10)

    def test_balanced_on_imbalanced_blobs(self, rng):
        """Even if natural clusters are 90/10, output sizes are equal."""
        points = np.vstack(
            [
                rng.normal(0, 0.1, (90, 2)),
                rng.normal(10, 0.1, (10, 2)),
            ]
        )
        result = balanced_kmeans(points, 2, seed=0)
        assert np.all(result.sizes() == 50)

    def test_respects_geometry_when_natural(self, rng):
        points = blobs(rng, [(0, 0), (10, 10)], per_cluster=25)
        result = balanced_kmeans(points, 2, seed=0)
        first_half = set(result.labels[:25].tolist())
        second_half = set(result.labels[25:].tolist())
        assert first_half != second_half
        assert len(first_half) == 1 and len(second_half) == 1

    def test_determinism(self, rng):
        points = rng.random((30, 2))
        a = balanced_kmeans(points, 3, seed=5)
        b = balanced_kmeans(points, 3, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_k_one(self, rng):
        points = rng.random((10, 2))
        result = balanced_kmeans(points, 1, seed=0)
        assert np.all(result.labels == 0)

    def test_k_equals_n(self, rng):
        points = rng.random((6, 2))
        result = balanced_kmeans(points, 6, seed=0)
        assert np.all(result.sizes() == 1)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            balanced_kmeans(rng.random((4, 2)), 5)
        with pytest.raises(ValueError):
            balanced_kmeans(np.zeros(4), 1)
