"""Command-line interface: regenerate paper experiments from the terminal.

Usage::

    smoothoperator list
    smoothoperator fig10 [--instances N]
    smoothoperator fig13
    smoothoperator table1
    smoothoperator chaos [--instances N] [--workers N] [--task-timeout S]
    smoothoperator place [--gamma N] [--instances N]
    smoothoperator robust [--instances N]
    smoothoperator profile [--instances N] [--json]
    smoothoperator monitor [--scenario NAME] [--events PATH] [--instances N]
    smoothoperator report [--report PATH] [--run --workers N] [--json]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import experiments
from .analysis.comparison import table1_headers, table1_rows
from .analysis.report import format_percent, format_table


def _cmd_fig5(args: argparse.Namespace) -> None:
    for name in experiments.DATACENTER_NAMES:
        dc = experiments.get_datacenter(name, n_instances=args.instances)
        rows = [
            (service, format_percent(share))
            for service, share in experiments.run_figure5(dc)
        ]
        print(format_table(["service", "share"], rows, title=f"Figure 5 — {name}"))
        print()


def _cmd_fig6(args: argparse.Namespace) -> None:
    dc = experiments.get_datacenter("DC1", n_instances=args.instances)
    summary = experiments.run_figure6(dc)
    rows = [
        (
            service,
            f"{stats['median_peak']:.1f}",
            f"{stats['median_valley']:.1f}",
            format_percent(stats["diurnal_swing"]),
            format_percent(stats["heterogeneity"]),
        )
        for service, stats in summary.items()
    ]
    print(
        format_table(
            ["service", "median peak", "median valley", "diurnal swing", "heterogeneity"],
            rows,
            title="Figure 6 — diurnal patterns (DC1)",
        )
    )


def _cmd_fig10(args: argparse.Namespace) -> None:
    result = experiments.run_figure10(n_instances=args.instances)
    levels = ["suite", "msb", "sb", "rpp"]
    rows = []
    for name, reductions in result.items():
        rows.append(
            [name]
            + [format_percent(reductions.get(level, 0.0)) for level in levels]
            + [format_percent(reductions["extra_servers"])]
        )
    print(
        format_table(
            ["DC"] + [level.upper() for level in levels] + ["extra servers"],
            rows,
            title="Figure 10 — peak power reduction by level",
        )
    )


def _cmd_fig11(args: argparse.Namespace) -> None:
    for name in experiments.DATACENTER_NAMES:
        grid = experiments.run_figure11(name, n_instances=args.instances)
        labels = sorted(next(iter(grid.values())).keys())
        rows = [
            [level] + [f"{grid[level][label]:.3f}" for label in labels]
            for level in grid
        ]
        print(format_table(["level"] + labels, rows, title=f"Figure 11 — {name}"))
        print()


def _cmd_fig13(args: argparse.Namespace) -> None:
    result = experiments.run_figure13(n_instances=args.instances)
    rows = [
        [
            name,
            format_percent(row["lc_conversion"]),
            format_percent(row["batch_conversion"]),
            format_percent(row["lc_throttle_boost"]),
            format_percent(row["batch_throttle_boost"]),
        ]
        for name, row in result.items()
    ]
    print(
        format_table(
            ["DC", "LC (conv)", "Batch (conv)", "LC (+thr/boost)", "Batch (+thr/boost)"],
            rows,
            title="Figure 13 — throughput improvement",
        )
    )


def _cmd_fig14(args: argparse.Namespace) -> None:
    result = experiments.run_figure14(n_instances=args.instances)
    rows = [
        [name, format_percent(row["average"]), format_percent(row["off_peak"])]
        for name, row in result.items()
    ]
    print(
        format_table(
            ["DC", "avg slack reduction", "off-peak slack reduction"],
            rows,
            title="Figure 14 — power slack reduction",
        )
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    print(format_table(table1_headers(), table1_rows(), title="Table 1"))


def _cmd_figures(args: argparse.Namespace) -> None:
    from .analysis.gallery import render_all

    paths = render_all("figures", n_instances=args.instances)
    for path in paths:
        print(path)


def _cmd_safety(args: argparse.Namespace) -> None:
    study = experiments.run_power_safety("DC3", n_instances=args.instances)
    rows = [
        [
            label,
            report.total_event_steps,
            f"{report.lc_energy_shed / 1e3:.1f}",
            f"{report.batch_energy_shed / 1e3:.1f}",
        ]
        for label, report in study.reports.items()
    ]
    print(
        format_table(
            ["placement", "capping events", "LC shed (kW-min)", "batch shed (kW-min)"],
            rows,
            title="Power safety — capping under an LC surge (DC3)",
        )
    )


def _chaos_specs(args: argparse.Namespace, scenarios=None) -> list:
    """Shared scenario loader for the chaos and monitor commands.

    Resolves names eagerly (typos fail before any work starts) and stamps
    the CLI sizing onto declarative :class:`repro.engine.ChaosSpec`s.
    """
    from .engine import chaos_spec
    from .faults.harness import DEFAULT_SUITE

    scenarios = scenarios if scenarios is not None else DEFAULT_SUITE
    return [
        chaos_spec(scenario, dc_name="DC1", n_instances=args.instances)
        for scenario in scenarios
    ]


def _cmd_chaos(args: argparse.Namespace) -> None:
    from .engine import run_many
    from .faults import format_chaos_table

    specs = _chaos_specs(args)
    outcomes = [
        artifacts.result
        for artifacts in run_many(specs, workers=args.workers)
    ]
    print(format_chaos_table(outcomes))
    failed = [o.scenario.name for o in outcomes if not o.passed]
    if failed:
        print(f"\nFAILED scenarios: {', '.join(failed)}")
        raise SystemExit(1)


def _cmd_place(args: argparse.Namespace) -> None:
    """Run the (Γ-robust) placement pipeline and print a placement summary."""
    import numpy as np

    from .core.pipeline import SmoothOperator, SmoothOperatorConfig
    from .core.placement import PlacementConfig
    from .infra.aggregation import NodePowerView
    from .infra.topology import Level
    from .robust.placement import RobustPlacementConfig

    dc = experiments.get_datacenter("DC1", n_instances=args.instances)
    operator = SmoothOperator(
        SmoothOperatorConfig(
            placement=PlacementConfig(seed=0, score_workers=args.workers),
            robust=RobustPlacementConfig(gamma=args.gamma),
            workers=args.workers,
        )
    )
    outcome = operator.optimize(dc.records, dc.topology)
    robust = outcome.robust
    view = NodePowerView(dc.topology, outcome.assignment, dc.test_traces())
    rows = []
    for node in dc.topology.nodes_at_level(Level.RPP):
        acc = robust.index.accountants[node.name]
        rows.append(
            [
                node.name,
                f"{view.node_peak(node.name):.0f}",
                f"{acc.nominal_sum:.0f}",
                f"{acc.top_sum:.0f}",
            ]
        )
    print(
        format_table(
            ["RPP", "test-week peak (W)", "Σ nominal (W)", f"top-{args.gamma} radii (W)"],
            rows,
            title=f"Γ-robust placement — DC1, gamma={args.gamma}",
        )
    )
    spike_charge = np.array([float(row[3]) for row in rows])
    print()
    print(f"instances placed : {len(dc.records)}")
    print(f"strategy         : {'nominal fallback' if args.gamma == 0 else 'swap'}")
    print(f"swaps performed  : {robust.n_swaps}")
    print(
        "spike charge     : "
        f"max {spike_charge.max():.0f} W, mean {spike_charge.mean():.0f} W per RPP"
    )


def _cmd_robust(args: argparse.Namespace) -> None:
    """Run the spike-burst chaos suite: robust vs. nominal placement."""
    from .robust.chaos import format_robust_table, run_robust_suite

    outcomes = run_robust_suite(n_instances=args.instances)
    print(format_robust_table(outcomes))


def _cmd_predictability(args: argparse.Namespace) -> None:
    from .traces import predictability_report

    rows = []
    for name in experiments.DATACENTER_NAMES:
        dc = experiments.get_datacenter(name, n_instances=args.instances)
        report = predictability_report(dc.records)
        rows.append(
            [
                name,
                format_percent(report.mean_mape),
                format_percent(report.mean_abs_peak_error),
                f"{report.mean_peak_time_error_minutes:.0f} min",
            ]
        )
    print(
        format_table(
            ["DC", "mean MAPE", "mean |peak error|", "mean peak-time error"],
            rows,
            title="Week-ahead predictability (training avg -> test week)",
        )
    )


def _cmd_profile(args: argparse.Namespace) -> None:
    """Run the full pipeline under tracing and print the span-tree profile."""
    import json

    from . import obs
    from .core.pipeline import SmoothOperator, SmoothOperatorConfig
    from .core.placement import PlacementConfig
    from .core.remapping import RemapConfig
    from .datasets import build_datacenter, dc1_spec
    from .infra.topology import Level

    obs.reset_metrics()
    with obs.tracing() as tracer:
        with obs.span("profile", instances=args.instances):
            # Build from scratch (no experiment cache) so synthesis is traced.
            dc = build_datacenter(
                dc1_spec(n_instances=args.instances), weeks=3, step_minutes=30
            )
            operator = SmoothOperator(
                SmoothOperatorConfig(
                    placement=PlacementConfig(seed=0),
                    remap=RemapConfig(
                        level=Level.RPP,
                        max_swaps=20,
                        verify_every=args.verify_every,
                    ),
                )
            )
            outcome = operator.optimize(dc.records, dc.topology)
            report = SmoothOperator.evaluate(
                dc.records, dc.baseline, outcome.assignment
            )

    if args.json:
        payload = {
            "workload": {
                "datacenter": dc.name,
                "instances": len(dc.records),
                "samples_per_trace": dc.records[0].training_trace.grid.n_samples,
                "swaps_accepted": outcome.remap.n_swaps if outcome.remap else 0,
            },
            "spans": tracer.to_dict()["spans"],
            "stages": obs.stage_timings(tracer),
            "metrics": obs.snapshot_metrics(),
            "peak_reduction": report.peak_reduction,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(tracer.render())
    print()
    swaps = outcome.remap.n_swaps if outcome.remap else 0
    print(f"instances placed : {len(dc.records)}")
    print(f"swaps accepted   : {swaps}")
    reductions = ", ".join(
        f"{level}={format_percent(value)}"
        for level, value in report.peak_reduction.items()
    )
    print(f"peak reduction   : {reductions}")


def _cmd_monitor(args: argparse.Namespace) -> None:
    """Replay one chaos scenario under full telemetry and dump its record.

    Runs the scenario with the tracer, the structured event log, and the
    flight recorder all installed, renders a per-level utilization /
    violation table plus event counts, and writes the JSONL event log.
    """
    from . import obs
    from .engine import execute
    from .obs import events as obs_events
    from .obs import telemetry as obs_telemetry

    [spec] = _chaos_specs(args, scenarios=[args.scenario])
    scenario = spec.scenario
    with obs.tracing(), obs_events.recording() as log, obs_telemetry.recording() as recorder:
        outcome = execute(spec).result

    dc = experiments.get_datacenter("DC1", n_instances=args.instances)
    level_of = {node.name: node.level for node in dc.topology.nodes()}
    # Root-to-leaf level order, with non-topology paths (e.g. the
    # "reshape/<name>" scenario aggregates) grouped last.
    level_order = dc.topology.levels() + ["scenario"]

    def _blank() -> dict:
        return {"nodes": 0, "max_util": 0.0, "violations": 0, "advisories": 0}

    per_level: dict = {}
    for path, series in recorder.summary().items():
        level = level_of.get(path, "scenario")
        agg = per_level.setdefault(level, _blank())
        agg["nodes"] += 1
        util = series.get("utilization", {})
        if util.get("count"):
            agg["max_util"] = max(agg["max_util"], util["max"])
    for event in log:
        if event.kind not in (obs_events.VIOLATION, obs_events.ADVISORY):
            continue
        level = level_of.get(event.fields.get("node"), "scenario")
        agg = per_level.setdefault(level, _blank())
        if event.kind == obs_events.VIOLATION:
            agg["violations"] += 1
        else:
            agg["advisories"] += 1

    ordered = [lvl for lvl in level_order if lvl in per_level] + sorted(
        set(per_level) - set(level_order)
    )
    rows = [
        [
            level,
            per_level[level]["nodes"],
            f"{per_level[level]['max_util']:.3f}",
            per_level[level]["violations"],
            per_level[level]["advisories"],
        ]
        for level in ordered
    ]
    print(
        format_table(
            ["level", "nodes", "max utilization", "violations", "advisories"],
            rows,
            title=f"Monitor — chaos scenario {scenario.name!r}",
        )
    )
    print()
    counts = log.counts_by_kind()
    print(
        format_table(
            ["event kind", "count"],
            [[kind, counts[kind]] for kind in sorted(counts)],
            title="Structured events",
        )
    )
    path = log.write(args.events)
    print(f"\n{len(log)} events written to {path}")
    print(f"scenario passed  : {outcome.passed}")


def _cmd_report(args: argparse.Namespace) -> None:
    """Render a unified run report for the parallel data plane.

    By default reads a previously written RunReport JSON (produced by a
    run with ``REPRO_RUN_REPORT=<path>`` set, or by a benchmark).  With
    ``--run``, executes the chaos suite on a worker pool right now and
    reports on that run — the quickest way to see per-worker utilization
    and shard imbalance on this machine.
    """
    import json
    import pathlib

    from . import obs

    if args.run:
        from .engine import run_many

        obs.reset_report()
        specs = _chaos_specs(args)
        workers = max(2, args.workers)
        with obs.tracing():
            run_many(specs, workers=workers)
            report = obs.build_report()
        if args.report:
            path = pathlib.Path(args.report)
            path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
            print(f"run report written to {path}\n", file=sys.stderr)
    else:
        path = pathlib.Path(args.report)
        if not path.exists():
            raise SystemExit(
                f"no run report at {path} — produce one with "
                f"REPRO_RUN_REPORT={path} set during a parallel run, "
                "or use 'smoothoperator report --run'"
            )
        report = json.loads(path.read_text())
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return
    print(obs.render_report(report))


_COMMANDS = {
    "chaos": _cmd_chaos,
    "monitor": _cmd_monitor,
    "profile": _cmd_profile,
    "report": _cmd_report,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig13": _cmd_fig13,
    "fig14": _cmd_fig14,
    "table1": _cmd_table1,
    "figures": _cmd_figures,
    "place": _cmd_place,
    "robust": _cmd_robust,
    "safety": _cmd_safety,
    "predictability": _cmd_predictability,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="smoothoperator",
        description="Regenerate SmoothOperator (ASPLOS 2018) experiments.",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS) + ["list"],
        help="experiment to run",
    )
    parser.add_argument(
        "--instances",
        type=int,
        default=experiments.DEFAULT_N_INSTANCES,
        help="fleet size per datacenter",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (profile command)",
    )
    parser.add_argument(
        "--scenario",
        default="surge_overload",
        help="chaos scenario to replay (monitor command)",
    )
    parser.add_argument(
        "--events",
        default="events.jsonl",
        help="JSONL event-log output path (monitor command)",
    )
    parser.add_argument(
        "--gamma",
        type=int,
        default=2,
        help="Γ protection level for robust placement (place command)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel stages (chaos, place, report commands)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "hard per-task deadline in seconds for pooled stages: hung "
            "workers are killed and the task retried; a soft (straggler) "
            "threshold of a quarter of this is set alongside"
        ),
    )
    parser.add_argument(
        "--verify-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "opt-in remapping verification knob: every N accepted swaps "
            "touching a node, cross-check its exactly-maintained aggregate "
            "against a from-scratch recomputation (profile command)"
        ),
    )
    parser.add_argument(
        "--report",
        default="run_report.json",
        help="RunReport JSON path to render or write (report command)",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="run the chaos suite on a worker pool and report on it (report command)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(_COMMANDS):
            print(name)
        return 0
    if args.task_timeout is not None:
        from .engine.deadline import TaskDeadline, set_default_deadline

        if args.task_timeout <= 0:
            parser.error("--task-timeout must be positive")
        set_default_deadline(
            TaskDeadline(
                hard_timeout_s=args.task_timeout,
                soft_timeout_s=args.task_timeout / 4,
            )
        )
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
