"""Hierarchical power capping — backward-compatibility shim.

.. deprecated::
    The Dynamo-style capping loop moved to :mod:`repro.engine.capping`,
    where it serves as the emergency-fallback actuator of the unified
    simulation core (:class:`repro.engine.Engine`).  This module re-exports
    the public names unchanged so existing imports keep working; new code
    should import from :mod:`repro.engine` directly.
"""

from __future__ import annotations

from .._compat import _deprecated

_deprecated(
    "repro.infra.capping is deprecated; import the capping loop from "
    "repro.engine (its canonical home) instead",
    stacklevel=2,
)

from ..engine.capping import (  # noqa: E402,F401  (re-export)
    DEFAULT_PRIORITY,
    CappingPolicy,
    CappingReport,
    CappingSimulator,
    NodeCappingStats,
    compare_capping,
)

__all__ = [
    "DEFAULT_PRIORITY",
    "CappingPolicy",
    "CappingReport",
    "CappingSimulator",
    "NodeCappingStats",
    "compare_capping",
]
