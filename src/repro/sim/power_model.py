"""Server power models.

Maps utilisation (and DVFS frequency) to electrical power.  Servers are far
from energy-proportional: an idle floor plus a load-dependent swing.  DVFS
affects the dynamic component roughly cubically (voltage scales with
frequency), and throughput linearly — the trade the proactive throttling and
boosting policy of Sec. 4 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayOrFloat = Union[float, np.ndarray]


@dataclass(frozen=True)
class ServerPowerModel:
    """Power of one server as a function of load and frequency.

    ``power = idle + swing × load^alpha × freq^gamma``

    Attributes
    ----------
    idle_watts / peak_watts:
        Draw at zero and full load at nominal frequency.
    alpha:
        Load-to-power curvature; 1.0 = linear (a good server-level fit).
    gamma:
        DVFS exponent on the dynamic component; ~3 for voltage-frequency
        scaling.
    """

    idle_watts: float
    peak_watts: float
    alpha: float = 1.0
    gamma: float = 3.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError("idle_watts cannot be negative")
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")
        if self.alpha <= 0 or self.gamma <= 0:
            raise ValueError("alpha and gamma must be positive")

    @property
    def swing_watts(self) -> float:
        return self.peak_watts - self.idle_watts

    def power(self, load: ArrayOrFloat, freq: ArrayOrFloat = 1.0) -> ArrayOrFloat:
        """Power draw at ``load`` ∈ [0, 1] and relative frequency ``freq``.

        Loads are clipped to [0, 1]; frequency below 1 throttles, above 1
        boosts (turbo).
        """
        load = np.clip(load, 0.0, 1.0)
        freq = np.asarray(freq, dtype=np.float64)
        if np.any(freq <= 0):
            raise ValueError("frequency must be positive")
        value = self.idle_watts + self.swing_watts * np.power(load, self.alpha) * np.power(
            freq, self.gamma
        )
        if np.ndim(value) == 0:
            return float(value)
        return value

    def max_power(self, freq: ArrayOrFloat = 1.0) -> ArrayOrFloat:
        """Full-load draw at ``freq`` — what provisioning must reserve."""
        return self.power(1.0, freq)


@dataclass(frozen=True)
class DVFSModel:
    """Allowed frequency range and its throughput effect.

    Below nominal frequency, throughput tracks frequency linearly (the
    CPU-bound batch workloads the paper throttles run "at higher settings of
    CPU frequencies", Sec. 2.3).  Above nominal, returns diminish: memory
    and I/O no longer keep up, so each extra 1% of frequency yields only
    ``boost_efficiency`` percent of extra throughput — power grows cubically
    while throughput grows sublinearly, which is why boosting is a
    slack-soaker more than a throughput machine.
    """

    min_freq: float = 0.6
    max_freq: float = 1.4
    boost_efficiency: float = 0.2

    def __post_init__(self) -> None:
        if not 0 < self.min_freq <= 1.0 <= self.max_freq:
            raise ValueError("need min_freq <= 1.0 <= max_freq, both positive")
        if not 0 <= self.boost_efficiency <= 1:
            raise ValueError("boost_efficiency must be in [0, 1]")

    def clamp(self, freq: ArrayOrFloat) -> ArrayOrFloat:
        clamped = np.clip(freq, self.min_freq, self.max_freq)
        if np.ndim(clamped) == 0:
            return float(clamped)
        return clamped

    def throughput_factor(self, freq: ArrayOrFloat) -> ArrayOrFloat:
        """Relative batch throughput at ``freq`` (1.0 at nominal)."""
        clamped = np.asarray(self.clamp(freq), dtype=np.float64)
        factor = np.where(
            clamped <= 1.0,
            clamped,
            1.0 + (clamped - 1.0) * self.boost_efficiency,
        )
        if np.ndim(freq) == 0:
            return float(factor)
        return factor
