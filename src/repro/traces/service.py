"""Service power traces (S-traces) — Eq. 5 of the paper.

For a service *Y*, the S-trace is the mean of the averaged I-traces of all of
*Y*'s instances.  The S-traces of the top power-consumer services form the
basis against which every instance's asynchrony-score vector is computed
(Sec. 3.3-3.4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .instance import InstanceRecord, group_by_service
from .series import PowerTrace
from .traceset import TraceSet


def service_power_trace(records: Sequence[InstanceRecord]) -> PowerTrace:
    """The S-trace of one service: mean of its instances' averaged I-traces."""
    if not records:
        raise ValueError("service has no instances")
    services = {record.service for record in records}
    if len(services) > 1:
        raise ValueError(f"records span multiple services: {sorted(services)}")
    grid = records[0].training_trace.grid
    total = np.zeros(grid.n_samples)
    for record in records:
        grid.require_same(record.training_trace.grid)
        total += record.training_trace.values
    return PowerTrace(grid, total / len(records))


def build_service_traces(
    records: Iterable[InstanceRecord],
) -> Dict[str, PowerTrace]:
    """S-traces for every service present in ``records``."""
    return {
        service: service_power_trace(service_records)
        for service, service_records in group_by_service(records).items()
    }


def total_energy_by_service(records: Iterable[InstanceRecord]) -> Dict[str, float]:
    """Total training-trace energy per service (watt-minutes).

    This is the quantity behind Figure 5's "30-day average power consumption"
    breakdown: the share of each service in the datacenter's energy.
    """
    energy: Dict[str, float] = {}
    for record in records:
        energy[record.service] = energy.get(record.service, 0.0) + record.training_trace.energy()
    return energy


def top_power_consumers(
    records: Sequence[InstanceRecord], top_m: int
) -> List[str]:
    """Names of the ``top_m`` services by total power, largest first.

    These are the services whose S-traces span the asynchrony-score space
    (the set *B* of Sec. 3.5).  Ties break by service name for determinism.
    """
    if top_m <= 0:
        raise ValueError(f"top_m must be positive, got {top_m}")
    energy = total_energy_by_service(records)
    ranked = sorted(energy.items(), key=lambda item: (-item[1], item[0]))
    return [service for service, _ in ranked[:top_m]]


def extract_basis_traces(
    records: Sequence[InstanceRecord], top_m: int
) -> "TraceSet":
    """S-traces of the top-``top_m`` power consumers as a :class:`TraceSet`.

    The returned set's ids are service names, ordered by descending power —
    the basis *{PS_1 .. PS_m}* of Figure 7.  ``top_m`` is clamped to the
    number of distinct services.
    """
    services = top_power_consumers(records, top_m)
    grouped = group_by_service(records)
    traces = {service: service_power_trace(grouped[service]) for service in services}
    return TraceSet.from_traces(traces)
