"""Unit tests for PowerTrace."""

import numpy as np
import pytest

from repro.traces import PowerTrace, TimeGrid, normalize_traces


@pytest.fixture
def small_grid():
    return TimeGrid(0, 60, 24)


def ramp(grid):
    return PowerTrace(grid, np.linspace(0, 100, grid.n_samples))


class TestConstruction:
    def test_valid(self, small_grid):
        trace = PowerTrace(small_grid, np.ones(24))
        assert len(trace) == 24

    def test_rejects_wrong_length(self, small_grid):
        with pytest.raises(ValueError):
            PowerTrace(small_grid, np.ones(23))

    def test_rejects_negative(self, small_grid):
        values = np.ones(24)
        values[3] = -1
        with pytest.raises(ValueError):
            PowerTrace(small_grid, values)

    def test_rejects_nan(self, small_grid):
        values = np.ones(24)
        values[0] = np.nan
        with pytest.raises(ValueError):
            PowerTrace(small_grid, values)

    def test_rejects_2d(self, small_grid):
        with pytest.raises(ValueError):
            PowerTrace(small_grid, np.ones((2, 12)))

    def test_constant(self, small_grid):
        trace = PowerTrace.constant(small_grid, 42.0)
        assert trace.peak() == 42.0
        assert trace.valley() == 42.0

    def test_zeros(self, small_grid):
        assert PowerTrace.zeros(small_grid).peak() == 0.0


class TestArithmetic:
    def test_add(self, small_grid):
        total = ramp(small_grid) + PowerTrace.constant(small_grid, 10)
        assert total.valley() == pytest.approx(10.0)
        assert total.peak() == pytest.approx(110.0)

    def test_add_grid_mismatch(self, small_grid):
        other = PowerTrace.constant(TimeGrid(0, 30, 48), 1.0)
        with pytest.raises(Exception):
            ramp(small_grid) + other

    def test_subtract_clamps_at_zero(self, small_grid):
        low = PowerTrace.constant(small_grid, 10)
        high = PowerTrace.constant(small_grid, 30)
        diff = low - high
        assert diff.peak() == 0.0

    def test_scalar_multiply(self, small_grid):
        doubled = ramp(small_grid) * 2
        assert doubled.peak() == pytest.approx(200.0)

    def test_rmul(self, small_grid):
        doubled = 2 * ramp(small_grid)
        assert doubled.peak() == pytest.approx(200.0)

    def test_negative_scale_rejected(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid) * -1

    def test_divide(self, small_grid):
        halved = ramp(small_grid) / 2
        assert halved.peak() == pytest.approx(50.0)

    def test_divide_by_zero_rejected(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid) / 0

    def test_aggregate(self, small_grid):
        traces = [PowerTrace.constant(small_grid, i) for i in (1, 2, 3)]
        assert PowerTrace.aggregate(traces).peak() == pytest.approx(6.0)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace.aggregate([])

    def test_aggregate_exact_matches_stacked_reduce(self, small_grid):
        """The blocked exact path must stay bit-identical to the historical
        single-stack axis-0 sum, whatever the block size."""
        rng = np.random.default_rng(7)
        traces = [PowerTrace(small_grid, rng.random(24) * 10) for _ in range(50)]
        stacked = np.stack([t.values for t in traces]).sum(axis=0)
        for block_rows in (1, 7, 50, 1000):
            result = PowerTrace.aggregate(traces, block_rows=block_rows)
            assert np.array_equal(result.values, stacked)

    def test_aggregate_fast_path_tracks_exact(self, small_grid):
        rng = np.random.default_rng(8)
        traces = [PowerTrace(small_grid, rng.random(24) * 10) for _ in range(50)]
        exact = PowerTrace.aggregate(traces)
        fast = PowerTrace.aggregate(traces, exact=False, block_rows=16)
        # float32 block reduction: close, not identical.
        assert np.allclose(exact.values, fast.values, rtol=1e-5)

    def test_aggregate_rejects_bad_block_rows(self, small_grid):
        with pytest.raises(ValueError):
            PowerTrace.aggregate([ramp(small_grid)], block_rows=0)

    def test_equality(self, small_grid):
        assert ramp(small_grid) == ramp(small_grid)
        assert ramp(small_grid) != PowerTrace.constant(small_grid, 5)

    def test_unhashable(self, small_grid):
        with pytest.raises(TypeError):
            hash(ramp(small_grid))


class TestStatistics:
    def test_peak_valley_mean(self, small_grid):
        trace = ramp(small_grid)
        assert trace.peak() == pytest.approx(100.0)
        assert trace.valley() == pytest.approx(0.0)
        assert trace.mean() == pytest.approx(50.0)

    def test_peak_time_index(self, small_grid):
        assert ramp(small_grid).peak_time_index() == 23

    def test_percentile(self, small_grid):
        trace = ramp(small_grid)
        assert trace.percentile(100) == pytest.approx(100.0)
        assert trace.percentile(0) == pytest.approx(0.0)

    def test_percentile_bounds(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid).percentile(101)

    def test_peak_to_mean(self, small_grid):
        assert ramp(small_grid).peak_to_mean() == pytest.approx(2.0)
        assert PowerTrace.zeros(small_grid).peak_to_mean() == 1.0


class TestSlack:
    def test_power_slack(self, small_grid):
        trace = PowerTrace.constant(small_grid, 40)
        slack = trace.power_slack(100)
        assert np.allclose(slack, 60.0)

    def test_power_slack_rejects_low_budget(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid).power_slack(50)

    def test_energy_slack(self, small_grid):
        trace = PowerTrace.constant(small_grid, 40)
        # 60 W slack x 24 samples x 60 minutes
        assert trace.energy_slack(100) == pytest.approx(60 * 24 * 60)

    def test_energy(self, small_grid):
        trace = PowerTrace.constant(small_grid, 10)
        assert trace.energy() == pytest.approx(10 * 24 * 60)


class TestTimeStructure:
    def test_slice(self, small_grid):
        sub = ramp(small_grid).slice(6, 12)
        assert len(sub) == 6
        assert sub.grid.start_minute == 6 * 60

    def test_slice_invalid(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid).slice(12, 6)

    def test_week_and_split(self):
        grid = TimeGrid.for_weeks(2, step_minutes=60 * 6)
        values = np.concatenate([np.full(28, 1.0), np.full(28, 3.0)])
        trace = PowerTrace(grid, values)
        weeks = trace.split_weeks()
        assert len(weeks) == 2
        assert weeks[0].mean() == pytest.approx(1.0)
        assert weeks[1].mean() == pytest.approx(3.0)

    def test_week_out_of_range(self):
        grid = TimeGrid.for_weeks(1, step_minutes=60 * 6)
        with pytest.raises(IndexError):
            PowerTrace.zeros(grid).week(1)

    def test_average_weeks(self):
        grid = TimeGrid.for_weeks(2, step_minutes=60 * 6)
        values = np.concatenate([np.full(28, 1.0), np.full(28, 3.0)])
        averaged = PowerTrace(grid, values).average_weeks()
        assert len(averaged) == 28
        assert averaged.mean() == pytest.approx(2.0)

    def test_average_weeks_requires_whole_weeks(self, small_grid):
        with pytest.raises(ValueError):
            ramp(small_grid).average_weeks()

    def test_hourly_means_shape(self):
        grid = TimeGrid.for_days(2, step_minutes=30)
        means = PowerTrace.constant(grid, 5).hourly_means()
        assert means.shape == (24,)
        assert np.allclose(means, 5.0)

    def test_peak_hour(self):
        grid = TimeGrid.for_days(1, step_minutes=60)
        values = np.zeros(24)
        values[14] = 10
        assert PowerTrace(grid, values).peak_hour() == 14

    def test_resample(self):
        grid = TimeGrid.for_days(1, step_minutes=10)
        trace = PowerTrace(grid, np.arange(144, dtype=float))
        coarse = trace.resample(60)
        assert len(coarse) == 24
        assert coarse.values[0] == pytest.approx(np.arange(6).mean())

    def test_resample_identity(self):
        grid = TimeGrid.for_days(1, step_minutes=10)
        trace = PowerTrace(grid, np.arange(144, dtype=float))
        assert trace.resample(10) == trace

    def test_resample_invalid(self):
        grid = TimeGrid.for_days(1, step_minutes=10)
        with pytest.raises(ValueError):
            PowerTrace.zeros(grid).resample(15)

    def test_smooth_preserves_length(self, small_grid):
        smoothed = ramp(small_grid).smooth(180)
        assert len(smoothed) == 24

    def test_smooth_reduces_variance(self):
        grid = TimeGrid.for_days(1, step_minutes=10)
        rng = np.random.default_rng(0)
        noisy = PowerTrace(grid, 50 + 10 * rng.random(144))
        smoothed = noisy.smooth(120)
        assert smoothed.values.std() < noisy.values.std()


class TestNormalize:
    def test_normalize_to_unit_peak(self, small_grid):
        traces = [ramp(small_grid), PowerTrace.constant(small_grid, 50)]
        normalized = normalize_traces(traces)
        assert max(t.peak() for t in normalized) == pytest.approx(1.0)
        assert normalized[1].peak() == pytest.approx(0.5)

    def test_normalize_empty(self):
        assert normalize_traces([]) == []

    def test_normalize_all_zero(self, small_grid):
        normalized = normalize_traces([PowerTrace.zeros(small_grid)])
        assert normalized[0].peak() == 0.0
