"""Service power-profile archetypes.

The paper's placement framework consumes only the *shape* of power traces:
when a service peaks, how hard it swings, and how much its instances differ
from one another.  A :class:`ServiceProfile` captures those shape parameters
for one service; Sec. 2.3 motivates the three canonical archetypes —

* **web / cache / frontend** — user-facing, strongly diurnal, daytime peak,
  highly synchronous across instances;
* **db** — I/O bound by day, nightly backup compression: *nocturnal* peak;
* **hadoop** — throughput-optimised batch, *flat and high* power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from .instance import ServiceKind


class Shape:
    """Supported diurnal activity shapes."""

    DIURNAL = "diurnal"          # single daytime bump (web, cache)
    NOCTURNAL = "nocturnal"      # single night-time bump (db backup)
    FLAT = "flat"                # constant high utilisation (hadoop)
    DOUBLE_PEAK = "double_peak"  # morning + evening bumps (mobile, media)
    OFFICE = "office"            # business-hours plateau (dev, lab)

    ALL = (DIURNAL, NOCTURNAL, FLAT, DOUBLE_PEAK, OFFICE)


@dataclass(frozen=True)
class ServiceProfile:
    """Shape parameters for one service's power behaviour.

    Attributes
    ----------
    name:
        Service name (``"web"``, ``"db"``, ...).
    kind:
        :class:`ServiceKind` class for the reshaping runtime.
    shape:
        One of :class:`Shape`.
    idle_watts / peak_watts:
        Per-server idle floor and full-load draw.  Modern servers are far
        from energy-proportional; the defaults reflect roughly a 0.45
        idle/peak ratio.
    peak_hour:
        Hour of day (local) at which activity tops out.
    sharpness:
        Concentration of the activity bump; higher = spikier peak.
    weekend_factor:
        Multiplier on activity during Saturday/Sunday (<1 for user-facing).
    noise_std:
        Std-dev of multiplicative short-term noise on the activity signal.
    phase_jitter_hours:
        Per-instance std-dev of peak-time offset — instance-level temporal
        heterogeneity (e.g. regional traffic skew).
    amplitude_jitter / baseline_jitter:
        Per-instance relative std-dev of activity swing / idle floor —
        instance-level magnitude heterogeneity (skewed shard popularity).
    """

    name: str
    kind: str = ServiceKind.OTHER
    shape: str = Shape.DIURNAL
    idle_watts: float = 90.0
    peak_watts: float = 200.0
    peak_hour: float = 14.0
    sharpness: float = 2.0
    weekend_factor: float = 1.0
    noise_std: float = 0.02
    phase_jitter_hours: float = 0.5
    amplitude_jitter: float = 0.10
    baseline_jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.shape not in Shape.ALL:
            raise ValueError(f"unknown shape {self.shape!r}")
        if self.idle_watts < 0 or self.peak_watts <= 0:
            raise ValueError("power levels must be non-negative / positive")
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")
        if not 0 <= self.peak_hour < 24:
            raise ValueError(f"peak_hour must be in [0, 24), got {self.peak_hour}")
        if self.sharpness <= 0:
            raise ValueError("sharpness must be positive")
        for attr in ("noise_std", "phase_jitter_hours", "amplitude_jitter", "baseline_jitter"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} cannot be negative")

    # ------------------------------------------------------------------
    def activity(self, hours_of_day: np.ndarray) -> np.ndarray:
        """Normalised activity level in ``[0, 1]`` for each hour-of-day."""
        if self.shape == Shape.FLAT:
            return np.full_like(hours_of_day, 1.0, dtype=np.float64)
        if self.shape == Shape.DIURNAL or self.shape == Shape.NOCTURNAL:
            return _von_mises_bump(hours_of_day, self.peak_hour, self.sharpness)
        if self.shape == Shape.DOUBLE_PEAK:
            morning = _von_mises_bump(hours_of_day, self.peak_hour - 5.0, self.sharpness)
            evening = _von_mises_bump(hours_of_day, self.peak_hour + 5.0, self.sharpness)
            combined = 0.45 * morning + 0.55 * evening
            return combined / combined.max() if combined.max() > 0 else combined
        if self.shape == Shape.OFFICE:
            # Smooth plateau across business hours centred on peak_hour.
            lo, hi = self.peak_hour - 4.5, self.peak_hour + 4.5
            ramp = 1.0 / (1.0 + np.exp(-(hours_of_day - lo) * self.sharpness))
            fall = 1.0 / (1.0 + np.exp((hours_of_day - hi) * self.sharpness))
            plateau = ramp * fall
            peak = plateau.max()
            return plateau / peak if peak > 0 else plateau
        raise AssertionError(f"unhandled shape {self.shape!r}")

    def with_heterogeneity(self, scale: float) -> "ServiceProfile":
        """Scale per-instance jitter parameters by ``scale``.

        Models the DC-level difference the paper observes: DC1 has low
        instance heterogeneity, DC3 high (Sec. 5.2.1).
        """
        if scale < 0:
            raise ValueError("heterogeneity scale cannot be negative")
        return replace(
            self,
            phase_jitter_hours=self.phase_jitter_hours * scale,
            amplitude_jitter=self.amplitude_jitter * scale,
            baseline_jitter=self.baseline_jitter * scale,
        )

    @property
    def swing_watts(self) -> float:
        """Activity-driven power swing from idle to peak."""
        return self.peak_watts - self.idle_watts

    def expected_mean_watts(self) -> float:
        """Expected long-run mean draw of one instance of this service.

        Averages the activity shape over a day and weights weekdays against
        weekends.  Used to convert Figure 5's *power* shares into instance
        counts when synthesising fleets.
        """
        hours = np.linspace(0.0, 24.0, 288, endpoint=False)
        mean_activity = float(self.activity(hours).mean())
        weekly = (5.0 + 2.0 * self.weekend_factor) / 7.0
        return self.idle_watts + self.swing_watts * mean_activity * weekly


def _von_mises_bump(hours: np.ndarray, peak_hour: float, kappa: float) -> np.ndarray:
    """A smooth 24h-periodic bump peaking at ``peak_hour``, max value 1."""
    angle = 2.0 * math.pi * (hours - peak_hour) / 24.0
    raw = np.exp(kappa * (np.cos(angle) - 1.0))
    return raw


# ----------------------------------------------------------------------
# Canonical archetypes (Sec. 2.3 / Figure 6)
# ----------------------------------------------------------------------
def web_profile(name: str = "web") -> ServiceProfile:
    """User-facing web/frontend tier: strong daytime diurnal swing."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.LATENCY_CRITICAL,
        shape=Shape.DIURNAL,
        idle_watts=85.0,
        peak_watts=240.0,
        peak_hour=14.0,
        sharpness=2.2,
        weekend_factor=0.85,
        noise_std=0.03,
        phase_jitter_hours=0.4,
        amplitude_jitter=0.08,
        baseline_jitter=0.04,
    )


def cache_profile(name: str = "cache") -> ServiceProfile:
    """Cache tier: diurnal like web but with a higher, steadier floor."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.LATENCY_CRITICAL,
        shape=Shape.DIURNAL,
        idle_watts=100.0,
        peak_watts=225.0,
        peak_hour=14.5,
        sharpness=1.8,
        weekend_factor=0.9,
        noise_std=0.02,
        phase_jitter_hours=0.5,
        amplitude_jitter=0.08,
        baseline_jitter=0.05,
    )


def db_profile(name: str = "db") -> ServiceProfile:
    """Database backend: modest daytime load, nightly backup peak."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.STORAGE,
        shape=Shape.NOCTURNAL,
        idle_watts=85.0,
        peak_watts=235.0,
        peak_hour=2.0,
        sharpness=3.0,
        weekend_factor=1.0,
        noise_std=0.025,
        phase_jitter_hours=1.2,
        amplitude_jitter=0.12,
        baseline_jitter=0.06,
    )


def hadoop_profile(name: str = "hadoop") -> ServiceProfile:
    """Hadoop/batch tier: constantly high, throughput-optimised."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.BATCH,
        shape=Shape.FLAT,
        idle_watts=150.0,
        peak_watts=240.0,
        peak_hour=12.0,
        sharpness=1.0,
        weekend_factor=1.0,
        noise_std=0.08,
        phase_jitter_hours=4.0,
        amplitude_jitter=0.15,
        baseline_jitter=0.10,
    )


def search_profile(name: str = "search") -> ServiceProfile:
    """Search serving tier: diurnal, slightly earlier peak than web."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.LATENCY_CRITICAL,
        shape=Shape.DIURNAL,
        idle_watts=90.0,
        peak_watts=230.0,
        peak_hour=12.5,
        sharpness=2.0,
        weekend_factor=0.8,
        noise_std=0.03,
        phase_jitter_hours=0.6,
        amplitude_jitter=0.09,
        baseline_jitter=0.05,
    )


def dev_profile(name: str = "dev") -> ServiceProfile:
    """Developer/lab machines: business-hours plateau, quiet otherwise.

    Classified as Batch for the reshaping runtime: like hadoop, this work is
    throughput-oriented and preemptible (throttle/boost eligible).
    """
    return ServiceProfile(
        name=name,
        kind=ServiceKind.BATCH,
        shape=Shape.OFFICE,
        idle_watts=60.0,
        peak_watts=185.0,
        peak_hour=13.5,
        sharpness=1.4,
        weekend_factor=0.4,
        noise_std=0.05,
        phase_jitter_hours=1.5,
        amplitude_jitter=0.2,
        baseline_jitter=0.1,
    )


def media_profile(name: str = "media") -> ServiceProfile:
    """Photo/video serving: double-peaked (commute + evening) activity."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.LATENCY_CRITICAL,
        shape=Shape.DOUBLE_PEAK,
        idle_watts=80.0,
        peak_watts=215.0,
        peak_hour=14.0,
        sharpness=2.6,
        weekend_factor=1.1,
        noise_std=0.03,
        phase_jitter_hours=0.8,
        amplitude_jitter=0.1,
        baseline_jitter=0.05,
    )


def storage_profile(name: str = "photostorage") -> ServiceProfile:
    """Cold storage: low, nearly flat draw with mild daytime tilt."""
    return ServiceProfile(
        name=name,
        kind=ServiceKind.STORAGE,
        shape=Shape.DIURNAL,
        idle_watts=130.0,
        peak_watts=165.0,
        peak_hour=15.0,
        sharpness=0.8,
        weekend_factor=0.95,
        noise_std=0.02,
        phase_jitter_hours=1.0,
        amplitude_jitter=0.08,
        baseline_jitter=0.06,
    )


CANONICAL_PROFILES: Dict[str, ServiceProfile] = {
    profile.name: profile
    for profile in (
        web_profile(),
        cache_profile(),
        db_profile(),
        hadoop_profile(),
        search_profile(),
        dev_profile(),
        media_profile(),
        storage_profile(),
    )
}
