"""Continuous fragmentation monitoring (the Sec. 3.6 control loop's sensor).

"Our framework continuously records the I-traces and the S-traces, and
dynamically re-evaluates the severity of the fragmentation problem by
monitoring the sum of peaks of power traces at each level of power
infrastructure."  A :class:`FragmentationMonitor` ingests periodic trace
snapshots, tracks each level's sum of peaks and worst node against the
values observed at deployment time, and raises advisories when drift
exceeds configured thresholds — the trigger for running the remapping
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.metrics import node_asynchrony_scores
from ..infra.aggregation import NodePowerView
from ..infra.assignment import Assignment
from ..obs import events as obs_events
from ..traces.traceset import TraceSet


@dataclass(frozen=True)
class MonitorConfig:
    """Drift thresholds.

    An advisory fires when a level's sum of peaks grows by more than
    ``sum_of_peaks_tolerance`` (fractional) over its deployment-time
    reference, or when any node's asynchrony score falls below
    ``min_asynchrony``.
    """

    level: str
    sum_of_peaks_tolerance: float = 0.05
    min_asynchrony: float = 1.02

    def __post_init__(self) -> None:
        if self.sum_of_peaks_tolerance < 0:
            raise ValueError("tolerance cannot be negative")
        if self.min_asynchrony < 1.0:
            raise ValueError("asynchrony scores are never below 1.0")


@dataclass(frozen=True)
class Advisory:
    """One monitoring finding: what drifted, where, and how badly."""

    kind: str  # "sum_of_peaks" or "node_asynchrony"
    level: str
    node_name: Optional[str]
    observed: float
    reference: float

    @property
    def severity(self) -> float:
        """Fractional drift beyond the reference (higher = worse)."""
        if self.reference == 0:
            return 0.0
        return abs(self.observed - self.reference) / abs(self.reference)


@dataclass
class Snapshot:
    """One monitoring observation."""

    label: str
    sum_of_peaks: float
    worst_node: Optional[str]
    min_asynchrony: float
    advisories: List[Advisory] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.advisories


class FragmentationMonitor:
    """Tracks a placement's fragmentation over successive trace snapshots."""

    def __init__(self, assignment: Assignment, config: MonitorConfig) -> None:
        self.assignment = assignment
        self.config = config
        self._reference_sum_of_peaks: Optional[float] = None
        self.history: List[Snapshot] = []

    # ------------------------------------------------------------------
    def calibrate(self, traces: TraceSet) -> Snapshot:
        """Record the deployment-time reference from the first snapshot."""
        snapshot = self._measure("calibration", traces, check=False)
        self._reference_sum_of_peaks = snapshot.sum_of_peaks
        self.history.append(snapshot)
        return snapshot

    def observe(self, label: str, traces: TraceSet) -> Snapshot:
        """Ingest a new snapshot and evaluate drift against the reference."""
        if self._reference_sum_of_peaks is None:
            raise RuntimeError("monitor must be calibrated before observing")
        snapshot = self._measure(label, traces, check=True)
        self.history.append(snapshot)
        # Mirror the findings into the structured event log (no-op unless
        # recording), so monitoring drift shows up alongside violations and
        # swaps instead of living only in returned Snapshot objects.
        for advisory in snapshot.advisories:
            obs_events.emit(
                obs_events.ADVISORY,
                severity="advisory",
                source="analysis.monitoring",
                label=label,
                drift=advisory.kind,
                level=advisory.level,
                node=advisory.node_name,
                observed=advisory.observed,
                reference=advisory.reference,
                drift_severity=advisory.severity,
            )
        return snapshot

    def needs_remapping(self) -> bool:
        """True if the most recent snapshot raised any advisory."""
        return bool(self.history) and not self.history[-1].healthy

    # ------------------------------------------------------------------
    def _measure(self, label: str, traces: TraceSet, *, check: bool) -> Snapshot:
        view = NodePowerView(self.assignment.topology, self.assignment, traces)
        sum_of_peaks = view.sum_of_peaks(self.config.level)
        scores = node_asynchrony_scores(self.assignment, traces, self.config.level)
        worst = min(scores, key=scores.get) if scores else None
        min_score = min(scores.values()) if scores else 1.0

        advisories: List[Advisory] = []
        if check:
            reference = self._reference_sum_of_peaks
            assert reference is not None
            if sum_of_peaks > reference * (1.0 + self.config.sum_of_peaks_tolerance):
                advisories.append(
                    Advisory(
                        kind="sum_of_peaks",
                        level=self.config.level,
                        node_name=None,
                        observed=sum_of_peaks,
                        reference=reference,
                    )
                )
            for node_name, score in scores.items():
                if score < self.config.min_asynchrony:
                    advisories.append(
                        Advisory(
                            kind="node_asynchrony",
                            level=self.config.level,
                            node_name=node_name,
                            observed=score,
                            reference=self.config.min_asynchrony,
                        )
                    )
        return Snapshot(
            label=label,
            sum_of_peaks=sum_of_peaks,
            worst_node=worst,
            min_asynchrony=min_score,
            advisories=advisories,
        )
