"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures at full
experiment scale (1440 instances per datacenter, 10-minute sampling), writes
the rendered rows to ``benchmarks/results/<name>.txt``, and asserts the
paper's qualitative shape (who wins, orderings, rough factors).

Datacenters and placement studies are cached inside
:mod:`repro.analysis.experiments`, so the first benchmark pays the build
cost and the rest reuse it.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit_report():
    """Write a rendered experiment report to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def full_scale():
    """Keyword arguments selecting the full experiment scale."""
    return dict(n_instances=1440, step_minutes=10)
