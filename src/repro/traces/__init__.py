"""Time-series substrate: power traces, sampling grids, and synthesis.

This package implements Sec. 3.3 of the paper — instance power traces
(I-traces), multi-week averaging, and service power traces (S-traces) — plus
the synthetic telemetry generator that substitutes for production power
sensors (see DESIGN.md).
"""

from .forecast import (
    PredictabilityReport,
    mape,
    peak_error,
    peak_time_error_minutes,
    predictability_report,
    seasonal_naive_forecast,
)
from .io import (
    export_csv,
    import_csv,
    load_fleet,
    load_trace_set,
    save_fleet,
    save_trace_set,
)
from .perturbations import inject_outage, inject_surge, window_mask
from .grid import (
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    MINUTES_PER_WEEK,
    GridMismatchError,
    TimeGrid,
)
from .instance import (
    InstanceRecord,
    ServiceInstance,
    ServiceKind,
    average_instance_trace,
    group_by_service,
)
from .percentiles import (
    FIGURE6_BANDS,
    PercentileBand,
    band_summary,
    diurnal_range,
    percentile_bands,
)
from .profiles import (
    CANONICAL_PROFILES,
    ServiceProfile,
    Shape,
    cache_profile,
    db_profile,
    dev_profile,
    hadoop_profile,
    media_profile,
    search_profile,
    storage_profile,
    web_profile,
)
from .series import PowerTrace, normalize_traces
from .service import (
    build_service_traces,
    extract_basis_traces,
    service_power_trace,
    top_power_consumers,
    total_energy_by_service,
)
from .synthesis import (
    InstancePersonality,
    TraceSynthesizer,
    draw_personality,
    test_trace_set,
    training_trace_set,
)
from .traceset import TraceSet

__all__ = [
    "seasonal_naive_forecast",
    "mape",
    "peak_error",
    "peak_time_error_minutes",
    "predictability_report",
    "PredictabilityReport",
    "save_trace_set",
    "load_trace_set",
    "save_fleet",
    "load_fleet",
    "export_csv",
    "import_csv",
    "inject_surge",
    "inject_outage",
    "window_mask",
    "MINUTES_PER_DAY",
    "MINUTES_PER_HOUR",
    "MINUTES_PER_WEEK",
    "GridMismatchError",
    "TimeGrid",
    "PowerTrace",
    "normalize_traces",
    "TraceSet",
    "ServiceInstance",
    "ServiceKind",
    "InstanceRecord",
    "average_instance_trace",
    "group_by_service",
    "service_power_trace",
    "build_service_traces",
    "top_power_consumers",
    "total_energy_by_service",
    "extract_basis_traces",
    "ServiceProfile",
    "Shape",
    "CANONICAL_PROFILES",
    "web_profile",
    "cache_profile",
    "db_profile",
    "hadoop_profile",
    "search_profile",
    "dev_profile",
    "media_profile",
    "storage_profile",
    "TraceSynthesizer",
    "InstancePersonality",
    "draw_personality",
    "training_trace_set",
    "test_trace_set",
    "PercentileBand",
    "percentile_bands",
    "band_summary",
    "diurnal_range",
    "FIGURE6_BANDS",
]
