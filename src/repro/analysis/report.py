"""Plain-text report rendering for experiment outputs.

The benchmark harness regenerates the paper's tables and figure series as
text; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_percent(value: float, digits: int = 1) -> str:
    """``0.131`` → ``"13.1%"``."""
    return f"{value * 100:.{digits}f}%"


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    materialised: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in materialised)
    return "\n".join(parts)


def format_series(
    name: str, values: Sequence[float], *, max_points: int = 12
) -> str:
    """A compact one-line summary of a time series (for figure benches)."""
    if len(values) == 0:
        return f"{name}: (empty)"
    step = max(1, len(values) // max_points)
    sampled = [f"{values[i]:.3f}" for i in range(0, len(values), step)]
    return f"{name}: [{', '.join(sampled)}] (n={len(values)})"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Unicode sparkline of a series — a terminal stand-in for a figure."""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) == 0:
        return ""
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    low = min(sampled)
    high = max(sampled)
    span = high - low
    if span == 0:
        return blocks[0] * len(sampled)
    indices = [int((v - low) / span * (len(blocks) - 1)) for v in sampled]
    return "".join(blocks[i] for i in indices)
