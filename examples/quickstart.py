"""Quickstart: de-fragment a small datacenter's power budget.

Builds a 120-server synthetic datacenter (web/cache/db/hadoop/search),
derives SmoothOperator's workload-aware placement, and compares it against
the service-grouped original placement on a held-out week.

Run:  python examples/quickstart.py
"""

from repro import SmoothOperator, build_datacenter, small_demo_spec
from repro.analysis import format_percent, format_table


def main() -> None:
    # 1. A datacenter: synthetic fleet + OCP-style power tree + the
    #    original (service-grouped, fragmentation-prone) placement.
    dc = build_datacenter(small_demo_spec(), weeks=3, step_minutes=30)
    print(f"{dc.name}: {len(dc.records)} instances on {dc.topology.describe()}")

    # 2. SmoothOperator: asynchrony scores -> balanced k-means ->
    #    hierarchical round-robin placement (Sec. 3 of the paper).
    operator = SmoothOperator()
    outcome = operator.optimize(dc.records, dc.topology)

    # 3. Evaluate on the held-out test week against the original placement.
    report = operator.evaluate(dc.records, dc.baseline, outcome.assignment)

    rows = [
        [level, format_percent(reduction)]
        for level, reduction in report.peak_reduction.items()
    ]
    print()
    print(format_table(["level", "peak reduction"], rows, title="Sum-of-peaks reduction"))
    print()
    print(
        "Extra servers hostable under the unchanged infrastructure: "
        f"{report.expansion.total_extra} "
        f"({format_percent(report.extra_server_fraction)} of the fleet)"
    )


if __name__ == "__main__":
    main()
