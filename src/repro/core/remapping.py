"""Incremental placement adaptation via differential-score swaps (Sec. 3.6).

Mid/long-term workload drift slowly degrades a placement.  Rather than
re-running the full placer, SmoothOperator identifies the most fragmented
power node (lowest asynchrony score), finds its worst-fitting instance (the
lowest *differential asynchrony score*, Sec. 3.6), and swaps it with an
instance from another node — accepting the swap only if the differential
scores improve at *both* nodes involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..infra.assignment import Assignment
from ..traces.traceset import TraceSet

#: Conventional period for the opt-in verification knob
#: (``RemapConfig.verify_every``).  Historically this forced a periodic
#: exact recomputation to correct the float drift of incremental ``+=``
#: aggregate patches; ``_NodeGroup.swap_member`` now applies each swap
#: exactly (a group-scoped recompute from member rows), so the period
#: only controls how often the optional cross-check harness runs.
RECOMPUTE_EVERY = 64


@dataclass(frozen=True)
class RemapConfig:
    """Tuning for the adaptation loop.

    Attributes
    ----------
    level:
        Tree level at which node fragmentation is evaluated (typically the
        RPP level — the leaves' parents — where fragmentation bites).
    max_swaps:
        Upper bound on accepted swaps per run.
    candidate_nodes:
        How many peer nodes (highest asynchrony first) to consider as swap
        partners for the worst node.
    candidate_instances:
        How many instances per partner node to evaluate.
    min_improvement:
        A swap must raise each node's differential score by at least this
        much to be accepted (hysteresis against churn).
    shard_level:
        When set (e.g. ``Level.SUITE`` or ``Level.MSB``), the swap loop
        runs independently inside each ``shard_level`` subtree: swaps never
        cross a shard boundary, ``max_swaps`` applies per shard, and shards
        are embarrassingly parallel (pass ``workers`` to
        :meth:`RemappingEngine.run`).  Mirrors the operational reality that
        migrations within a suite are cheap while cross-suite moves are
        not.  ``None`` (default) keeps the global single-loop behaviour.
    verify_every:
        Opt-in verification knob.  Every this many accepted swaps touching
        a group, cross-check the group's exactly-maintained aggregate and
        score caches against an independent from-scratch recomputation and
        raise if they diverge.  Swap application is exact, so this is a
        debugging/auditing harness, not a correctness requirement;
        :data:`RECOMPUTE_EVERY` is the conventional period.  ``None``
        (default) disables the checks.
    """

    level: str
    max_swaps: int = 50
    candidate_nodes: int = 4
    candidate_instances: int = 16
    min_improvement: float = 1e-3
    shard_level: Optional[str] = None
    verify_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_swaps < 0:
            raise ValueError("max_swaps cannot be negative")
        if self.candidate_nodes <= 0 or self.candidate_instances <= 0:
            raise ValueError("candidate counts must be positive")
        if self.min_improvement < 0:
            raise ValueError("min_improvement cannot be negative")
        if self.shard_level == self.level:
            raise ValueError("shard_level must differ from the swap level")
        if self.verify_every is not None and self.verify_every <= 0:
            raise ValueError("verify_every must be positive when set")


@dataclass(frozen=True)
class Swap:
    """One accepted instance exchange."""

    instance_a: str
    node_a: str
    instance_b: str
    node_b: str
    gain_a: float
    gain_b: float


@dataclass
class RemapResult:
    """Outcome of an adaptation run."""

    assignment: Assignment
    swaps: List[Swap] = field(default_factory=list)
    #: Final per-node aggregate value vectors.  Swap application is exact
    #: (each swap rebuilds the two touched groups from member rows), so
    #: these equal a from-scratch recomputation bit-for-bit.
    node_totals: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)


class _NodeGroup:
    """Mutable per-node state: member ids, the aggregate, and score caches.

    Swaps are applied *exactly*: :meth:`swap_member` rebuilds ``total``
    from the new member rows (a recompute scoped to this one group), so
    there is no incremental-patch drift to correct, and the asynchrony /
    differential caches are simply invalidated for the two groups a swap
    touches.  Everything derived is lazy and cached — the swap loop's
    per-iteration cost depends on the two affected groups, not the fleet.
    """

    __slots__ = (
        "name",
        "members",
        "total",
        "_asynchrony",
        "_self_diffs",
        "_swaps_since_verify",
    )

    def __init__(self, name: str, members: List[str], traces: TraceSet) -> None:
        self.name = name
        self.members = list(members)
        self._swaps_since_verify = 0
        self.recompute(traces)

    def recompute(self, traces: TraceSet) -> None:
        """Rebuild ``total`` exactly from member rows; drop derived caches."""
        total = np.zeros(traces.grid.n_samples)
        for instance_id in self.members:
            total += traces.row(instance_id)
        self.total = total
        self._asynchrony: Optional[float] = None
        self._self_diffs: Optional[Dict[str, float]] = None

    def verify(self, traces: TraceSet) -> None:
        """Cross-check cached state against an independent recomputation.

        The opt-in ``RemapConfig.verify_every`` harness: raises if the
        exactly-maintained ``total`` or the cached asynchrony diverge from
        a from-scratch rebuild.
        """
        expected = np.zeros(traces.grid.n_samples)
        for instance_id in self.members:
            expected += traces.row(instance_id)
        if not np.array_equal(self.total, expected):
            raise RuntimeError(
                f"group {self.name}: aggregate diverged from member rows"
            )
        cached_asynchrony = self._asynchrony
        self._asynchrony = None
        fresh = self.asynchrony(traces)
        if cached_asynchrony is not None and cached_asynchrony != fresh:
            raise RuntimeError(
                f"group {self.name}: cached asynchrony diverged "
                f"({cached_asynchrony} != {fresh})"
            )
        obs.count("remap.verifications")

    def asynchrony(self, traces: TraceSet) -> float:
        if self._asynchrony is None:
            if not self.members:
                self._asynchrony = 1.0
            else:
                sum_peaks = sum(float(traces.row(i).max()) for i in self.members)
                aggregate_peak = float(self.total.max())
                self._asynchrony = (
                    sum_peaks / aggregate_peak if aggregate_peak > 0 else 1.0
                )
        return self._asynchrony

    def self_differentials(self, traces: TraceSet) -> Dict[str, float]:
        """AD of every member against its own group, cached until it changes."""
        if self._self_diffs is None:
            self._self_diffs = {
                instance_id: self.differential(
                    traces.row(instance_id), exclude=instance_id, traces=traces
                )
                for instance_id in self.members
            }
        return self._self_diffs

    def differential(self, instance_values: np.ndarray, *, exclude: Optional[str], traces: TraceSet) -> float:
        """AD of a (possibly external) instance against this node.

        ``exclude`` removes one current member from the group first — used
        to evaluate an incoming instance against the group it would join
        after the outgoing member departs.
        """
        rest_total = self.total.copy()
        count = len(self.members)
        if exclude is not None:
            rest_total -= traces.row(exclude)
            count -= 1
        if count <= 0:
            # Empty rest-group: the AD score's defined limit.  An all-zero
            # rest trace never coincides with the instance's peak, so the
            # score takes its best value, 2.0 — staying inside the [1, 2]
            # range instead of an out-of-range sentinel that would make the
            # swap loop prefer emptying a node over a genuine improvement.
            return 2.0
        rest = rest_total / count
        combined_peak = float((instance_values + rest).max())
        numerator = float(instance_values.max()) + float(rest.max())
        return numerator / combined_peak if combined_peak > 0 else 1.0

    def swap_member(self, outgoing: str, incoming: str, traces: TraceSet) -> None:
        """Apply a swap exactly: new membership, aggregate rebuilt from rows."""
        self.members.remove(outgoing)
        self.members.append(incoming)
        self._swaps_since_verify += 1
        self.recompute(traces)


class RemappingEngine:
    """Runs the Sec. 3.6 differential-score swap loop."""

    def __init__(self, config: RemapConfig) -> None:
        self.config = config

    def run(
        self, assignment: Assignment, traces: TraceSet, *, workers: int = 1
    ) -> RemapResult:
        """Iteratively swap instances out of the most fragmented node.

        With :attr:`RemapConfig.shard_level` set, the loop runs per shard
        subtree; ``workers > 1`` then fans the shards out across the
        persistent pool over a shared-memory view of ``traces`` (shards
        are independent, so the result is identical for any worker count).
        ``workers`` is ignored in the unsharded global mode, whose single
        swap loop is inherently sequential.
        """
        with obs.span(
            "remap",
            level=self.config.level,
            max_swaps=self.config.max_swaps,
            workers=workers,
        ):
            return self._run(assignment, traces, workers)

    def _run(
        self, assignment: Assignment, traces: TraceSet, workers: int
    ) -> RemapResult:
        topology = assignment.topology
        if self.config.shard_level is None:
            groups = {
                node.name: _NodeGroup(
                    node.name, assignment.instances_under(node.name), traces
                )
                for node in topology.nodes_at_level(self.config.level)
                if assignment.instances_under(node.name)
            }
            if len(groups) < 2:
                return RemapResult(assignment=assignment)
            swaps, node_totals = self._swap_groups(groups, traces)
            return RemapResult(
                assignment=_apply_swaps(assignment, swaps),
                swaps=swaps,
                node_totals=node_totals,
            )

        shards = self._shard_specs(assignment)
        if workers <= 1 or len(shards) <= 1:
            all_swaps: List[Swap] = []
            node_totals: Dict[str, np.ndarray] = {}
            for members_by_node in shards:
                shard_swaps, shard_totals = _remap_shard_groups(
                    self, members_by_node, traces
                )
                all_swaps.extend(shard_swaps)
                node_totals.update(shard_totals)
        else:
            all_swaps, node_totals = self._run_shards_pooled(
                shards, traces, workers
            )
        return RemapResult(
            assignment=_apply_swaps(assignment, all_swaps),
            swaps=all_swaps,
            node_totals=node_totals,
        )

    # ------------------------------------------------------------------
    def _shard_specs(self, assignment: Assignment) -> List[Dict[str, List[str]]]:
        """Per-shard ``{level-node name: member ids}`` maps, shard order."""
        from ..infra.topology import PowerTopology

        specs = []
        for shard in assignment.topology.nodes_at_level(self.config.shard_level):
            subtree = PowerTopology(shard)
            members_by_node = {
                node.name: assignment.instances_under(node.name)
                for node in subtree.nodes_at_level(self.config.level)
                if assignment.instances_under(node.name)
            }
            if members_by_node:
                specs.append(members_by_node)
        return specs

    def _run_shards_pooled(
        self,
        shards: List[Dict[str, List[str]]],
        traces: TraceSet,
        workers: int,
    ) -> "tuple[List[Swap], Dict[str, np.ndarray]]":
        """Fan shard swap loops out over a shared-memory trace view."""
        # Lazy imports: repro.engine imports repro.core via the chaos
        # harness, so the reverse edge must not exist at module scope.
        from ..engine.parallel import get_pool
        from ..engine.sharedmem import SharedMatrix

        pool = get_pool(workers)
        with SharedMatrix.create(traces.matrix) as shared:
            tasks = []
            for members_by_node in shards:
                groups_spec = tuple(
                    (
                        name,
                        tuple(
                            (instance_id, traces.index_of(instance_id))
                            for instance_id in members
                        ),
                    )
                    for name, members in members_by_node.items()
                )
                tasks.append((shared.handle, traces.grid, groups_spec, self.config))
            obs.count("remap.shards", len(tasks))
            shard_results = pool.map_shards(
                _remap_shard_task, tasks, label="remap.shard"
            )
        all_swaps: List[Swap] = []
        node_totals: Dict[str, np.ndarray] = {}
        for shard_swaps, shard_totals in shard_results:
            all_swaps.extend(shard_swaps)
            node_totals.update(shard_totals)
        return all_swaps, node_totals

    # ------------------------------------------------------------------
    def _swap_groups(
        self, groups: Dict[str, _NodeGroup], traces: TraceSet
    ) -> "tuple[List[Swap], Dict[str, np.ndarray]]":
        """The Sec. 3.6 loop over one set of groups; swaps + final totals."""
        swaps: List[Swap] = []
        for _ in range(self.config.max_swaps):
            obs.count("remap.swaps_attempted")
            swap = self._best_swap(groups, traces)
            if swap is None:
                # No candidate cleared the hysteresis threshold: the loop
                # converged.  Recorded so operators can see *why* it stopped.
                obs_events.emit(
                    obs_events.SWAP_REJECT,
                    source="remapping",
                    level=self.config.level,
                    swaps_accepted=len(swaps),
                    min_improvement=self.config.min_improvement,
                )
                break
            groups[swap.node_a].swap_member(swap.instance_a, swap.instance_b, traces)
            groups[swap.node_b].swap_member(swap.instance_b, swap.instance_a, traces)
            if self.config.verify_every is not None:
                for group in (groups[swap.node_a], groups[swap.node_b]):
                    if group._swaps_since_verify >= self.config.verify_every:
                        group.verify(traces)
                        group._swaps_since_verify = 0
            swaps.append(swap)
            obs.count("remap.swaps_accepted")
            obs_events.emit(
                obs_events.SWAP_ACCEPT,
                source="remapping",
                instance_a=swap.instance_a,
                node_a=swap.node_a,
                instance_b=swap.instance_b,
                node_b=swap.node_b,
                gain_a=swap.gain_a,
                gain_b=swap.gain_b,
            )
        # No final recompute pass: swap application is exact, so every
        # group's ``total`` already equals a from-scratch rebuild.
        return swaps, {name: group.total for name, group in groups.items()}

    # ------------------------------------------------------------------
    def _best_swap(
        self, groups: Dict[str, _NodeGroup], traces: TraceSet
    ) -> Optional[Swap]:
        # Cached per-group scores: only the two groups the previous swap
        # touched were invalidated, so ranking the fleet costs O(groups),
        # not O(instances).
        ranked = sorted(groups.values(), key=lambda g: g.asynchrony(traces))
        worst = ranked[0]
        if len(worst.members) < 2:
            return None

        # Worst-fitting member of the worst node.
        diffs = worst.self_differentials(traces)
        outgoing = min(diffs.items(), key=lambda item: item[1])[0]
        outgoing_values = traces.row(outgoing)
        outgoing_score_here = diffs[outgoing]

        partners = [g for g in reversed(ranked) if g.name != worst.name]
        for partner in partners[: self.config.candidate_nodes]:
            if len(partner.members) < 2:
                continue
            candidates = self._candidate_instances(partner, traces)
            for incoming in candidates:
                obs.count("remap.candidates_evaluated")
                incoming_values = traces.row(incoming)
                incoming_score_there = partner.self_differentials(traces)[incoming]
                # Scores after the hypothetical exchange.
                incoming_at_worst = worst.differential(
                    incoming_values, exclude=outgoing, traces=traces
                )
                outgoing_at_partner = partner.differential(
                    outgoing_values, exclude=incoming, traces=traces
                )
                gain_worst = incoming_at_worst - outgoing_score_here
                gain_partner = outgoing_at_partner - incoming_score_there
                if (
                    gain_worst > self.config.min_improvement
                    and gain_partner > self.config.min_improvement
                ):
                    return Swap(
                        instance_a=outgoing,
                        node_a=worst.name,
                        instance_b=incoming,
                        node_b=partner.name,
                        gain_a=gain_worst,
                        gain_b=gain_partner,
                    )
        return None

    def _candidate_instances(self, group: _NodeGroup, traces: TraceSet) -> List[str]:
        """Partner-node members most synchronous with their own node first.

        Those contribute most to the partner's peak, so moving them out is
        likeliest to help both sides.  Rides the group's cached
        self-differentials, so an unchanged partner costs nothing to rank.
        """
        scored = [
            (score, instance_id)
            for instance_id, score in group.self_differentials(traces).items()
        ]
        scored.sort()
        return [instance_id for _, instance_id in scored[: self.config.candidate_instances]]


# ----------------------------------------------------------------------
# shard execution helpers
# ----------------------------------------------------------------------
def _apply_swaps(assignment: Assignment, swaps: List[Swap]) -> Assignment:
    """Replay accepted swaps onto an assignment, in acceptance order.

    Shards touch disjoint instances, so replaying shard-by-shard yields
    the same assignment whatever order the shards finished in.
    """
    current = assignment
    for swap in swaps:
        current = current.with_swap(swap.instance_a, swap.instance_b)
    return current


def _remap_shard_groups(
    engine: RemappingEngine,
    members_by_node: Dict[str, List[str]],
    traces: TraceSet,
) -> "tuple[List[Swap], Dict[str, np.ndarray]]":
    """Run one shard's swap loop (or just compute totals for a lone group)."""
    groups = {
        name: _NodeGroup(name, members, traces)
        for name, members in members_by_node.items()
    }
    if len(groups) < 2:
        # Nothing to swap against inside this shard; totals still reported.
        return [], {name: group.total for name, group in groups.items()}
    return engine._swap_groups(groups, traces)


def _remap_shard_task(
    handle: object,
    grid: object,
    groups_spec: "tuple",
    config: RemapConfig,
) -> "tuple[List[Swap], Dict[str, np.ndarray]]":
    """One shard of a sharded remap, run in a pool worker.

    ``groups_spec`` is ``((node_name, ((instance_id, row), ...)), ...)`` —
    names and row indices only; the trace matrix arrives through the
    shared-memory ``handle``.  The shard's rows are gathered into a local
    TraceSet (a copy bounded by shard size, not fleet size).
    """
    from ..engine.sharedmem import attached_view

    view = attached_view(handle)
    ids = [
        instance_id
        for _, members in groups_spec
        for instance_id, _ in members
    ]
    rows = [
        row
        for _, members in groups_spec
        for _, row in members
    ]
    traces = TraceSet(grid, ids, view[np.asarray(rows)], dtype=view.dtype)
    members_by_node = {
        name: [instance_id for instance_id, _ in members]
        for name, members in groups_spec
    }
    return _remap_shard_groups(RemappingEngine(config), members_by_node, traces)
