"""The dynamic power profile reshaping runtime (Sec. 4).

Simulates a datacenter's test week under four scenarios:

* ``pre``            — the original fleet and traffic (pre-SmoothOperator);
* ``lc_only``        — headroom filled with LC-specific servers only;
* ``conversion``     — headroom filled with storage-disaggregated
  *conversion* servers that flip between Batch and LC with load (Sec. 4.2);
* ``throttle_boost`` — conversion plus proactive batch throttling during
  LC-heavy Phase (funding extra conversion servers) and batch boosting
  during Batch-heavy Phase.

.. deprecated::
    :class:`ReshapingRuntime` is now a thin shim over the unified
    simulation core (:class:`repro.engine.Engine`): each ``run_*`` method
    builds a declarative :class:`repro.engine.ScenarioSpec` and executes
    it through the engine's policy pipeline, producing bit-identical
    results (pinned by the golden parity suite in ``tests/engine/``).
    New code should construct specs and call :meth:`Engine.run` — or
    :func:`repro.engine.run_many` for parallel batches — directly.
    :class:`FleetDescription` and :class:`ScenarioResult` live in
    :mod:`repro.engine.state` and are re-exported here unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .._compat import _deprecated
from ..engine.spec import ScenarioSpec
from ..engine.state import FleetDescription, ScenarioResult  # noqa: F401  (re-export)
from ..sim.demand import DemandTrace
from ..sim.power_model import DVFSModel
from .conversion import ConversionPolicy
from .throttling import ThrottleBoostPolicy


class _EngineBackedRuntime:
    """Shared shim plumbing: an owned Engine plus the clean-run methods.

    Both :class:`ReshapingRuntime` and
    :class:`repro.faults.runtime.ChaosReshapingRuntime` extend this (and
    deliberately *not* each other — the old subclass relationship is gone;
    the fault layering is a pipeline of engine policies now).
    """

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        throttle: Optional[ThrottleBoostPolicy] = None,
        dvfs: Optional[DVFSModel] = None,
        **engine_kwargs,
    ) -> None:
        # Lazy: repro.engine.core is mid-import when this module loads
        # through the engine's own ``reshaping.throttling`` dependency.
        from ..engine.core import Engine

        self._engine = Engine(
            fleet, conversion, throttle=throttle, dvfs=dvfs, **engine_kwargs
        )

    # -- the engine owns the models; expose them read-only ---------------
    @property
    def fleet(self) -> FleetDescription:
        return self._engine.fleet

    @property
    def conversion(self) -> ConversionPolicy:
        return self._engine.conversion

    @property
    def throttle(self) -> ThrottleBoostPolicy:
        return self._engine.throttle

    @property
    def dvfs(self) -> DVFSModel:
        return self._engine.dvfs

    def _spec(self, mode: str, demand: DemandTrace, **kwargs) -> ScenarioSpec:
        engine = self._engine
        return ScenarioSpec(
            mode=mode,
            fleet=engine.fleet,
            demand=demand,
            conversion=engine.conversion,
            throttle=engine.throttle,
            dvfs=engine.dvfs,
            failures=engine.failures,
            conversion_faults=engine.conversion_faults,
            breaker=engine.breaker,
            capping_policy=engine.capping_policy,
            seed=engine.seed,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # scenario entry points
    # ------------------------------------------------------------------
    def run_pre(self, demand: DemandTrace) -> ScenarioResult:
        """Original fleet, original traffic, nominal frequency everywhere."""
        return self._engine.run(self._spec("pre", demand)).result

    def run_lc_only(self, demand: DemandTrace, extra_servers: int) -> ScenarioResult:
        """Headroom filled with LC-specific servers (always LC)."""
        spec = self._spec("lc_only", demand, extra_servers=extra_servers)
        return self._engine.run(spec).result

    def run_conversion(self, demand: DemandTrace, extra_servers: int) -> ScenarioResult:
        """Headroom filled with conversion servers flipping with the phase.

        During Batch-heavy Phase at most
        ``conversion.batch_convertible(extra, n_batch)`` extras run batch;
        any remainder stays in LC mode (the batch tier cannot absorb them).
        """
        spec = self._spec("conversion", demand, extra_servers=extra_servers)
        return self._engine.run(spec).result

    def run_throttle_boost(
        self,
        demand: DemandTrace,
        extra_conversion: int,
        extra_throttle_funded: Optional[int] = None,
    ) -> ScenarioResult:
        """Conversion plus proactive throttling and boosting.

        ``extra_throttle_funded`` (``e_th``) defaults to what throttling the
        batch fleet frees at the policy's throttle frequency.
        """
        spec = self._spec(
            "throttle_boost",
            demand,
            extra_servers=extra_conversion,
            extra_throttle_funded=extra_throttle_funded,
        )
        return self._engine.run(spec).result

    # ------------------------------------------------------------------
    def conversion_plan(self, demand: DemandTrace, total_extra: int) -> "tuple":
        """Per-step fleet plan for ``total_extra`` conversion servers.

        Delegates to :meth:`repro.engine.Engine.conversion_plan`.
        """
        return self._engine.conversion_plan(demand, total_extra)


class ReshapingRuntime(_EngineBackedRuntime):
    """Runs the Sec. 4 scenarios for one datacenter.

    .. deprecated::
        A shim over :class:`repro.engine.Engine`; see the module note.
    """

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        throttle: Optional[ThrottleBoostPolicy] = None,
        dvfs: Optional[DVFSModel] = None,
    ) -> None:
        _deprecated(
            "ReshapingRuntime is deprecated; build a ScenarioSpec and run it "
            "through repro.engine.Engine (results are bit-identical)"
        )
        super().__init__(fleet, conversion, throttle=throttle, dvfs=dvfs)


@dataclass
class ReshapingComparison:
    """Figure 13/14-style comparison of reshaping scenarios against ``pre``."""

    pre: ScenarioResult
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)

    def lc_improvement(self, name: str) -> float:
        base = self.pre.lc_total()
        if base == 0:
            return 0.0
        return self.scenarios[name].lc_total() / base - 1.0

    def batch_improvement(self, name: str) -> float:
        base = self.pre.batch_total()
        if base == 0:
            return 0.0
        return self.scenarios[name].batch_total() / base - 1.0

    def slack_reduction(
        self,
        name: str,
        mask: Optional[np.ndarray] = None,
        *,
        baseline: str = "pre",
    ) -> float:
        """Fractional reduction of mean power slack vs a baseline (Figure 14).

        ``mask`` restricts the comparison to a subset of steps (e.g. the
        off-peak / Batch-heavy hours).  ``baseline`` is ``"pre"`` or the
        name of another scenario; comparing ``"throttle_boost"`` against
        ``"lc_only"`` isolates what *dynamic reshaping itself* (conversion +
        throttling/boosting) does with the slack, separate from the static
        effect of simply hosting more servers.
        """
        base = self.pre if baseline == "pre" else self.scenarios[baseline]
        before = base.power_slack()
        after = self.scenarios[name].power_slack()
        if mask is not None:
            before = before[mask]
            after = after[mask]
        mean_before = float(before.mean())
        if mean_before <= 0:
            return 0.0
        return 1.0 - float(after.mean()) / mean_before
