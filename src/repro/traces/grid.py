"""Sampling grids for power traces.

The paper logs one power reading per minute for seven days (Sec. 3.3).  A
:class:`TimeGrid` pins down that sampling contract — the start time, the
sampling step, and the number of samples — so traces can only be combined
when they genuinely cover the same timestamps.  All times are expressed in
minutes; ``0`` is midnight on the first Monday of the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR
MINUTES_PER_WEEK = 7 * MINUTES_PER_DAY


class GridMismatchError(ValueError):
    """Raised when two traces on different grids are combined."""


@dataclass(frozen=True)
class TimeGrid:
    """A uniform sampling grid.

    Parameters
    ----------
    start_minute:
        Timestamp of the first sample, in minutes since the epoch of the
        observation window.
    step_minutes:
        Distance between consecutive samples, in minutes.
    n_samples:
        Number of samples in the grid.
    """

    start_minute: int
    step_minutes: int
    n_samples: int

    def __post_init__(self) -> None:
        if self.step_minutes <= 0:
            raise ValueError(f"step_minutes must be positive, got {self.step_minutes}")
        if self.n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {self.n_samples}")

    @classmethod
    def for_days(
        cls, days: int, *, step_minutes: int = 10, start_minute: int = 0
    ) -> "TimeGrid":
        """Grid covering ``days`` whole days at ``step_minutes`` resolution."""
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        if MINUTES_PER_DAY % step_minutes != 0:
            raise ValueError(
                f"step_minutes must divide a day, got {step_minutes}"
            )
        return cls(start_minute, step_minutes, days * MINUTES_PER_DAY // step_minutes)

    @classmethod
    def for_weeks(
        cls, weeks: int, *, step_minutes: int = 10, start_minute: int = 0
    ) -> "TimeGrid":
        """Grid covering ``weeks`` whole weeks (the paper's 7-day I-trace unit)."""
        return cls.for_days(7 * weeks, step_minutes=step_minutes, start_minute=start_minute)

    @property
    def duration_minutes(self) -> int:
        """Total timespan covered by the grid, in minutes."""
        return self.step_minutes * self.n_samples

    @property
    def samples_per_day(self) -> int:
        if MINUTES_PER_DAY % self.step_minutes != 0:
            raise ValueError(
                f"grid step {self.step_minutes} does not divide a day"
            )
        return MINUTES_PER_DAY // self.step_minutes

    @property
    def samples_per_week(self) -> int:
        return 7 * self.samples_per_day

    @property
    def n_days(self) -> float:
        return self.duration_minutes / MINUTES_PER_DAY

    @property
    def n_weeks(self) -> float:
        return self.duration_minutes / MINUTES_PER_WEEK

    def covers_whole_days(self) -> bool:
        return self.duration_minutes % MINUTES_PER_DAY == 0

    def covers_whole_weeks(self) -> bool:
        return self.duration_minutes % MINUTES_PER_WEEK == 0

    def timestamps(self) -> np.ndarray:
        """Timestamps (minutes) for every sample, shape ``(n_samples,)``."""
        return self.start_minute + self.step_minutes * np.arange(self.n_samples)

    def hours_of_day(self) -> np.ndarray:
        """Hour-of-day (fractional, in ``[0, 24)``) for every sample."""
        return (self.timestamps() % MINUTES_PER_DAY) / MINUTES_PER_HOUR

    def days_of_week(self) -> np.ndarray:
        """Integer day-of-week (0 = Monday) for every sample."""
        return (self.timestamps() % MINUTES_PER_WEEK) // MINUTES_PER_DAY

    def index_at(self, minute: int) -> int:
        """Index of the sample taken at ``minute`` (must lie on the grid)."""
        offset = minute - self.start_minute
        if offset % self.step_minutes != 0:
            raise ValueError(f"minute {minute} is not on the grid")
        index = offset // self.step_minutes
        if not 0 <= index < self.n_samples:
            raise IndexError(f"minute {minute} outside the grid")
        return int(index)

    def week_view_shape(self) -> tuple:
        """Shape ``(n_weeks, samples_per_week)`` for reshaping whole-week data."""
        if not self.covers_whole_weeks():
            raise ValueError("grid does not cover whole weeks")
        weeks = self.duration_minutes // MINUTES_PER_WEEK
        return (weeks, self.samples_per_week)

    def one_week(self) -> "TimeGrid":
        """A single-week grid with the same step, anchored at the same start."""
        if not self.covers_whole_weeks():
            raise ValueError("grid does not cover whole weeks")
        return TimeGrid(self.start_minute, self.step_minutes, self.samples_per_week)

    def require_same(self, other: "TimeGrid") -> None:
        """Raise :class:`GridMismatchError` unless ``other`` equals this grid."""
        if self != other:
            raise GridMismatchError(f"grid mismatch: {self} vs {other}")
