"""Incremental placement adaptation via differential-score swaps (Sec. 3.6).

Mid/long-term workload drift slowly degrades a placement.  Rather than
re-running the full placer, SmoothOperator identifies the most fragmented
power node (lowest asynchrony score), finds its worst-fitting instance (the
lowest *differential asynchrony score*, Sec. 3.6), and swaps it with an
instance from another node — accepting the swap only if the differential
scores improve at *both* nodes involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..infra.assignment import Assignment
from ..traces.traceset import TraceSet

#: Incremental ``total`` updates accumulate float drift; every this many
#: swaps a group recomputes its aggregate exactly from member rows.
RECOMPUTE_EVERY = 64


@dataclass(frozen=True)
class RemapConfig:
    """Tuning for the adaptation loop.

    Attributes
    ----------
    level:
        Tree level at which node fragmentation is evaluated (typically the
        RPP level — the leaves' parents — where fragmentation bites).
    max_swaps:
        Upper bound on accepted swaps per run.
    candidate_nodes:
        How many peer nodes (highest asynchrony first) to consider as swap
        partners for the worst node.
    candidate_instances:
        How many instances per partner node to evaluate.
    min_improvement:
        A swap must raise each node's differential score by at least this
        much to be accepted (hysteresis against churn).
    """

    level: str
    max_swaps: int = 50
    candidate_nodes: int = 4
    candidate_instances: int = 16
    min_improvement: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_swaps < 0:
            raise ValueError("max_swaps cannot be negative")
        if self.candidate_nodes <= 0 or self.candidate_instances <= 0:
            raise ValueError("candidate counts must be positive")
        if self.min_improvement < 0:
            raise ValueError("min_improvement cannot be negative")


@dataclass(frozen=True)
class Swap:
    """One accepted instance exchange."""

    instance_a: str
    node_a: str
    instance_b: str
    node_b: str
    gain_a: float
    gain_b: float


@dataclass
class RemapResult:
    """Outcome of an adaptation run."""

    assignment: Assignment
    swaps: List[Swap] = field(default_factory=list)
    #: Final per-node aggregate value vectors, recomputed exactly from
    #: member rows after the last swap (drift-free).
    node_totals: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)


class _NodeGroup:
    """Mutable per-node state: member ids and the aggregate value vector."""

    __slots__ = ("name", "members", "total", "_swaps_since_recompute")

    def __init__(self, name: str, members: List[str], traces: TraceSet) -> None:
        self.name = name
        self.members = list(members)
        self._swaps_since_recompute = 0
        self.recompute(traces)

    def recompute(self, traces: TraceSet) -> None:
        """Rebuild ``total`` exactly from member rows (drift reset)."""
        total = np.zeros(traces.grid.n_samples)
        for instance_id in self.members:
            total += traces.row(instance_id)
        self.total = total
        self._swaps_since_recompute = 0

    def asynchrony(self, traces: TraceSet) -> float:
        if not self.members:
            return 1.0
        sum_peaks = sum(float(traces.row(i).max()) for i in self.members)
        aggregate_peak = float(self.total.max())
        return sum_peaks / aggregate_peak if aggregate_peak > 0 else 1.0

    def differential(self, instance_values: np.ndarray, *, exclude: Optional[str], traces: TraceSet) -> float:
        """AD of a (possibly external) instance against this node.

        ``exclude`` removes one current member from the group first — used
        to evaluate an incoming instance against the group it would join
        after the outgoing member departs.
        """
        rest_total = self.total.copy()
        count = len(self.members)
        if exclude is not None:
            rest_total -= traces.row(exclude)
            count -= 1
        if count <= 0:
            # Empty rest-group: the AD score's defined limit.  An all-zero
            # rest trace never coincides with the instance's peak, so the
            # score takes its best value, 2.0 — staying inside the [1, 2]
            # range instead of an out-of-range sentinel that would make the
            # swap loop prefer emptying a node over a genuine improvement.
            return 2.0
        rest = rest_total / count
        combined_peak = float((instance_values + rest).max())
        numerator = float(instance_values.max()) + float(rest.max())
        return numerator / combined_peak if combined_peak > 0 else 1.0

    def swap_member(self, outgoing: str, incoming: str, traces: TraceSet) -> None:
        self.members.remove(outgoing)
        self.members.append(incoming)
        self._swaps_since_recompute += 1
        if self._swaps_since_recompute >= RECOMPUTE_EVERY:
            self.recompute(traces)
        else:
            self.total += traces.row(incoming) - traces.row(outgoing)


class RemappingEngine:
    """Runs the Sec. 3.6 differential-score swap loop."""

    def __init__(self, config: RemapConfig) -> None:
        self.config = config

    def run(self, assignment: Assignment, traces: TraceSet) -> RemapResult:
        """Iteratively swap instances out of the most fragmented node."""
        with obs.span(
            "remap", level=self.config.level, max_swaps=self.config.max_swaps
        ):
            return self._run(assignment, traces)

    def _run(self, assignment: Assignment, traces: TraceSet) -> RemapResult:
        topology = assignment.topology
        groups = {
            node.name: _NodeGroup(
                node.name, assignment.instances_under(node.name), traces
            )
            for node in topology.nodes_at_level(self.config.level)
            if assignment.instances_under(node.name)
        }
        if len(groups) < 2:
            return RemapResult(assignment=assignment)

        current = assignment
        swaps: List[Swap] = []
        for _ in range(self.config.max_swaps):
            obs.count("remap.swaps_attempted")
            swap = self._best_swap(groups, traces)
            if swap is None:
                # No candidate cleared the hysteresis threshold: the loop
                # converged.  Recorded so operators can see *why* it stopped.
                obs_events.emit(
                    obs_events.SWAP_REJECT,
                    source="remapping",
                    level=self.config.level,
                    swaps_accepted=len(swaps),
                    min_improvement=self.config.min_improvement,
                )
                break
            current = current.with_swap(swap.instance_a, swap.instance_b)
            groups[swap.node_a].swap_member(swap.instance_a, swap.instance_b, traces)
            groups[swap.node_b].swap_member(swap.instance_b, swap.instance_a, traces)
            swaps.append(swap)
            obs.count("remap.swaps_accepted")
            obs_events.emit(
                obs_events.SWAP_ACCEPT,
                source="remapping",
                instance_a=swap.instance_a,
                node_a=swap.node_a,
                instance_b=swap.instance_b,
                node_b=swap.node_b,
                gain_a=swap.gain_a,
                gain_b=swap.gain_b,
            )
        # Exact final aggregates: incremental updates drift over long runs.
        for group in groups.values():
            group.recompute(traces)
        return RemapResult(
            assignment=current,
            swaps=swaps,
            node_totals={name: group.total for name, group in groups.items()},
        )

    # ------------------------------------------------------------------
    def _best_swap(
        self, groups: Dict[str, _NodeGroup], traces: TraceSet
    ) -> Optional[Swap]:
        ranked = sorted(groups.values(), key=lambda g: g.asynchrony(traces))
        worst = ranked[0]
        if len(worst.members) < 2:
            return None

        # Worst-fitting member of the worst node.
        diffs = {
            instance_id: worst.differential(
                traces.row(instance_id), exclude=instance_id, traces=traces
            )
            for instance_id in worst.members
        }
        outgoing = min(diffs.items(), key=lambda item: item[1])[0]
        outgoing_values = traces.row(outgoing)
        outgoing_score_here = diffs[outgoing]

        partners = [g for g in reversed(ranked) if g.name != worst.name]
        for partner in partners[: self.config.candidate_nodes]:
            if len(partner.members) < 2:
                continue
            candidates = self._candidate_instances(partner, traces)
            for incoming in candidates:
                obs.count("remap.candidates_evaluated")
                incoming_values = traces.row(incoming)
                incoming_score_there = partner.differential(
                    incoming_values, exclude=incoming, traces=traces
                )
                # Scores after the hypothetical exchange.
                incoming_at_worst = worst.differential(
                    incoming_values, exclude=outgoing, traces=traces
                )
                outgoing_at_partner = partner.differential(
                    outgoing_values, exclude=incoming, traces=traces
                )
                gain_worst = incoming_at_worst - outgoing_score_here
                gain_partner = outgoing_at_partner - incoming_score_there
                if (
                    gain_worst > self.config.min_improvement
                    and gain_partner > self.config.min_improvement
                ):
                    return Swap(
                        instance_a=outgoing,
                        node_a=worst.name,
                        instance_b=incoming,
                        node_b=partner.name,
                        gain_a=gain_worst,
                        gain_b=gain_partner,
                    )
        return None

    def _candidate_instances(self, group: _NodeGroup, traces: TraceSet) -> List[str]:
        """Partner-node members most synchronous with their own node first.

        Those contribute most to the partner's peak, so moving them out is
        likeliest to help both sides.
        """
        scored = [
            (
                group.differential(traces.row(i), exclude=i, traces=traces),
                i,
            )
            for i in group.members
        ]
        scored.sort()
        return [instance_id for _, instance_id in scored[: self.config.candidate_instances]]
