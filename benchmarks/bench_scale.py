"""Fleet-scale scaling benchmark → ``BENCH_scale.json``.

Synthesizes a 100k-instance fleet (``BENCH_SCALE_INSTANCES`` overrides; the
harness is sized for 100k–1M) directly as one float32 trace matrix — no
Python-level per-instance objects — then times the hot stages the
persistent worker pool is supposed to accelerate:

* ``synthesize``  — vectorized diurnal + phase + noise fleet construction;
* ``aggregate``   — the asynchrony numerator/denominator over the whole
  fleet (per-row peaks and the aggregate-trace peak);
* ``score_serial``   — the I-to-S score matrix in one process;
* ``score_parallel`` — the same scores sharded across the persistent pool
  over shared-memory views (:mod:`repro.engine.sharedmem`).

Scores are row-independent, so serial and parallel results must be
*identical* — asserted every run.  The scaling gate (parallel efficiency
``speedup / workers >= 0.7``) only applies on multi-CPU hosts;
single-CPU runners record the numbers and skip the assertion, and
``tools/bench_compare.py`` applies the same rule to the emitted document.
"""

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.core.asynchrony import score_matrix
from repro.engine import warm_pool
from repro.traces.grid import TimeGrid
from repro.traces.traceset import TraceSet

N_INSTANCES = int(os.environ.get("BENCH_SCALE_INSTANCES", "100000"))
STEP_MINUTES = 60
N_BASIS = 8
SEED = 0
MIN_EFFICIENCY = 0.7

CPU_COUNT = os.cpu_count() or 1
WORKERS = int(os.environ.get("BENCH_SCALE_WORKERS", "0")) or min(
    4, max(2, CPU_COUNT)
)


def _synthesize(n_instances: int, grid: TimeGrid, rng: np.random.Generator) -> TraceSet:
    """A seeded synthetic fleet: diurnal base + per-instance phase + noise.

    Built as one vectorized float32 matrix — at 1M instances a row-by-row
    Python loop would dominate the benchmark it is meant to feed.
    """
    minutes = grid.start_minute + np.arange(grid.n_samples) * grid.step_minutes
    hours = (minutes / 60.0) % 24.0
    phase = rng.uniform(0.0, 24.0, size=n_instances).astype(np.float32)
    amplitude = rng.uniform(0.2, 0.6, size=n_instances).astype(np.float32)
    base = rng.uniform(0.5, 1.0, size=n_instances).astype(np.float32)
    angle = (
        (hours[np.newaxis, :].astype(np.float32) - phase[:, np.newaxis])
        * np.float32(2.0 * np.pi / 24.0)
    )
    matrix = base[:, np.newaxis] + amplitude[:, np.newaxis] * np.sin(angle)
    matrix += rng.normal(0.0, 0.02, size=matrix.shape).astype(np.float32)
    np.maximum(matrix, 0.0, out=matrix)
    ids = [f"i{i}" for i in range(n_instances)]
    return TraceSet(grid, ids, matrix, dtype=np.float32)


def _run():
    rng = np.random.default_rng(SEED)
    grid = TimeGrid(0, STEP_MINUTES, 7 * 24 * 60 // STEP_MINUTES)

    walls = {}
    started = time.perf_counter()
    instances = _synthesize(N_INSTANCES, grid, rng)
    basis = _synthesize(N_BASIS, grid, rng)
    walls["synthesize"] = time.perf_counter() - started

    started = time.perf_counter()
    sum_of_peaks = instances.sum_of_peaks()
    aggregate_peak = instances.aggregate_peak()
    walls["aggregate"] = time.perf_counter() - started
    assert sum_of_peaks >= aggregate_peak > 0

    started = time.perf_counter()
    serial = score_matrix(instances, basis, dtype=np.float32)
    walls["score_serial"] = time.perf_counter() - started

    # Spawn the workers outside the timed region: the committed cost of a
    # persistent pool is paid once per process, not once per batch.
    warm_pool(WORKERS)
    started = time.perf_counter()
    parallel = score_matrix(instances, basis, dtype=np.float32, workers=WORKERS)
    walls["score_parallel"] = time.perf_counter() - started

    return walls, serial, parallel


@pytest.mark.benchmark(group="scale")
def test_fleet_scale_scaling(benchmark, emit_report):
    walls, serial, parallel = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Worker count must not change a single score bit.
    assert np.array_equal(serial, parallel)

    speedup = (
        walls["score_serial"] / walls["score_parallel"]
        if walls["score_parallel"] > 0
        else float("inf")
    )
    efficiency = speedup / WORKERS

    obs.update_bench(
        "scale",
        "workload",
        {
            "n_instances": N_INSTANCES,
            "n_samples": 7 * 24 * 60 // STEP_MINUTES,
            "step_minutes": STEP_MINUTES,
            "n_basis": N_BASIS,
            "dtype": "float32",
            "seed": SEED,
        },
    )
    obs.update_bench(
        "scale",
        "stages",
        [
            {"stage": stage, "wall_s": wall, "calls": 1}
            for stage, wall in walls.items()
        ],
    )
    obs.update_bench(
        "scale",
        "scaling",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            "serial_wall_s": walls["score_serial"],
            "parallel_wall_s": walls["score_parallel"],
            "speedup": speedup,
            "efficiency": efficiency,
            "min_efficiency": MIN_EFFICIENCY,
        },
    )

    emit_report(
        "scale",
        "\n".join(
            [
                "fleet-scale scoring: serial vs shared-memory pool",
                f"  instances         {N_INSTANCES}",
                f"  basis traces      {N_BASIS}",
                f"  workers           {WORKERS} (host cpus: {CPU_COUNT})",
                f"  synthesize        {walls['synthesize']:.3f}s",
                f"  aggregate         {walls['aggregate']:.3f}s",
                f"  score serial      {walls['score_serial']:.3f}s",
                f"  score parallel    {walls['score_parallel']:.3f}s",
                f"  speedup           {speedup:.2f}x",
                f"  efficiency        {efficiency:.2f} (target {MIN_EFFICIENCY})",
            ]
        ),
    )

    # Near-linear scaling gate — only meaningful when the host actually
    # has the cores (bench_compare applies the identical rule).
    if CPU_COUNT >= 2:
        assert efficiency >= MIN_EFFICIENCY, (
            f"parallel scoring efficiency {efficiency:.2f} below "
            f"{MIN_EFFICIENCY} at {WORKERS} workers"
        )
