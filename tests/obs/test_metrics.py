"""Unit tests for the process-global metrics registry."""

import math

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, tracing


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        assert registry.inc("a") == 1.0
        assert registry.inc("a", 2.5) == 3.5
        assert registry.counter("a") == 3.5
        assert registry.counter("missing", -1.0) == -1.0

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 4)
        assert registry.gauge("depth") == 4.0
        registry.set_gauge("depth", 2)
        assert registry.gauge("depth") == 2.0
        assert registry.gauge("missing") == 0.0

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1)
        registry.observe("h", 10.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2.0}
        assert snapshot["gauges"] == {"g": 1.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestHistogram:
    def test_summary_moments(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["total"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}
        # An empty distribution has no percentiles: nan, not a fake zero.
        assert math.isnan(Histogram().percentile(50))
        assert math.isnan(Histogram().percentile(0))
        assert math.isnan(Histogram().percentile(100))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)
        with pytest.raises(ValueError):
            Histogram().percentile(-1)

    def test_percentile_extremes_are_exact(self):
        """q=0/q=100 come from the exact min/max, not the reservoir."""
        histogram = Histogram()
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(100) == 9999.0
        # Interior estimates are clamped into [min, max].
        assert 0.0 <= histogram.percentile(37) <= 9999.0

    def test_percentile_single_sample(self):
        histogram = Histogram()
        histogram.observe(42.0)
        for q in (0, 25, 50, 75, 100):
            assert histogram.percentile(q) == 42.0

    def test_merge_combines_moments_exactly(self):
        a, b = Histogram(), Histogram()
        for value in [1.0, 2.0, 3.0]:
            a.observe(value)
        for value in [10.0, 20.0]:
            b.observe(value)
        result = a.merge(b)
        assert result is a
        assert a.count == 5
        assert a.total == 36.0
        assert a.min == 1.0
        assert a.max == 20.0
        assert a.mean == pytest.approx(7.2)

    def test_merge_with_empty_is_identity(self):
        a = Histogram()
        for value in [1.0, 2.0]:
            a.observe(value)
        before = a.summary()
        a.merge(Histogram())
        assert a.summary() == before

    def test_merge_into_empty_copies(self):
        a, b = Histogram(), Histogram()
        b.observe(5.0)
        a.merge(b)
        assert a.count == 1
        assert a.percentile(50) == 5.0
        # The reservoir was copied, not shared.
        b.observe(100.0)
        assert a.count == 1

    def test_merge_self_rejected(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.merge(histogram)

    def test_merge_reservoir_stays_bounded(self):
        a, b = Histogram(), Histogram()
        for value in range(5000):
            a.observe(float(value))
            b.observe(float(value) + 5000.0)
        a.merge(b)
        assert a.count == 10_000
        assert len(a._reservoir) <= Histogram.RESERVOIR_SIZE
        assert a.min == 0.0 and a.max == 9999.0

    def test_reservoir_stays_bounded(self):
        histogram = Histogram()
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._reservoir) == Histogram.RESERVOIR_SIZE
        # Exact moments survive the sampling.
        assert histogram.min == 0.0
        assert histogram.max == 9999.0
        # Percentiles stay in the observed range and roughly ordered.
        p50 = histogram.percentile(50)
        p95 = histogram.percentile(95)
        assert 0.0 <= p50 <= p95 <= 9999.0


class TestGlobalHelpers:
    def test_count_always_hits_registry(self):
        obs.count("swaps", 2)
        obs.count("swaps")
        assert obs.counter_value("swaps") == 3.0

    def test_count_attributes_to_open_span(self):
        with tracing() as tracer:
            with obs.span("stage"):
                obs.count("hits", 4)
        assert obs.counter_value("hits") == 4.0
        assert tracer.find("stage").counters == {"hits": 4.0}

    def test_count_without_span_only_registry(self):
        with tracing() as tracer:
            obs.count("orphan")
        assert obs.counter_value("orphan") == 1.0
        assert tracer.roots == []

    def test_observe_and_gauge_helpers(self):
        obs.set_gauge("fleet", 480)
        obs.observe("latency", 1.5)
        obs.observe("latency", 2.5)
        snapshot = obs.snapshot_metrics()
        assert snapshot["gauges"]["fleet"] == 480.0
        assert snapshot["histograms"]["latency"]["mean"] == 2.0

    def test_reset_specific_registry(self):
        registry = MetricsRegistry()
        registry.inc("x")
        obs.reset_metrics(registry)
        assert registry.counter("x") == 0.0
