"""Unit tests for the reshaping runtime scenarios."""

import numpy as np
import pytest

from repro.reshaping import (
    ConversionPolicy,
    FleetDescription,
    ReshapingComparison,
    ReshapingRuntime,
    ThrottleBoostPolicy,
)
from repro.sim import DemandTrace, DVFSModel, ServerPowerModel
from repro.traces import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.for_days(2, step_minutes=60)


@pytest.fixture
def fleet():
    return FleetDescription(
        n_lc=100,
        n_batch=40,
        lc_model=ServerPowerModel(90, 240),
        batch_model=ServerPowerModel(150, 235),
        budget_watts=45_000.0,
    )


@pytest.fixture
def demand(grid):
    """Diurnal demand: peak per-server load 0.85 on the original fleet."""
    hours = grid.hours_of_day()
    shape = 0.35 + 0.5 * np.exp(2.0 * (np.cos(2 * np.pi * (hours - 14) / 24) - 1))
    return DemandTrace(grid, shape * 100.0)


@pytest.fixture
def runtime(fleet):
    return ReshapingRuntime(
        fleet,
        ConversionPolicy(conversion_threshold=0.85),
        throttle=ThrottleBoostPolicy(),
        dvfs=DVFSModel(),
    )


class TestFleetValidation:
    def test_requires_lc(self):
        with pytest.raises(ValueError):
            FleetDescription(
                n_lc=0, n_batch=1,
                lc_model=ServerPowerModel(90, 240),
                batch_model=ServerPowerModel(150, 235),
                budget_watts=1000,
            )

    def test_requires_budget(self):
        with pytest.raises(ValueError):
            FleetDescription(
                n_lc=1, n_batch=1,
                lc_model=ServerPowerModel(90, 240),
                batch_model=ServerPowerModel(150, 235),
                budget_watts=0,
            )


class TestPre:
    def test_no_drops_at_calibrated_demand(self, runtime, demand):
        result = runtime.run_pre(demand)
        assert result.dropped_fraction() == pytest.approx(0.0, abs=1e-9)

    def test_power_positive_and_bounded(self, runtime, demand, fleet):
        result = runtime.run_pre(demand)
        assert result.total_power.min() > 0
        assert result.peak_power() <= fleet.budget_watts

    def test_slack_metrics(self, runtime, demand):
        result = runtime.run_pre(demand)
        assert result.mean_slack() > 0
        assert result.energy_slack() > 0
        assert result.overload_steps() == 0


class TestLCOnly:
    def test_more_servers_serve_more(self, runtime, demand):
        pre = runtime.run_pre(demand)
        grown = runtime.run_lc_only(demand.scaled(1.1), 10)
        assert grown.lc_total() > pre.lc_total()

    def test_negative_extra_rejected(self, runtime, demand):
        with pytest.raises(ValueError):
            runtime.run_lc_only(demand, -1)


class TestConversion:
    def test_phase_switching_visible(self, runtime, demand):
        result = runtime.run_conversion(demand.scaled(1.1), 10)
        # Conversion servers join LC at peak...
        assert result.n_lc_active.max() == pytest.approx(110.0)
        # ...and leave it off-peak.
        assert result.n_lc_active.min() == pytest.approx(100.0)

    def test_batch_gains_during_offpeak(self, runtime, demand, fleet):
        pre = runtime.run_pre(demand)
        conv = runtime.run_conversion(demand.scaled(1.1), 10)
        assert conv.batch_total() > pre.batch_total()

    def test_convertible_cap_respected(self, fleet, demand):
        policy = ConversionPolicy(
            conversion_threshold=0.85, max_batch_conversion_fraction=0.1
        )
        runtime = ReshapingRuntime(fleet, policy)
        result = runtime.run_conversion(demand.scaled(1.1), 10)
        assert result.n_batch_active.max() <= fleet.n_batch + 4


class TestThrottleBoost:
    def test_throttles_during_peak(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.batch_freq.min() == pytest.approx(0.8)

    def test_boosts_during_offpeak(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.batch_freq.max() > 1.0

    def test_stays_under_budget(self, runtime, demand, fleet):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.overload_steps() == 0

    def test_default_e_th_from_policy(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10)
        assert result.n_lc_active.max() >= 110.0

    def test_negative_e_th_rejected(self, runtime, demand):
        with pytest.raises(ValueError):
            runtime.run_throttle_boost(demand, 10, -1)


class TestComparison:
    def test_improvements_and_slack(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        comparison.scenarios["throttle_boost"] = runtime.run_throttle_boost(
            demand.scaled(1.15), 10, 5
        )
        assert comparison.lc_improvement("conversion") > 0
        assert comparison.batch_improvement("conversion") > 0
        assert comparison.lc_improvement("throttle_boost") > comparison.lc_improvement(
            "conversion"
        )
        assert comparison.slack_reduction("throttle_boost") > 0

    def test_slack_reduction_with_mask(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        mask = np.zeros(demand.grid.n_samples, dtype=bool)
        mask[:10] = True
        value = comparison.slack_reduction("conversion", mask=mask)
        assert isinstance(value, float)

    def test_scenario_baseline(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["lc_only"] = runtime.run_lc_only(demand.scaled(1.1), 10)
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        value = comparison.slack_reduction("conversion", baseline="lc_only")
        assert isinstance(value, float)


class TestOverloadClamp:
    """Regression: a mis-sized budget must not leave the boosted scenario
    over budget.  Before the clamp, a batch-heavy fleet whose nominal draw
    exceeded the budget kept ``freq >= 1`` everywhere and reported overload
    steps; the guard now re-solves the batch frequency against the actual
    non-batch draw."""

    @pytest.fixture
    def tight_runtime(self):
        fleet = FleetDescription(
            n_lc=10,
            n_batch=10,
            lc_model=ServerPowerModel(100, 200),
            batch_model=ServerPowerModel(100, 300),
            budget_watts=4_000.0,  # nominal batch-heavy draw is 4 200 W
        )
        return ReshapingRuntime(
            fleet,
            ConversionPolicy(conversion_threshold=0.9),
            throttle=ThrottleBoostPolicy(),
            dvfs=DVFSModel(),
        )

    @pytest.fixture
    def low_demand(self, grid):
        # Constant load 0.2 per LC server: batch-heavy at every step.
        return DemandTrace(grid, np.full(grid.n_samples, 2.0))

    def test_overbudget_nominal_is_clamped(self, tight_runtime, low_demand):
        result = tight_runtime.run_throttle_boost(low_demand, 0, 0)
        assert result.overload_steps() == 0
        # The cure is batch DVFS, not dropped LC traffic.
        assert (result.batch_freq < 1.0).all()
        assert result.dropped_fraction() == pytest.approx(0.0, abs=1e-9)
        # power = 1200 (LC) + 10 x (100 + 200 f^3) = 4000  =>  f^3 = 0.9
        np.testing.assert_allclose(result.batch_freq, 0.9 ** (1 / 3), atol=1e-6)
        np.testing.assert_allclose(result.total_power, 4_000.0, atol=1e-3)

    def test_clamp_untouched_when_budget_fits(self, runtime, demand):
        generous = runtime.run_throttle_boost(demand, 10, 5)
        assert generous.overload_steps() == 0
        # Boost is still allowed to run the batch fleet above nominal.
        assert generous.batch_freq.max() >= 1.0
