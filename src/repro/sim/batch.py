"""Batch (throughput-oriented) cluster accounting.

Batch services have effectively unbounded queued work (Sec. 2.3: hadoop
clusters are optimised for throughput, not latency), so batch throughput is
simply server-steps of compute delivered, scaled by the DVFS frequency in
effect at each step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .power_model import DVFSModel


@dataclass(frozen=True)
class BatchOutcome:
    """Per-step batch compute delivered and the frequency schedule used."""

    throughput: np.ndarray
    freq: np.ndarray

    def total(self) -> float:
        return float(np.sum(self.throughput))


def batch_throughput(
    n_servers: np.ndarray,
    freq: np.ndarray,
    dvfs: DVFSModel,
) -> BatchOutcome:
    """Compute delivered by ``n_servers`` batch servers at schedule ``freq``.

    One server-step at nominal frequency delivers 1 unit of batch work.
    """
    n_servers = np.asarray(n_servers, dtype=np.float64)
    freq = np.asarray(freq, dtype=np.float64)
    if np.any(n_servers < 0):
        raise ValueError("server count cannot be negative")
    clamped = dvfs.clamp(freq)
    throughput = n_servers * dvfs.throughput_factor(clamped)
    return BatchOutcome(throughput=throughput, freq=np.broadcast_to(clamped, throughput.shape).copy())
