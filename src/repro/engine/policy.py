"""The Policy / Actuator protocol and the built-in plugins.

A *policy* runs during the planning phase of :meth:`Engine.run`: it reads
and mutates the run's :class:`~repro.engine.state.FleetState` (and may set
``ctx.result`` directly when it needs full control of the assembly
sequence, as throttle/boost does).  An *actuator* runs after assembly and
transforms the assembled result — the emergency capping fallback is one.

What used to be subclass overrides (``ChaosReshapingRuntime`` extending
``ReshapingRuntime``) is now a pipeline of these plugins, chosen per
:class:`~repro.engine.spec.ScenarioSpec` mode or supplied explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

from ..obs import events as obs_events
from .faults import BATCH_POOL, LC_POOL
from .state import FleetState


@dataclass
class RunContext:
    """Everything one run carries between pipeline stages."""

    engine: Any  # the owning Engine (typed loosely to avoid a cycle)
    spec: Any
    state: FleetState
    #: A policy may set this to take over assembly; the engine assembles
    #: from ``state`` only when the pipeline leaves it ``None``.
    result: Optional[Any] = None
    #: Conversion-fault audit logs, attached by ConversionFaultPolicy.
    conversion_lc: Optional[Any] = None
    conversion_batch: Optional[Any] = None
    #: The LC-heavy phase mask, recorded by conversion planning.
    lc_heavy: Optional[np.ndarray] = None


@runtime_checkable
class Policy(Protocol):
    """Plan-phase plugin: mutates ``ctx.state`` (may set ``ctx.result``)."""

    def apply(self, ctx: RunContext) -> None: ...


@runtime_checkable
class Actuator(Protocol):
    """Post-assembly plugin: transforms the assembled result."""

    def actuate(self, ctx: RunContext, result: Any) -> Any: ...


# ----------------------------------------------------------------------
# planning policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StaticFleetPolicy:
    """``lc_only``: add always-on LC-specific servers to the plan."""

    extra_servers: int = 0

    def apply(self, ctx: RunContext) -> None:
        if self.extra_servers:
            ctx.state.n_lc_active = ctx.state.n_lc_active + float(self.extra_servers)


@dataclass(frozen=True)
class ConversionPlanPolicy:
    """``conversion``: extras flip between LC and Batch with the phase."""

    extra_servers: int = 0

    def apply(self, ctx: RunContext) -> None:
        lc_heavy, n_lc_active, n_batch_active, parked = ctx.engine.conversion_plan(
            ctx.state.demand, self.extra_servers
        )
        ctx.lc_heavy = lc_heavy
        ctx.state.n_lc_active = n_lc_active
        ctx.state.n_batch_active = n_batch_active
        ctx.state.parked = parked


@dataclass(frozen=True)
class ThrottleBoostPlan:
    """``throttle_boost``: conversion plus proactive batch DVFS.

    Owns the full assembly sequence (nominal → boost against the nominal
    slack → re-fit where still over budget) and therefore sets
    ``ctx.result`` itself instead of leaving assembly to the engine.
    """

    extra_conversion: int = 0
    extra_throttle_funded: Optional[int] = None

    def apply(self, ctx: RunContext) -> None:
        engine = ctx.engine
        fleet = engine.fleet
        demand = ctx.state.demand
        extra_throttle_funded = self.extra_throttle_funded
        if extra_throttle_funded is None:
            extra_throttle_funded = engine.throttle.extra_conversion_servers(
                fleet.n_batch,
                fleet.batch_model,
                fleet.lc_model,
                n_lc=fleet.n_lc,
            )
        if extra_throttle_funded < 0:
            raise ValueError("extra_throttle_funded cannot be negative")
        total_extra = self.extra_conversion + extra_throttle_funded

        lc_heavy, n_lc_active, n_batch_active, parked = engine.conversion_plan(
            demand, total_extra
        )
        batch_heavy = ~lc_heavy
        ctx.lc_heavy = lc_heavy

        # LC-heavy: batch throttled.  Batch-heavy: boost into the slack left
        # by the nominal-frequency power draw.
        freq = np.where(lc_heavy, engine.throttle.throttle_freq, 1.0)
        name = ctx.spec.scenario_name
        nominal = engine.assemble(
            name,
            demand,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_freq=freq,
            parked=parked,
        )
        slack = nominal.power_slack()
        boost = engine.throttle.boost_schedule(
            slack, n_batch_active, fleet.batch_model, engine.dvfs
        )
        freq = np.where(batch_heavy, np.maximum(boost, 1.0), freq)
        boosted = engine.assemble(
            name,
            demand,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_freq=freq,
            parked=parked,
        )
        # Regression guard: the boost schedule is solved against the
        # *nominal* run's slack.  Wherever the realised scenario still
        # exceeds budget (pre-existing overload, full-safety rounding),
        # re-solve the batch frequency against the actual non-batch draw so
        # the boosted scenario never trades throughput for a breaker trip.
        if boosted.overload_steps():
            freq = engine.fit_freq_to_budget(boosted, freq)
            boosted = engine.assemble(
                name,
                demand,
                n_lc_active=n_lc_active,
                n_batch_active=n_batch_active,
                batch_freq=freq,
                parked=parked,
            )
        throttled_steps = int(np.count_nonzero(boosted.batch_freq < 1.0 - 1e-12))
        if throttled_steps:
            obs_events.emit(
                obs_events.THROTTLE,
                source="reshaping.throttle_boost",
                steps=throttled_steps,
                min_freq=float(boosted.batch_freq.min()),
                throttle_freq=float(engine.throttle.throttle_freq),
            )
        boosted_steps = int(np.count_nonzero(boosted.batch_freq > 1.0 + 1e-12))
        if boosted_steps:
            obs_events.emit(
                obs_events.BOOST,
                source="reshaping.throttle_boost",
                steps=boosted_steps,
                max_freq=float(boosted.batch_freq.max()),
            )
        ctx.state.n_lc_active = n_lc_active
        ctx.state.n_batch_active = n_batch_active
        ctx.state.batch_freq = boosted.batch_freq
        ctx.state.parked = parked
        ctx.result = boosted


@dataclass(frozen=True)
class ConversionFaultPolicy:
    """Realise the conversion plan through the engine's fault model.

    Replaces the planned extra-server schedules with what latency, retries
    and aborts actually deliver; extras neither serving LC nor running
    batch idle mid-conversion (parked).
    """

    def apply(self, ctx: RunContext) -> None:
        engine = ctx.engine
        state = ctx.state
        fleet = engine.fleet
        extra_servers = ctx.spec.extra_servers
        rng = np.random.default_rng([engine.seed, 0xC0])
        realized_lc, log_lc = engine.conversion_faults.realize(
            state.n_lc_active - fleet.n_lc, rng
        )
        realized_batch, log_batch = engine.conversion_faults.realize(
            state.n_batch_active - fleet.n_batch, rng
        )
        # Extras neither serving LC nor running batch idle mid-conversion.
        state.parked = np.maximum(extra_servers - realized_lc - realized_batch, 0.0)
        state.n_lc_active = fleet.n_lc + realized_lc
        state.n_batch_active = fleet.n_batch + realized_batch
        ctx.conversion_lc = log_lc
        ctx.conversion_batch = log_batch
        for pool, log in ((LC_POOL, log_lc), (BATCH_POOL, log_batch)):
            obs_events.emit(
                obs_events.CONVERSION,
                severity="warning" if log.n_aborted else "info",
                source="faults.conversion",
                pool=pool,
                transitions=log.n_transitions,
                failed_attempts=log.n_failed_attempts,
                aborted=log.n_aborted,
                delayed_server_steps=log.delayed_server_steps,
            )


@dataclass(frozen=True)
class PowerSpikePolicy:
    """Inject the spec's correlated power-spike bursts into the run.

    Reads ``spec.spikes`` (a :class:`~repro.engine.faults.PowerSpikeSchedule`)
    and adds its per-step extra draw to the state; the engine folds it into
    the assembled total power.  This is the adversary the Γ-robust placer
    budgets against — groups of servers simultaneously jumping toward their
    worst-case draw.
    """

    def apply(self, ctx: RunContext) -> None:
        spikes = getattr(ctx.spec, "spikes", None)
        if spikes is None or not spikes.events:
            return
        extra = spikes.extra_power(ctx.state.n_samples)
        if ctx.state.extra_power is None:
            ctx.state.extra_power = extra
        else:
            ctx.state.extra_power = ctx.state.extra_power + extra
        obs_events.emit(
            obs_events.FAULT_INJECTION,
            severity="warning",
            source="faults.spikes",
            fault="power_spikes",
            events=len(spikes.events),
            peak_extra_watts=float(extra.max()),
            spike_watt_steps=float(extra.sum()),
        )


@dataclass(frozen=True)
class ServerFailurePolicy:
    """Subtract the engine's failure schedule from the planned fleet."""

    def apply(self, ctx: RunContext) -> None:
        engine = ctx.engine
        state = ctx.state
        n_samples = state.n_samples
        lc_lost, batch_lost = engine.failures.lost_servers(n_samples)
        state.lost_lc = lc_lost
        state.lost_batch = batch_lost
        state.n_lc_active = np.maximum(state.n_lc_active - lc_lost, 0.0)
        state.n_batch_active = np.maximum(state.n_batch_active - batch_lost, 0.0)
        if engine.failures.events:
            obs_events.emit(
                obs_events.FAULT_INJECTION,
                severity="warning",
                source="faults.failures",
                fault="server_failures",
                events=len(engine.failures.events),
                downtime_server_steps=engine.failures.downtime_server_steps(n_samples),
            )


# ----------------------------------------------------------------------
# actuators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EmergencyCapping:
    """Route an over-budget result through the capping fallback.

    ``attach_fault_logs`` additionally records the run's conversion-fault
    logs and failure downtime on the recovery report (the conversion-chaos
    behaviour).
    """

    attach_fault_logs: bool = False

    def actuate(self, ctx: RunContext, result: Any) -> Any:
        run = ctx.engine.recover(result)
        if self.attach_fault_logs:
            run.recovery.conversion_lc = ctx.conversion_lc
            run.recovery.conversion_batch = ctx.conversion_batch
            run.recovery.failure_downtime_server_steps = (
                ctx.engine.failures.downtime_server_steps(ctx.state.n_samples)
            )
        return run
