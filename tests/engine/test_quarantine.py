"""Poison-shard quarantine and the stage-wide degradation breaker.

A shard whose attempts keep taking workers down must stop condemning the
pool: after ``quarantine_after`` infrastructure failures it runs
in-process serial (fault-free by construction — the injectors are armed
only in workers).  When infrastructure failures sweep the whole stage,
the circuit breaker (``degrade_min_failures`` + ``degrade_failure_ratio``)
degrades everything to serial instead of thrashing rebuild after rebuild.
"""

import json

import pytest

from repro import obs
from repro.engine.chaos_infra import FAULTS_ENV
from repro.engine.deadline import TaskDeadline
from repro.engine.parallel import RunFailure, WorkerPool, run_many
from repro.obs import events as obs_events


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    yield
    obs.reset_metrics()
    obs.reset_report()


def ident(value):
    return value


class ReturnValue:
    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value


def _kill_spec(shards, times=99):
    return json.dumps({"kind": "kill", "shards": shards, "times": times})


# ----------------------------------------------------------------------
# per-shard quarantine
# ----------------------------------------------------------------------
def test_poison_shard_quarantined_to_inline_execution(monkeypatch):
    """A shard that kills its worker every time ends up succeeding inline."""
    monkeypatch.setenv(FAULTS_ENV, _kill_spec([1]))
    deadline = TaskDeadline(
        speculative=False, quarantine_after=2, degrade_min_failures=0
    )
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = pool.map_shards(
                ident,
                [(0,), (1,), (2,)],
                max_attempts=4,
                deadline=deadline,
            )
    # the quarantined attempt runs in-process, where no faults are armed
    assert results == [0, 1, 2]
    assert obs.counter_value("pool.quarantined_shards") == 1.0
    assert obs.counter_value("pool.tasks_inline") >= 1.0
    (event,) = log.by_kind(obs_events.SHARD_QUARANTINE)
    assert event.fields["shard"] == 1
    assert event.severity in ("warning", "critical")


def test_quarantine_disabled_lets_the_shard_exhaust(monkeypatch):
    """quarantine_after=0: the poison shard burns every attempt and fails."""
    monkeypatch.setenv(FAULTS_ENV, _kill_spec([0]))
    deadline = TaskDeadline(
        speculative=False, quarantine_after=0, degrade_min_failures=0
    )
    with WorkerPool(2) as pool:
        with pytest.raises(Exception):
            pool.map_shards(
                ident, [(0,), (1,)], max_attempts=2, deadline=deadline
            )
    assert obs.counter_value("pool.quarantined_shards") == 0.0


def test_quarantine_through_run_many(monkeypatch):
    """The same quarantine path protects suite execution."""
    monkeypatch.setenv(FAULTS_ENV, _kill_spec([1]))
    deadline = TaskDeadline(
        speculative=False, quarantine_after=2, degrade_min_failures=0
    )
    with WorkerPool(2) as pool:
        results = run_many(
            [ReturnValue(0), ReturnValue(1), ReturnValue(2)],
            workers=2,
            pool=pool,
            max_attempts=4,
            retry_backoff_s=0.0,
            deadline=deadline,
        )
    assert [artifact.result for artifact in results] == [0, 1, 2]
    assert not any(isinstance(entry, RunFailure) for entry in results)
    assert obs.counter_value("pool.quarantined_shards") == 1.0


# ----------------------------------------------------------------------
# the stage-wide circuit breaker
# ----------------------------------------------------------------------
def test_breaker_degrades_the_whole_stage_to_serial(monkeypatch):
    """Failures across every shard trip the breaker; serial finishes the job."""
    monkeypatch.setenv(FAULTS_ENV, _kill_spec(None))  # every shard, every time
    deadline = TaskDeadline(
        speculative=False,
        quarantine_after=0,
        degrade_min_failures=4,
        degrade_failure_ratio=0.5,
    )
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = pool.map_shards(
                ident,
                [(index,) for index in range(6)],
                max_attempts=4,
                deadline=deadline,
            )
    assert results == [0, 1, 2, 3, 4, 5]
    assert obs.counter_value("pool.degraded") == 1.0
    assert obs.counter_value("pool.tasks_inline") >= 1.0
    (event,) = log.by_kind(obs_events.POOL_DEGRADED)
    assert event.severity == "critical"
    assert event.fields["infra_failures"] >= 4
    assert event.fields["failure_ratio"] >= 0.5


def test_breaker_needs_both_count_and_ratio(monkeypatch):
    """One dead shard in a wide stage must NOT degrade everything."""
    monkeypatch.setenv(FAULTS_ENV, _kill_spec([3], times=1))
    deadline = TaskDeadline(
        speculative=False,
        quarantine_after=0,
        degrade_min_failures=4,
        degrade_failure_ratio=0.5,
    )
    with WorkerPool(2) as pool:
        results = pool.map_shards(
            ident,
            [(index,) for index in range(8)],
            max_attempts=4,
            deadline=deadline,
        )
    assert results == list(range(8))
    assert obs.counter_value("pool.degraded") == 0.0


def test_breaker_disabled_when_min_failures_is_zero(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, _kill_spec(None, times=1))
    deadline = TaskDeadline(
        speculative=False, quarantine_after=0, degrade_min_failures=0
    )
    with WorkerPool(2) as pool:
        results = pool.map_shards(
            ident,
            [(index,) for index in range(6)],
            max_attempts=4,
            deadline=deadline,
        )
    assert results == list(range(6))
    assert obs.counter_value("pool.degraded") == 0.0
