"""Service instances and instance power traces (I-traces).

A *service instance* is one process of a service running on its own physical
server (Sec. 3.1: Facebook deploys instances as native processes, one major
service per machine).  Its *instance power trace* is the 7-day per-machine
power log of Eq. 3; Eq. 4 averages 2-3 weeks of those logs into the averaged
I-trace that drives placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .series import PowerTrace


class ServiceKind:
    """Coarse service classes used by the reshaping runtime (Sec. 4)."""

    LATENCY_CRITICAL = "latency_critical"
    BATCH = "batch"
    STORAGE = "storage"
    OTHER = "other"

    ALL = (LATENCY_CRITICAL, BATCH, STORAGE, OTHER)


@dataclass(frozen=True)
class ServiceInstance:
    """One service instance pinned to one physical server.

    Attributes
    ----------
    instance_id:
        Globally unique id, e.g. ``"web-0042"``.
    service:
        Name of the owning service (``"web"``, ``"db"``, ``"hadoop"``, ...).
    kind:
        One of :class:`ServiceKind` — drives conversion eligibility.
    """

    instance_id: str
    service: str
    kind: str = ServiceKind.OTHER

    def __post_init__(self) -> None:
        if not self.instance_id:
            raise ValueError("instance_id cannot be empty")
        if not self.service:
            raise ValueError("service cannot be empty")
        if self.kind not in ServiceKind.ALL:
            raise ValueError(f"unknown service kind: {self.kind!r}")


def average_instance_trace(weekly_traces: Sequence[PowerTrace]) -> PowerTrace:
    """Average multiple single-week I-traces into one averaged I-trace (Eq. 4).

    Each input must be a whole-week trace on the same grid shape; the output
    element at time-of-week *t* is the mean of the inputs at *t*.
    """
    if not weekly_traces:
        raise ValueError("need at least one weekly trace")
    first = weekly_traces[0]
    total = first.values.copy()
    for trace in weekly_traces[1:]:
        if trace.grid.n_samples != first.grid.n_samples or (
            trace.grid.step_minutes != first.grid.step_minutes
        ):
            raise ValueError("weekly traces must share sampling shape")
        total = total + trace.values
    return PowerTrace(first.grid, total / len(weekly_traces))


@dataclass
class InstanceRecord:
    """An instance together with its telemetry.

    ``training_trace`` is the averaged I-trace (Eq. 4) built from the first
    weeks of telemetry; ``test_trace`` is the held-out evaluation week
    (Sec. 5.1's train/test split).
    """

    instance: ServiceInstance
    training_trace: PowerTrace
    test_trace: Optional[PowerTrace] = None

    @property
    def instance_id(self) -> str:
        return self.instance.instance_id

    @property
    def service(self) -> str:
        return self.instance.service

    @property
    def kind(self) -> str:
        return self.instance.kind

    @classmethod
    def from_weeks(
        cls,
        instance: ServiceInstance,
        weekly_traces: Sequence[PowerTrace],
        *,
        test_weeks: int = 1,
    ) -> "InstanceRecord":
        """Split weekly telemetry into training average + held-out test week.

        The last ``test_weeks`` weeks are reserved for evaluation; the
        remainder is averaged per Eq. 4.  With ``test_weeks=0`` all weeks
        train and ``test_trace`` is ``None``.
        """
        if test_weeks < 0:
            raise ValueError("test_weeks cannot be negative")
        if len(weekly_traces) <= test_weeks:
            raise ValueError(
                f"need more than {test_weeks} weeks of telemetry, "
                f"got {len(weekly_traces)}"
            )
        training_weeks = list(weekly_traces[: len(weekly_traces) - test_weeks])
        training = average_instance_trace(training_weeks)
        test = weekly_traces[-1] if test_weeks else None
        return cls(instance=instance, training_trace=training, test_trace=test)


def group_by_service(
    records: Iterable[InstanceRecord],
) -> Dict[str, List[InstanceRecord]]:
    """Bucket instance records by owning service (insertion order kept)."""
    grouped: Dict[str, List[InstanceRecord]] = {}
    for record in records:
        grouped.setdefault(record.service, []).append(record)
    return grouped
