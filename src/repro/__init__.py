"""SmoothOperator reproduction (ASPLOS 2018).

A power-fragmentation-aware service placement framework for multi-level
datacenter power infrastructure, plus the dynamic power profile reshaping
runtime that exploits the unlocked headroom.

Quickstart::

    from repro import (
        small_demo_spec, build_datacenter, SmoothOperator,
    )

    dc = build_datacenter(small_demo_spec())
    operator = SmoothOperator()
    outcome = operator.optimize(dc.records, dc.topology)
    report = operator.evaluate(dc.records, dc.baseline, outcome.assignment)
    print(report.peak_reduction)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from .baselines import (
    StatProfConfig,
    oblivious_placement,
    random_placement,
    round_robin_placement,
)
from .core import (
    GreedyPeakPlacer,
    PlacementConfig,
    RemapConfig,
    SmoothOperator,
    SmoothOperatorConfig,
    WorkloadAwarePlacer,
    asynchrony_score,
    balanced_kmeans,
    optimal_leaf_placement,
    pairwise_asynchrony,
    scoped_placement,
)
from .datasets import (
    Datacenter,
    DatacenterSpec,
    build_datacenter,
    dc1_spec,
    dc2_spec,
    dc3_spec,
    small_demo_spec,
)
from . import obs
from .infra import (
    Assignment,
    CappingSimulator,
    NodePowerView,
    PowerTopology,
    TopologySpec,
    build_topology,
    ocp_spec,
    plan_expansion,
)
from .reshaping import (
    ConversionPolicy,
    ReactiveConversionRuntime,
    ReshapingRuntime,
    ThrottleBoostPolicy,
    learn_conversion_threshold,
)
from .traces import (
    PowerTrace,
    ServiceProfile,
    TimeGrid,
    TraceSet,
    TraceSynthesizer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # traces
    "TimeGrid",
    "PowerTrace",
    "TraceSet",
    "TraceSynthesizer",
    "ServiceProfile",
    # infra
    "PowerTopology",
    "TopologySpec",
    "build_topology",
    "ocp_spec",
    "Assignment",
    "NodePowerView",
    "plan_expansion",
    "CappingSimulator",
    # core
    "asynchrony_score",
    "pairwise_asynchrony",
    "balanced_kmeans",
    "GreedyPeakPlacer",
    "optimal_leaf_placement",
    "scoped_placement",
    "PlacementConfig",
    "WorkloadAwarePlacer",
    "RemapConfig",
    "SmoothOperator",
    "SmoothOperatorConfig",
    # baselines
    "oblivious_placement",
    "random_placement",
    "round_robin_placement",
    "StatProfConfig",
    # reshaping
    "ConversionPolicy",
    "ThrottleBoostPolicy",
    "ReshapingRuntime",
    "ReactiveConversionRuntime",
    "learn_conversion_threshold",
    # datasets
    "Datacenter",
    "DatacenterSpec",
    "build_datacenter",
    "dc1_spec",
    "dc2_spec",
    "dc3_spec",
    "small_demo_spec",
]
