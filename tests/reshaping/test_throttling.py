"""Unit tests for the proactive throttling and boosting policy."""

import numpy as np
import pytest

from repro.reshaping import ThrottleBoostPolicy
from repro.sim import DVFSModel, ServerPowerModel


@pytest.fixture
def batch_model():
    return ServerPowerModel(idle_watts=150, peak_watts=240, gamma=3.0)


@pytest.fixture
def lc_model():
    return ServerPowerModel(idle_watts=90, peak_watts=240, gamma=3.0)


class TestValidation:
    def test_throttle_freq_bounds(self):
        with pytest.raises(ValueError):
            ThrottleBoostPolicy(throttle_freq=0.0)
        with pytest.raises(ValueError):
            ThrottleBoostPolicy(throttle_freq=1.2)

    def test_boost_safety_bounds(self):
        with pytest.raises(ValueError):
            ThrottleBoostPolicy(boost_safety=1.5)

    def test_negative_extra_fraction(self):
        with pytest.raises(ValueError):
            ThrottleBoostPolicy(max_extra_lc_fraction=-0.1)


class TestFreedWatts:
    def test_positive_when_throttling(self, batch_model):
        policy = ThrottleBoostPolicy(throttle_freq=0.8)
        freed = policy.freed_watts(100, batch_model)
        expected_per_server = batch_model.max_power(1.0) - batch_model.max_power(0.8)
        assert freed == pytest.approx(100 * expected_per_server)

    def test_zero_fleet(self, batch_model):
        assert ThrottleBoostPolicy().freed_watts(0, batch_model) == 0.0

    def test_negative_fleet_rejected(self, batch_model):
        with pytest.raises(ValueError):
            ThrottleBoostPolicy().freed_watts(-1, batch_model)

    def test_deeper_throttle_frees_more(self, batch_model):
        shallow = ThrottleBoostPolicy(throttle_freq=0.9).freed_watts(10, batch_model)
        deep = ThrottleBoostPolicy(throttle_freq=0.7).freed_watts(10, batch_model)
        assert deep > shallow


class TestExtraConversionServers:
    def test_funded_count(self, batch_model, lc_model):
        policy = ThrottleBoostPolicy(throttle_freq=0.8)
        e_th = policy.extra_conversion_servers(100, batch_model, lc_model)
        freed = policy.freed_watts(100, batch_model)
        assert e_th == int(freed // lc_model.max_power(1.0))

    def test_lc_cap(self, batch_model, lc_model):
        policy = ThrottleBoostPolicy(throttle_freq=0.6, max_extra_lc_fraction=0.05)
        uncapped = policy.extra_conversion_servers(1000, batch_model, lc_model)
        capped = policy.extra_conversion_servers(
            1000, batch_model, lc_model, n_lc=100
        )
        assert capped == min(uncapped, 5)

    def test_zero_batch_zero_extras(self, batch_model, lc_model):
        assert (
            ThrottleBoostPolicy().extra_conversion_servers(0, batch_model, lc_model)
            == 0
        )


class TestBoostSchedule:
    def test_fits_within_slack(self, batch_model):
        policy = ThrottleBoostPolicy(boost_safety=0.5)
        dvfs = DVFSModel(max_freq=2.0)
        slack = np.full(4, 1000.0)
        n_batch = np.full(4, 10.0)
        freq = policy.boost_schedule(slack, n_batch, batch_model, dvfs)
        extra_power = n_batch * batch_model.swing_watts * (freq**3 - 1.0)
        assert np.all(extra_power <= slack * 0.5 + 1e-6)

    def test_never_below_nominal(self, batch_model):
        policy = ThrottleBoostPolicy()
        freq = policy.boost_schedule(
            np.zeros(3), np.full(3, 10.0), batch_model, DVFSModel()
        )
        assert np.all(freq >= 1.0)

    def test_clamped_at_max(self, batch_model):
        policy = ThrottleBoostPolicy(boost_safety=1.0)
        dvfs = DVFSModel(max_freq=1.2)
        freq = policy.boost_schedule(
            np.full(2, 1e9), np.full(2, 1.0), batch_model, dvfs
        )
        assert np.allclose(freq, 1.2)

    def test_zero_batch_fleet(self, batch_model):
        policy = ThrottleBoostPolicy()
        freq = policy.boost_schedule(
            np.full(2, 100.0), np.zeros(2), batch_model, DVFSModel()
        )
        assert np.all(freq >= 1.0)

    def test_negative_slack_no_boost(self, batch_model):
        policy = ThrottleBoostPolicy()
        freq = policy.boost_schedule(
            np.full(2, -50.0), np.full(2, 10.0), batch_model, DVFSModel()
        )
        assert np.allclose(freq, 1.0)
