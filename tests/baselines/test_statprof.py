"""Unit tests for the StatProf comparator (Figure 11 machinery)."""

import numpy as np
import pytest

from repro.baselines import (
    FIGURE11_CONFIGS,
    StatProfConfig,
    instance_provisions,
    oblivious_placement,
    provisioning_comparison,
    smoothoperator_required_budget,
    statprof_node_budget,
    statprof_required_budget,
)
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.infra import Level, NodePowerView
from repro.traces import TimeGrid, TraceSet, training_trace_set


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


@pytest.fixture
def pair(grid):
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    return TraceSet(grid, ["u", "d"], np.vstack([up, down]))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StatProfConfig(under_provision=100)
        with pytest.raises(ValueError):
            StatProfConfig(overbooking=-0.1)

    def test_label(self):
        assert StatProfConfig(10, 0.1).label == "StatProf(10, 0.1)"

    def test_figure11_grid(self):
        assert (0.0, 0.0) in FIGURE11_CONFIGS
        assert (10.0, 0.10) in FIGURE11_CONFIGS


class TestInstanceProvisions:
    def test_u_zero_is_peak(self, pair):
        provisions = instance_provisions(pair, 0.0)
        assert np.allclose(provisions, [10.0, 10.0])

    def test_u_shrinks_provision(self, pair):
        assert np.all(instance_provisions(pair, 10.0) < instance_provisions(pair, 0.0))

    def test_invalid_u(self, pair):
        with pytest.raises(ValueError):
            instance_provisions(pair, 100.0)


class TestNodeBudget:
    def test_sums_member_percentiles(self, pair):
        config = StatProfConfig(0.0, 0.0)
        assert statprof_node_budget(["u", "d"], pair, config) == pytest.approx(20.0)

    def test_overbooking_discount(self, pair):
        config = StatProfConfig(0.0, 0.25)
        assert statprof_node_budget(["u", "d"], pair, config) == pytest.approx(16.0)

    def test_empty_node(self, pair):
        assert statprof_node_budget([], pair, StatProfConfig()) == 0.0


class TestPlacementBlindness:
    def test_statprof_level_total_is_placement_independent(
        self, tiny_records, tiny_topology
    ):
        """StatProf's defining weakness: it cannot see placement."""
        traces = training_trace_set(tiny_records)
        grouped = oblivious_placement(tiny_records, tiny_topology)
        spread = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2)).place(
            tiny_records, tiny_topology
        ).assignment
        config = StatProfConfig(5.0, 0.05)
        a = statprof_required_budget(grouped, traces, Level.RACK, config)
        b = statprof_required_budget(spread, traces, Level.RACK, config)
        assert a == pytest.approx(b)

    def test_smoothoperator_budget_placement_sensitive(
        self, tiny_records, tiny_topology
    ):
        traces = training_trace_set(tiny_records)
        grouped = oblivious_placement(tiny_records, tiny_topology)
        spread = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2)).place(
            tiny_records, tiny_topology
        ).assignment
        config = StatProfConfig(0.0, 0.0)
        grouped_view = NodePowerView(tiny_topology, grouped, traces)
        spread_view = NodePowerView(tiny_topology, spread, traces)
        a = smoothoperator_required_budget(grouped_view, Level.RACK, config)
        b = smoothoperator_required_budget(spread_view, Level.RACK, config)
        assert b < a


class TestComparisonGrid:
    def test_structure_and_normalisation(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        placement = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2)).place(
            tiny_records, tiny_topology
        ).assignment
        view = NodePowerView(tiny_topology, placement, traces)
        grid = provisioning_comparison(placement, view, traces)
        assert set(grid) == set(tiny_topology.levels())
        rack = grid[Level.RACK]
        # StatProf(0,0) normalised against itself is exactly 1.
        assert rack["StatProf(0, 0)"] == pytest.approx(1.0)
        # SmoOp always at or below the placement-blind requirement.
        for u, d in FIGURE11_CONFIGS:
            assert rack[f"SmoOp({u:g}, {d:g})"] <= rack[f"StatProf({u:g}, {d:g})"] + 1e-9

    def test_more_aggressive_configs_need_less(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        placement = oblivious_placement(tiny_records, tiny_topology)
        view = NodePowerView(tiny_topology, placement, traces)
        grid = provisioning_comparison(placement, view, traces)
        rack = grid[Level.RACK]
        assert rack["StatProf(10, 0.1)"] < rack["StatProf(0, 0)"]
        assert rack["SmoOp(10, 0.1)"] < rack["SmoOp(0, 0)"]
