"""Unit tests for the benchmark regression gate (tools/bench_compare.py)."""

import copy
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]

sys.path.insert(0, str(ROOT / "tools"))
try:
    import bench_compare
finally:
    sys.path.pop(0)


def _pipeline_doc(stage_walls):
    return {
        "benchmark": "pipeline",
        "sections": {
            "stages": [
                {"stage": name, "wall_s": wall, "cpu_s": wall, "calls": 1}
                for name, wall in stage_walls.items()
            ],
            "workload": {"instances": 480},
        },
    }


def _remap_doc(peak_reduction):
    return {
        "benchmark": "remap",
        "sections": {
            "remap": {
                "swaps_accepted": 2,
                "peak_reduction": dict(peak_reduction),
            }
        },
    }


def _engine_doc(serial, parallel, *, cpu_count=4, workers=4):
    return {
        "benchmark": "engine",
        "sections": {
            "stages": [
                {"stage": "chaos_suite_serial", "wall_s": serial, "calls": 1},
                {"stage": "chaos_suite_parallel", "wall_s": parallel, "calls": 1},
            ],
            "parallel": {
                "workers": workers,
                "cpu_count": cpu_count,
                "serial_wall_s": serial,
                "parallel_wall_s": parallel,
                "speedup": serial / parallel,
            },
        },
    }


def _scale_doc(
    serial, parallel, *, workers=4, cpu_count=4, capture=None, recovery=None
):
    sections = {
        "stages": [
            {"stage": "score_serial", "wall_s": serial, "calls": 1},
            {"stage": "score_parallel", "wall_s": parallel, "calls": 1},
        ],
        "scaling": {
            "workers": workers,
            "cpu_count": cpu_count,
            "serial_wall_s": serial,
            "parallel_wall_s": parallel,
            "speedup": serial / parallel,
            "efficiency": serial / parallel / workers,
        },
    }
    if capture is not None:
        sections["capture"] = capture
    if recovery is not None:
        sections["recovery"] = recovery
    return {"benchmark": "scale", "sections": sections}


def _capture_section(capture_wall, bare_wall, *, cpu_count=4, workers=4):
    return {
        "workers": workers,
        "cpu_count": cpu_count,
        "capture_wall_s": capture_wall,
        "no_capture_wall_s": bare_wall,
        "overhead_frac": capture_wall / bare_wall - 1.0,
        "max_overhead_frac": 0.05,
    }


def _recovery_section(guarded_wall, bare_wall, *, cpu_count=4, workers=4):
    return {
        "workers": workers,
        "cpu_count": cpu_count,
        "guarded_wall_s": guarded_wall,
        "bare_wall_s": bare_wall,
        "overhead_frac": guarded_wall / bare_wall - 1.0,
        "max_overhead_frac": 0.03,
    }


BASE_STAGES = {"synthesize": 0.2, "place": 0.19, "remap": 0.007}
BASE_PEAKS = {"rpp": 0.15, "suite": 0.02}


def _write_pair(directory, pipeline, remap):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_pipeline.json").write_text(json.dumps(pipeline))
    (directory / "BENCH_remap.json").write_text(json.dumps(remap))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    _write_pair(baseline, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
    return baseline, current


class TestComparePipeline:
    def test_identical_run_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["regressions"] == []
        assert all(row["status"] == "ok" for row in diff["pipeline"])

    def test_ten_x_slowdown_exits_nonzero(self, dirs):
        """The acceptance criterion: a 10x stage slowdown fails the gate."""
        baseline, current = dirs
        slowed = dict(BASE_STAGES, place=BASE_STAGES["place"] * 10)
        _write_pair(current, _pipeline_doc(slowed), _remap_doc(BASE_PEAKS))
        code = bench_compare.main(
            ["--baseline-dir", str(baseline), "--current-dir", str(current)]
        )
        assert code == 1

    def test_slowdown_within_tolerance_passes(self, dirs):
        baseline, current = dirs
        slowed = {name: wall * 2.5 for name, wall in BASE_STAGES.items()}
        _write_pair(current, _pipeline_doc(slowed), _remap_doc(BASE_PEAKS))
        code = bench_compare.main(
            ["--baseline-dir", str(baseline), "--current-dir", str(current)]
        )
        assert code == 0

    def test_missing_stage_is_regression(self, dirs):
        baseline, current = dirs
        fewer = {k: v for k, v in BASE_STAGES.items() if k != "remap"}
        _write_pair(current, _pipeline_doc(fewer), _remap_doc(BASE_PEAKS))
        diff = bench_compare.compare_documents(baseline, current)
        (row,) = [r for r in diff["pipeline"] if r["stage"] == "remap"]
        assert row["status"] == "missing"
        assert any("remap" in item for item in diff["regressions"])

    def test_new_stage_is_informational(self, dirs):
        baseline, current = dirs
        more = dict(BASE_STAGES, telemetry=0.001)
        _write_pair(current, _pipeline_doc(more), _remap_doc(BASE_PEAKS))
        diff = bench_compare.compare_documents(baseline, current)
        (row,) = [r for r in diff["pipeline"] if r["stage"] == "telemetry"]
        assert row["status"] == "new"
        assert diff["regressions"] == []

    def test_floor_absorbs_jitter_on_fast_stages(self, dirs):
        baseline, current = dirs
        # 0.007s -> 0.04s is nearly 6x but under the 0.05s absolute floor.
        jittery = dict(BASE_STAGES, remap=0.04)
        _write_pair(current, _pipeline_doc(jittery), _remap_doc(BASE_PEAKS))
        diff = bench_compare.compare_documents(baseline, current)
        (row,) = [r for r in diff["pipeline"] if r["stage"] == "remap"]
        assert row["status"] == "ok"


class TestCompareRemap:
    def test_peak_reduction_drop_is_regression(self, dirs):
        baseline, current = dirs
        worse = dict(BASE_PEAKS, rpp=BASE_PEAKS["rpp"] - 0.1)
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(worse))
        diff = bench_compare.compare_documents(baseline, current)
        (row,) = [r for r in diff["remap"] if r["level"] == "rpp"]
        assert row["status"] == "regression"
        assert diff["regressions"]

    def test_small_drop_within_tolerance_passes(self, dirs):
        baseline, current = dirs
        wobble = dict(BASE_PEAKS, rpp=BASE_PEAKS["rpp"] - 0.01)
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(wobble))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["regressions"] == []

    def test_improvement_passes(self, dirs):
        baseline, current = dirs
        better = {level: value + 0.05 for level, value in BASE_PEAKS.items()}
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(better))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["regressions"] == []


class TestCompareEngine:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_engine.json").write_text(json.dumps(doc))

    def test_fast_pool_on_multi_cpu_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(baseline, _engine_doc(2.0, 1.0))
        self._write(current, _engine_doc(2.0, 1.0))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["engine_parallel"]["status"] == "ok"
        assert diff["regressions"] == []

    def test_slow_pool_on_multi_cpu_is_regression(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(baseline, _engine_doc(2.0, 1.0))
        self._write(current, _engine_doc(2.0, 1.8))  # 1.11x < 1.3x
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["engine_parallel"]["status"] == "regression"
        assert any("engine speedup" in item for item in diff["regressions"])

    def test_single_cpu_skips_the_speedup_gate(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(baseline, _engine_doc(2.0, 2.4, cpu_count=1, workers=2))
        self._write(current, _engine_doc(2.0, 2.4, cpu_count=1, workers=2))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["engine_parallel"]["status"] == "skipped"
        assert diff["regressions"] == []

    def test_absent_engine_documents_are_tolerated(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["engine"] == []
        assert diff["engine_parallel"] is None
        assert diff["regressions"] == []

    def test_missing_baseline_still_gates_the_fresh_run(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(current, _engine_doc(2.0, 1.9))  # no baseline doc
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["engine"] == []
        assert diff["engine_parallel"]["status"] == "regression"

    def test_vanished_fresh_document_is_lost_coverage(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(baseline, _engine_doc(2.0, 1.0))
        diff = bench_compare.compare_documents(baseline, current)
        assert {row["status"] for row in diff["engine"]} == {"missing"}
        assert any("engine stage" in item for item in diff["regressions"])

    def test_custom_min_speedup_threshold(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(current, _engine_doc(2.0, 1.8))
        diff = bench_compare.compare_documents(baseline, current, min_speedup=1.05)
        assert diff["engine_parallel"]["status"] == "ok"


class TestCompareCapture:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_scale.json").write_text(json.dumps(doc))

    def test_small_overhead_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.0, capture=_capture_section(2.04, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["capture_gate"]["status"] == "ok"
        assert diff["regressions"] == []

    def test_large_overhead_is_regression(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        # 20% over bare and well past the 0.05s floor.
        self._write(
            current, _scale_doc(8.0, 2.4, capture=_capture_section(2.4, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["capture_gate"]["status"] == "regression"
        assert any("capture overhead" in item for item in diff["regressions"])

    def test_floor_absorbs_jitter_on_fast_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        # 30% relative but only 30ms absolute: under the additive floor.
        self._write(
            current, _scale_doc(1.0, 0.13, capture=_capture_section(0.13, 0.1))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["capture_gate"]["status"] == "ok"
        assert diff["regressions"] == []

    def test_single_cpu_skips_the_gate(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current,
            _scale_doc(
                8.0,
                9.0,
                cpu_count=1,
                capture=_capture_section(9.0, 6.0, cpu_count=1),
            ),
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["capture_gate"]["status"] == "skipped"
        assert "capture" not in " ".join(diff["regressions"])

    def test_document_without_capture_section_is_tolerated(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(current, _scale_doc(8.0, 2.0))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["capture_gate"] is None
        assert diff["regressions"] == []

    def test_custom_overhead_threshold(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.4, capture=_capture_section(2.4, 2.0))
        )
        diff = bench_compare.compare_documents(
            baseline, current, max_capture_overhead=0.25
        )
        assert diff["capture_gate"]["status"] == "ok"

    def test_rendered_in_summary(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.0, capture=_capture_section(2.04, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert "capture overhead" in bench_compare.render(diff)


class TestCompareRecovery:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_scale.json").write_text(json.dumps(doc))

    def test_small_overhead_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.0, recovery=_recovery_section(2.02, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["recovery_gate"]["status"] == "ok"
        assert diff["regressions"] == []

    def test_large_overhead_is_regression(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        # 15% over the unguarded pass and well past the 0.05s floor.
        self._write(
            current, _scale_doc(8.0, 2.0, recovery=_recovery_section(2.3, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["recovery_gate"]["status"] == "regression"
        assert any("recovery overhead" in item for item in diff["regressions"])

    def test_floor_absorbs_jitter_on_fast_passes(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        # 30% relative but only 30ms absolute: under the additive floor.
        self._write(
            current, _scale_doc(1.0, 0.1, recovery=_recovery_section(0.13, 0.1))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["recovery_gate"]["status"] == "ok"
        assert diff["regressions"] == []

    def test_single_cpu_skips_the_gate(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current,
            _scale_doc(
                8.0,
                9.0,
                cpu_count=1,
                recovery=_recovery_section(9.0, 6.0, cpu_count=1),
            ),
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["recovery_gate"]["status"] == "skipped"
        assert "recovery" not in " ".join(diff["regressions"])

    def test_document_without_recovery_section_is_tolerated(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(current, _scale_doc(8.0, 2.0))
        diff = bench_compare.compare_documents(baseline, current)
        assert diff["recovery_gate"] is None
        assert diff["regressions"] == []

    def test_custom_overhead_threshold(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.0, recovery=_recovery_section(2.3, 2.0))
        )
        diff = bench_compare.compare_documents(
            baseline, current, max_recovery_overhead=0.25
        )
        assert diff["recovery_gate"]["status"] == "ok"

    def test_rendered_in_summary(self, dirs):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        self._write(
            current, _scale_doc(8.0, 2.0, recovery=_recovery_section(2.02, 2.0))
        )
        diff = bench_compare.compare_documents(baseline, current)
        assert "recovery overhead" in bench_compare.render(diff)


class TestMainOutput:
    def test_output_writes_diff_json(self, dirs, tmp_path, capsys):
        baseline, current = dirs
        _write_pair(current, _pipeline_doc(BASE_STAGES), _remap_doc(BASE_PEAKS))
        out = tmp_path / "diff.json"
        code = bench_compare.main(
            [
                "--baseline-dir",
                str(baseline),
                "--current-dir",
                str(current),
                "--output",
                str(out),
            ]
        )
        assert code == 0
        diff = json.loads(out.read_text())
        assert diff["regressions"] == []
        assert {row["stage"] for row in diff["pipeline"]} == set(BASE_STAGES)
        assert "no regressions" in capsys.readouterr().out

    def test_malformed_document_raises(self, dirs):
        baseline, current = dirs
        current.mkdir(parents=True, exist_ok=True)
        (current / "BENCH_pipeline.json").write_text(json.dumps({"stages": []}))
        (current / "BENCH_remap.json").write_text(json.dumps(_remap_doc(BASE_PEAKS)))
        with pytest.raises(ValueError):
            bench_compare.compare_documents(baseline, current)

    def test_committed_baselines_pass_against_themselves(self):
        """The repo's own BENCH_*.json pair must pass the gate vs itself."""
        diff = bench_compare.compare_documents(ROOT, ROOT)
        assert diff["regressions"] == []


class TestRenderRobustness:
    def test_render_handles_missing_and_new_rows(self, dirs):
        baseline, current = dirs
        stages = copy.deepcopy(BASE_STAGES)
        del stages["remap"]
        stages["telemetry"] = 0.001
        peaks = {"rpp": BASE_PEAKS["rpp"]}  # "suite" level goes missing
        _write_pair(current, _pipeline_doc(stages), _remap_doc(peaks))
        diff = bench_compare.compare_documents(baseline, current)
        text = bench_compare.render(diff)
        assert "missing" in text
        assert "new" in text
        assert "REGRESSIONS" in text
