"""Property tests: incremental state == full recompute, for any delta sequence.

The delta layer's contract is exactness: after an arbitrary sequence of
swaps, moves, arrivals, departures, and in-place trace refreshes, every
incrementally maintained index (per-node aggregates and peaks, asynchrony
scores, nominal headroom) must be *bit-identical* to a from-scratch
rebuild from the materialized assignment; the Γ-robust accountants (whose
O(1) float patches reorder additions by design) must agree within
accumulation tolerance.  Float32 fast-path traces are exercised alongside
float64.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import AsynchronyIndex, node_asynchrony_scores
from repro.engine.delta import FleetDelta, PlacementState
from repro.infra import (
    Assignment,
    HeadroomIndex,
    Level,
    NodePowerView,
    build_topology,
    two_level_spec,
)
from repro.infra.budget import provision_from_view
from repro.infra.headroom import node_headroom
from repro.robust import RobustHeadroomIndex, UncertainPowerModel
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


@st.composite
def delta_scenes(draw):
    """A random fleet plus a random mixed delta sequence."""
    leaves = draw(st.integers(2, 4))
    per_leaf = draw(st.integers(2, 4))
    dtype = draw(st.sampled_from([np.float64, np.float32]))
    n = leaves * per_leaf
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.5, 50.0, size=(n, GRID.n_samples)).astype(dtype)
    topo = build_topology(
        two_level_spec("r", leaves=leaves, leaf_capacity=per_leaf + 2)
    )
    ids = [f"i{k}" for k in range(n)]
    traces = TraceSet(GRID, ids, matrix, dtype=dtype)
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k // per_leaf] for k in range(n)}
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["swap", "move", "churn", "trace"]),
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(0, leaves - 1),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return topo, Assignment(topo, mapping), traces, ops, rng


def _apply_ops(state, traces, ops, rng):
    """Translate the drawn op tuples into applied deltas (skipping no-ops)."""
    ids = traces.ids
    leaf_names = state.topology.leaf_names()
    applied = 0
    for kind, a, b, leaf_idx in ops:
        id_a, id_b = ids[a], ids[b]
        if kind == "swap":
            if (
                id_a in state
                and id_b in state
                and state.leaf_of(id_a) != state.leaf_of(id_b)
            ):
                state.swap(id_a, id_b)
                applied += 1
        elif kind == "move":
            dst = leaf_names[leaf_idx]
            if id_a in state and state.leaf_of(id_a) != dst:
                leaf = state.topology.node(dst)
                if leaf.capacity is None or len(state.members(dst)) < leaf.capacity:
                    state.move(id_a, dst)
                    applied += 1
        elif kind == "churn":
            # Departure then re-arrival on a (possibly) different leaf.
            if id_a in state:
                state.remove(id_a)
                applied += 1
            else:
                dst = leaf_names[leaf_idx]
                leaf = state.topology.node(dst)
                if leaf.capacity is None or len(state.members(dst)) < leaf.capacity:
                    state.place(id_a, dst)
                    applied += 1
        else:  # in-place trace refresh
            if id_a in state:
                row = traces.index_of(id_a)
                traces.matrix[row] = (
                    rng.uniform(0.5, 50.0, size=GRID.n_samples)
                ).astype(traces.matrix.dtype)
                state.update_traces(id_a)
                applied += 1
    return applied


class TestIncrementalEqualsFull:
    @given(scene=delta_scenes())
    @settings(max_examples=40, deadline=None)
    def test_aggregates_scores_and_headroom(self, scene):
        topo, assignment, traces, ops, rng = scene
        state = PlacementState(topo, traces, assignment)
        view = state.register(NodePowerView(topo, state.assignment(), traces))
        provision_from_view(view, margin=0.25)
        score_index = state.register(AsynchronyIndex(view, Level.RPP))
        head_index = state.register(HeadroomIndex(view))

        _apply_ops(state, traces, ops, rng)

        fresh_assignment = state.assignment()
        fresh_view = NodePowerView(topo, fresh_assignment, traces)
        for node in topo.nodes():
            assert np.array_equal(
                view._node_values[node.name], fresh_view._node_values[node.name]
            ), f"aggregate diverged at {node.name}"
            assert view.node_peak(node.name) == fresh_view.node_peak(node.name)

        full_scores = node_asynchrony_scores(
            fresh_assignment, traces, Level.RPP, view=fresh_view
        )
        assert score_index.scores() == full_scores

        assert head_index.headroom() == node_headroom(fresh_view)
        head_index.verify()

    @given(scene=delta_scenes())
    @settings(max_examples=25, deadline=None)
    def test_gamma_robust_accounting(self, scene):
        topo, assignment, traces, ops, rng = scene
        peaks = traces.peaks().astype(np.float64)
        means = traces.means().astype(np.float64)
        model = UncertainPowerModel(traces.ids, means, peaks - means)

        state = PlacementState(topo, traces, assignment)
        robust_index = RobustHeadroomIndex(topo, model, gamma=2)
        for instance_id, leaf_name in assignment.as_mapping().items():
            robust_index.place(instance_id, leaf_name)
        state.register(robust_index)

        _apply_ops(state, traces, ops, rng)

        robust_index.verify()
        fresh = RobustHeadroomIndex(topo, model, gamma=2)
        for instance_id, leaf_name in state.assignment().as_mapping().items():
            fresh.place(instance_id, leaf_name)
        for node in topo.nodes():
            incremental = robust_index.robust_load(node.name)
            rebuilt = fresh.robust_load(node.name)
            assert np.isclose(incremental, rebuilt, rtol=0, atol=1e-9 * max(1.0, rebuilt))
