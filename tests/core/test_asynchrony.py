"""Unit tests for asynchrony scores (Eq. 6-7, Sec. 3.4/3.6)."""

import numpy as np
import pytest

from repro.core import (
    asynchrony_score,
    averaged_group_trace,
    differential_score,
    differential_scores_for_node,
    pairwise_asynchrony,
    score_matrix,
    score_vector,
)
from repro.traces import PowerTrace, TimeGrid, TraceSet


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


def up(grid, peak=10.0):
    return PowerTrace(grid, np.linspace(0, peak, 24))


def down(grid, peak=10.0):
    return PowerTrace(grid, np.linspace(peak, 0, 24))


class TestScore:
    def test_identical_traces_score_one(self, grid):
        assert asynchrony_score([up(grid), up(grid)]) == pytest.approx(1.0)

    def test_perfectly_out_of_phase_pair(self, grid):
        """The Figure 3 example: anti-phase traces score close to 2."""
        score = asynchrony_score([up(grid), down(grid)])
        assert score == pytest.approx(2.0)

    def test_singleton_scores_one(self, grid):
        assert asynchrony_score([up(grid)]) == pytest.approx(1.0)

    def test_bounds(self, grid, rng):
        traces = [
            PowerTrace(grid, rng.random(24) * 10) for _ in range(5)
        ]
        score = asynchrony_score(traces)
        assert 1.0 <= score <= 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            asynchrony_score([])

    def test_zero_traces_score_one(self, grid):
        assert asynchrony_score([PowerTrace.zeros(grid)] * 3) == 1.0

    def test_traceset_and_list_agree(self, grid):
        traces = {"a": up(grid), "b": down(grid), "c": up(grid, 5)}
        as_set = asynchrony_score(TraceSet.from_traces(traces))
        as_list = asynchrony_score(list(traces.values()))
        assert as_set == pytest.approx(as_list)

    def test_pairwise_matches_score(self, grid):
        assert pairwise_asynchrony(up(grid), down(grid)) == pytest.approx(
            asynchrony_score([up(grid), down(grid)])
        )


class TestScoreVectors:
    def test_score_vector_shape(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid), "s2": down(grid)})
        vector = score_vector(up(grid), basis)
        assert vector.shape == (2,)

    def test_score_vector_values(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid), "s2": down(grid)})
        vector = score_vector(up(grid), basis)
        assert vector[0] == pytest.approx(1.0)   # synchronous with s1
        assert vector[1] == pytest.approx(2.0)   # anti-phase with s2

    def test_score_matrix_matches_vectors(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid), "s2": down(grid)})
        instances = TraceSet.from_traces(
            {"i1": up(grid), "i2": down(grid), "i3": up(grid, 3)}
        )
        matrix = score_matrix(instances, basis)
        assert matrix.shape == (3, 2)
        for row, instance_id in enumerate(instances.ids):
            expected = score_vector(instances[instance_id], basis)
            assert np.allclose(matrix[row], expected)

    def test_score_matrix_chunking_invariant(self, grid, rng):
        basis = TraceSet.from_traces({"s1": up(grid), "s2": down(grid)})
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24)) for k in range(10)}
        )
        a = score_matrix(instances, basis, chunk_size=3)
        b = score_matrix(instances, basis, chunk_size=100)
        assert np.allclose(a, b)

    def test_bad_chunk_size(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid)})
        with pytest.raises(ValueError):
            score_matrix(basis, basis, chunk_size=0)

    def test_max_bytes_bounds_chunking_without_changing_results(self, grid, rng):
        """Regression: the block size is derived from the memory bound, and
        chunking is a pure locality knob — results are bit-for-bit stable."""
        basis = TraceSet.from_traces(
            {f"s{k}": PowerTrace(grid, rng.random(24)) for k in range(4)}
        )
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24)) for k in range(12)}
        )
        unbounded = score_matrix(instances, basis, max_bytes=None)
        # One block row is 4 basis × 24 samples × 8 bytes = 768 B, so this
        # bound forces chunk_size down to a single row.
        tight = score_matrix(instances, basis, max_bytes=768)
        generous = score_matrix(instances, basis, max_bytes=1 << 30)
        assert np.array_equal(unbounded, tight)
        assert np.array_equal(unbounded, generous)

    def test_max_bytes_smaller_than_a_row_still_progresses(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid), "s2": down(grid)})
        instances = TraceSet.from_traces({"i1": up(grid), "i2": down(grid)})
        # Bound below one row's footprint: clamps to chunk_size=1, not 0.
        result = score_matrix(instances, basis, max_bytes=1)
        assert np.allclose(result, score_matrix(instances, basis, max_bytes=None))

    def test_bad_max_bytes(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid)})
        with pytest.raises(ValueError):
            score_matrix(basis, basis, max_bytes=0)
        with pytest.raises(ValueError):
            score_matrix(basis, basis, max_bytes=-64)

    def test_grid_mismatch_rejected(self, grid):
        basis = TraceSet.from_traces({"s1": up(grid)})
        other = PowerTrace.constant(TimeGrid(0, 30, 48), 1)
        with pytest.raises(Exception):
            score_vector(other, basis)

    def test_float32_fast_path_tracks_exact_scores(self, grid, rng):
        basis = TraceSet.from_traces(
            {f"s{k}": PowerTrace(grid, rng.random(24)) for k in range(4)}
        )
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24) * 5) for k in range(32)}
        )
        exact = score_matrix(instances, basis)
        fast = score_matrix(instances, basis, dtype=np.float32)
        # Scores come back float64 either way; only rounding differs.
        assert fast.dtype == np.float64
        assert np.allclose(exact, fast, rtol=1e-5, atol=1e-6)
        assert not np.array_equal(exact, fast) or exact.size == 0

    def test_default_dtype_is_bit_exact_float64(self, grid, rng):
        basis = TraceSet.from_traces(
            {f"s{k}": PowerTrace(grid, rng.random(24)) for k in range(3)}
        )
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24)) for k in range(8)}
        )
        assert np.array_equal(
            score_matrix(instances, basis),
            score_matrix(instances, basis, dtype=np.float64),
        )

    def test_worker_count_never_changes_scores(self, grid, rng):
        """Row scores are independent: the sharded pool path must be
        bit-identical to the serial path for any worker count."""
        from repro.engine.parallel import shutdown_pools

        basis = TraceSet.from_traces(
            {f"s{k}": PowerTrace(grid, rng.random(24)) for k in range(3)}
        )
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24)) for k in range(64)}
        )
        serial = score_matrix(instances, basis)
        try:
            # parallel_min_rows lowered so this small fleet actually shards.
            sharded = score_matrix(
                instances, basis, workers=2, parallel_min_rows=8
            )
        finally:
            shutdown_pools()
        assert np.array_equal(serial, sharded)

    def test_small_batches_stay_serial_despite_workers(self, grid, rng, monkeypatch):
        """Below parallel_min_rows the workers knob must not touch a pool."""
        import repro.core.asynchrony as asynchrony

        def forbidden(*args, **kwargs):
            raise AssertionError("small batch reached the sharded path")

        monkeypatch.setattr(asynchrony, "_score_matrix_sharded", forbidden)
        basis = TraceSet.from_traces({"s1": up(grid)})
        instances = TraceSet.from_traces(
            {f"i{k}": PowerTrace(grid, rng.random(24)) for k in range(4)}
        )
        result = score_matrix(instances, basis, workers=8)
        assert result.shape == (4, 1)


class TestDifferentialScores:
    def test_averaged_group_trace(self, grid):
        group = TraceSet.from_traces(
            {"a": up(grid), "b": down(grid), "c": PowerTrace.constant(grid, 4)}
        )
        pa = averaged_group_trace(group, "c")
        expected = (up(grid) + down(grid)) / 2
        assert pa == expected

    def test_averaged_group_needs_membership(self, grid):
        group = TraceSet.from_traces({"a": up(grid), "b": down(grid)})
        with pytest.raises(ValueError):
            averaged_group_trace(group, "zzz")

    def test_averaged_group_needs_two(self, grid):
        group = TraceSet.from_traces({"a": up(grid)})
        with pytest.raises(ValueError):
            averaged_group_trace(group, "a")

    def test_differential_score_value(self, grid):
        group = TraceSet.from_traces({"a": up(grid), "b": down(grid)})
        pa = averaged_group_trace(group, "a")
        score = differential_score(group["a"], pa)
        # a vs (b alone) is perfectly anti-phase.
        assert score == pytest.approx(2.0)

    def test_differential_scores_for_node(self, grid):
        group = TraceSet.from_traces(
            {"a": up(grid), "b": up(grid), "c": down(grid)}
        )
        scores = differential_scores_for_node(group)
        assert set(scores) == {"a", "b", "c"}
        # c peaks opposite the rest: it fits best (highest score).
        assert scores["c"] > scores["a"]

    def test_differential_scores_match_definition(self, grid):
        group = TraceSet.from_traces(
            {"a": up(grid), "b": down(grid), "c": PowerTrace.constant(grid, 2)}
        )
        scores = differential_scores_for_node(group)
        pa = averaged_group_trace(group, "a")
        assert scores["a"] == pytest.approx(differential_score(group["a"], pa))

    def test_needs_two_members(self, grid):
        group = TraceSet.from_traces({"a": up(grid)})
        with pytest.raises(ValueError):
            differential_scores_for_node(group)
