"""Unit tests for the oblivious (service-grouped) baseline."""

import pytest

from repro.baselines import fill_leaves_in_order, oblivious_placement
from repro.infra import AssignmentError, build_topology, two_level_spec


class TestObliviousPlacement:
    def test_groups_services(self, tiny_records, tiny_topology):
        assignment = oblivious_placement(tiny_records, tiny_topology)
        by_id = {r.instance_id: r.service for r in tiny_records}
        # With pure grouping, at least one leaf is a monoculture.
        monocultures = 0
        for leaf in tiny_topology.leaves():
            members = assignment.instances_on_leaf(leaf.name)
            if members and len({by_id[m] for m in members}) == 1:
                monocultures += 1
        assert monocultures >= 1

    def test_places_everything(self, tiny_records, tiny_topology):
        assignment = oblivious_placement(tiny_records, tiny_topology)
        assert len(assignment) == len(tiny_records)

    def test_mixing_zero_deterministic(self, tiny_records, tiny_topology):
        a = oblivious_placement(tiny_records, tiny_topology).as_mapping()
        b = oblivious_placement(tiny_records, tiny_topology).as_mapping()
        assert a == b

    def test_full_mixing_changes_layout(self, tiny_records, tiny_topology):
        grouped = oblivious_placement(tiny_records, tiny_topology, mixing=0.0)
        mixed = oblivious_placement(tiny_records, tiny_topology, mixing=1.0, seed=1)
        assert grouped.as_mapping() != mixed.as_mapping()

    def test_mixing_seed_determinism(self, tiny_records, tiny_topology):
        a = oblivious_placement(tiny_records, tiny_topology, mixing=0.5, seed=4)
        b = oblivious_placement(tiny_records, tiny_topology, mixing=0.5, seed=4)
        assert a.as_mapping() == b.as_mapping()

    def test_mixing_reduces_grouping(self, tiny_records, tiny_topology):
        """Higher mixing -> fewer service monocultures on leaves."""
        by_id = {r.instance_id: r.service for r in tiny_records}

        def monocultures(assignment):
            count = 0
            for leaf in tiny_topology.leaves():
                members = assignment.instances_on_leaf(leaf.name)
                if len(members) >= 2 and len({by_id[m] for m in members}) == 1:
                    count += 1
            return count

        grouped = oblivious_placement(tiny_records, tiny_topology, mixing=0.0)
        mixed = oblivious_placement(tiny_records, tiny_topology, mixing=1.0, seed=2)
        assert monocultures(mixed) <= monocultures(grouped)

    def test_invalid_mixing(self, tiny_records, tiny_topology):
        with pytest.raises(ValueError):
            oblivious_placement(tiny_records, tiny_topology, mixing=1.5)

    def test_empty_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            oblivious_placement([], tiny_topology)


class TestFillLeaves:
    def test_respects_capacity(self, tiny_records, tiny_topology):
        assignment = fill_leaves_in_order(tiny_records, tiny_topology)
        for leaf in tiny_topology.leaves():
            assert len(assignment.instances_on_leaf(leaf.name)) <= leaf.capacity

    def test_contiguous_and_balanced_fill(self, tiny_records, tiny_topology):
        assignment = fill_leaves_in_order(tiny_records, tiny_topology)
        leaves = tiny_topology.leaves()
        # Every leaf is populated with a near-equal share...
        occupancy = [len(assignment.instances_on_leaf(l.name)) for l in leaves]
        assert min(occupancy) > 0
        assert max(occupancy) - min(occupancy) <= 1
        # ...and the fill is contiguous: sorted records land in leaf order.
        ordered = sorted(tiny_records, key=lambda r: r.instance_id)
        filled = fill_leaves_in_order(ordered, tiny_topology)
        seen_leaves = [filled.leaf_of(r.instance_id) for r in ordered]
        leaf_rank = {l.name: i for i, l in enumerate(leaves)}
        ranks = [leaf_rank[name] for name in seen_leaves]
        assert ranks == sorted(ranks)

    def test_overflow_rejected(self, synthesizer):
        from repro.traces import web_profile

        records = synthesizer.service_instances(web_profile(), 10)
        topo = build_topology(two_level_spec("t", leaves=1, leaf_capacity=5))
        with pytest.raises(AssignmentError):
            fill_leaves_in_order(records, topo)

    def test_unbounded_leaves_spread_evenly(self, synthesizer):
        from repro.infra import LevelSpec, Level, TopologySpec

        records = synthesizer.service_instances(
            __import__("repro.traces", fromlist=["web_profile"]).web_profile(), 9
        )
        topo = build_topology(
            TopologySpec(name="u", levels=(LevelSpec(Level.RPP, 3),))
        )
        assignment = fill_leaves_in_order(records, topo)
        occupancy = list(assignment.occupancy().values())
        assert max(occupancy) == 3
