"""Property-based tests for placement invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import oblivious_placement, random_placement
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.infra import NodePowerView, build_topology, two_level_spec
from repro.traces import (
    TraceSynthesizer,
    cache_profile,
    db_profile,
    hadoop_profile,
    training_trace_set,
    web_profile,
)

PROFILES = [web_profile(), cache_profile(), db_profile(), hadoop_profile()]


@st.composite
def fleets(draw):
    """A small random fleet plus a topology that can hold it."""
    seed = draw(st.integers(0, 10_000))
    counts = [draw(st.integers(1, 6)) for _ in PROFILES]
    synthesizer = TraceSynthesizer(weeks=2, step_minutes=120, seed=seed)
    records = synthesizer.fleet(list(zip(PROFILES, counts)))
    n = len(records)
    leaves = draw(st.integers(2, 4))
    capacity = max(1, -(-n // leaves)) + draw(st.integers(0, 2))
    topology = build_topology(
        two_level_spec(f"dc{seed}", leaves=leaves, leaf_capacity=capacity)
    )
    return records, topology


class TestPlacementInvariants:
    @given(fleets())
    @settings(max_examples=15, deadline=None)
    def test_placement_is_a_bijection_onto_the_fleet(self, fleet):
        records, topology = fleet
        placer = WorkloadAwarePlacer(
            PlacementConfig(seed=0, kmeans_n_init=1, kmeans_max_iter=10)
        )
        assignment = placer.place(records, topology).assignment
        assert sorted(assignment.instance_ids()) == sorted(
            r.instance_id for r in records
        )

    @given(fleets())
    @settings(max_examples=15, deadline=None)
    def test_capacity_never_violated(self, fleet):
        records, topology = fleet
        placer = WorkloadAwarePlacer(
            PlacementConfig(seed=0, kmeans_n_init=1, kmeans_max_iter=10)
        )
        assignment = placer.place(records, topology).assignment
        for leaf in topology.leaves():
            assert len(assignment.instances_on_leaf(leaf.name)) <= leaf.capacity

    @given(fleets())
    @settings(max_examples=10, deadline=None)
    def test_total_power_is_placement_invariant(self, fleet):
        """Moving instances around never changes the DC-level trace."""
        records, topology = fleet
        traces = training_trace_set(records)
        placer = WorkloadAwarePlacer(
            PlacementConfig(seed=0, kmeans_n_init=1, kmeans_max_iter=10)
        )
        placements = [
            placer.place(records, topology).assignment,
            oblivious_placement(records, topology),
            random_placement(records, topology, seed=1),
        ]
        root = topology.root.name
        totals = [
            NodePowerView(topology, p, traces).node_trace(root) for p in placements
        ]
        for other in totals[1:]:
            assert np.allclose(totals[0].values, other.values)

    @given(fleets())
    @settings(max_examples=10, deadline=None)
    def test_leaf_sum_of_peaks_at_least_root_peak(self, fleet):
        """Fragmentation can only hurt: Σ leaf peaks >= root peak."""
        records, topology = fleet
        traces = training_trace_set(records)
        placer = WorkloadAwarePlacer(
            PlacementConfig(seed=0, kmeans_n_init=1, kmeans_max_iter=10)
        )
        assignment = placer.place(records, topology).assignment
        view = NodePowerView(topology, assignment, traces)
        leaf_level = topology.levels()[-1]
        assert view.sum_of_peaks(leaf_level) >= view.node_peak(topology.root.name) - 1e-9
