"""The SmoothOperator end-to-end pipeline (Figure 7).

Ties the four framework steps together — trace construction, asynchrony
scoring, clustering, placement — plus the evaluation protocol of Sec. 5.1:
optimise on the averaged training traces, measure on the held-out test week.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from .. import obs
from ..engine.deadline import TaskDeadline, deadline_scope
from ..infra.aggregation import NodePowerView, peak_reduction_by_level
from ..infra.assignment import Assignment
from ..infra.budget import provision_hierarchical
from ..infra.headroom import ExpansionPlan, plan_expansion
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord
from ..traces.synthesis import test_trace_set, training_trace_set
from .placement import PlacementConfig, PlacementResult, WorkloadAwarePlacer
from .remapping import RemapConfig, RemappingEngine, RemapResult

if TYPE_CHECKING:  # layering: repro.robust imports repro.core, not vice versa
    from ..robust.placement import RobustPlacementConfig, RobustPlacementResult


@dataclass(frozen=True)
class SmoothOperatorConfig:
    """Configuration of the full pipeline.

    When ``robust`` is set, placement goes through
    :class:`repro.robust.placement.RobustPlacer` instead of the plain
    workload-aware placer — at ``gamma = 0`` the two coincide, so the
    default pipeline output is unchanged.

    ``workers`` fans the parallelizable stages out across the persistent
    worker pool: a sharded remap pass (when ``remap.shard_level`` is set)
    runs per-shard, and the placement scoring stage follows
    ``placement.score_workers``.  Every stage is deterministic for any
    worker count; 1 (the default) keeps everything in-process.

    ``deadline`` bounds pooled-stage completion under partial failure
    (hang watchdog, straggler speculation, quarantine, serial degradation
    — see :class:`repro.engine.deadline.TaskDeadline`): it is installed as
    the process-default deadline for the duration of :meth:`SmoothOperator.optimize`,
    so every pooled stage the run dispatches inherits it.  ``None`` (the
    default) leaves whatever ambient default or ``REPRO_TASK_TIMEOUT``
    environment setting is already in force.
    """

    placement: PlacementConfig = field(default_factory=PlacementConfig)
    remap: Optional[RemapConfig] = None
    robust: Optional["RobustPlacementConfig"] = None
    workers: int = 1
    deadline: Optional[TaskDeadline] = None


@dataclass
class EvaluationReport:
    """Test-week comparison of a baseline and an optimised placement.

    All power numbers come from the held-out week; budgets are provisioned
    from the *baseline* placement's peaks (the infrastructure predates the
    optimisation and is not changed by it).
    """

    peak_reduction: Dict[str, float]
    sum_of_peaks_before: Dict[str, float]
    sum_of_peaks_after: Dict[str, float]
    expansion: ExpansionPlan

    @property
    def extra_server_fraction(self) -> float:
        """The paper's "% more machines hosted" headline."""
        return self.expansion.expansion_fraction


@dataclass
class OptimizationOutcome:
    """Everything produced by one SmoothOperator run."""

    placement: Optional[PlacementResult] = None
    remap: Optional[RemapResult] = None
    robust: Optional["RobustPlacementResult"] = None

    @property
    def assignment(self) -> Assignment:
        if self.remap is not None:
            return self.remap.assignment
        if self.robust is not None:
            return self.robust.assignment
        if self.placement is None:
            raise ValueError("empty OptimizationOutcome has no assignment")
        return self.placement.assignment


class SmoothOperator:
    """Facade over placement + optional remapping + evaluation."""

    def __init__(self, config: Optional[SmoothOperatorConfig] = None) -> None:
        self.config = config if config is not None else SmoothOperatorConfig()
        self._placer = WorkloadAwarePlacer(self.config.placement)

    # ------------------------------------------------------------------
    def optimize(
        self, records: Sequence[InstanceRecord], topology: PowerTopology
    ) -> OptimizationOutcome:
        """Derive the workload-aware placement (and optionally remap).

        With a ``robust`` config, the Γ-robust placer runs instead (its
        Γ = 0 fallback *is* the workload-aware placement) and any remap
        pass is seeded from the robust assignment.
        """
        with deadline_scope(self.config.deadline), obs.span(
            "pipeline.optimize", instances=len(records)
        ):
            placement: Optional[PlacementResult] = None
            robust: Optional["RobustPlacementResult"] = None
            if self.config.robust is not None:
                from ..robust.placement import RobustPlacer

                robust = RobustPlacer(self.config.robust).place(records, topology)
                placement = robust.fallback
                base = robust.assignment
            else:
                placement = self._placer.place(records, topology)
                base = placement.assignment
            remap: Optional[RemapResult] = None
            if self.config.remap is not None:
                engine = RemappingEngine(self.config.remap)
                remap = engine.run(
                    base, training_trace_set(records), workers=self.config.workers
                )
            return OptimizationOutcome(
                placement=placement, remap=remap, robust=robust
            )

    # ------------------------------------------------------------------
    @staticmethod
    def evaluate(
        records: Sequence[InstanceRecord],
        baseline: Assignment,
        optimized: Assignment,
        *,
        budget_margin: float = 0.0,
        use_test_week: bool = True,
        per_server_watts: Optional[float] = None,
    ) -> EvaluationReport:
        """Compare two placements on held-out traces (Sec. 5.1 protocol).

        Budgets are provisioned bottom-up from the baseline placement —
        leaves at observed peak × (1 + ``budget_margin``), internal nodes at
        the sum of their children (Sec. 2.1) — then the optimised
        placement's reduced peaks leave headroom that :func:`plan_expansion`
        converts into extra hostable servers.

        ``per_server_watts`` defaults to the fleet's mean per-instance peak.
        """
        with obs.span("pipeline.evaluate", instances=len(records)):
            traces = (
                test_trace_set(records)
                if use_test_week
                else training_trace_set(records)
            )
            topology = baseline.topology
            before = NodePowerView(topology, baseline, traces)
            after = NodePowerView(topology, optimized, traces)

            provision_hierarchical(before, margin=budget_margin)
            if per_server_watts is None:
                per_server_watts = float(traces.peaks().mean())
            expansion = plan_expansion(after, per_server_watts)

            return EvaluationReport(
                peak_reduction=peak_reduction_by_level(before, after),
                sum_of_peaks_before=before.sum_of_peaks_by_level(),
                sum_of_peaks_after=after.sum_of_peaks_by_level(),
                expansion=expansion,
            )
