"""Unit tests for PCA and t-SNE embeddings."""

import numpy as np
import pytest

from repro.analysis import TSNEConfig, pca_project, tsne_embed


def two_blobs(rng, n=30, separation=20.0):
    a = rng.normal(0, 0.5, (n, 5))
    b = rng.normal(separation, 0.5, (n, 5))
    return np.vstack([a, b])


class TestPCA:
    def test_shape(self, rng):
        points = rng.random((20, 6))
        assert pca_project(points, 2).shape == (20, 2)

    def test_centered(self, rng):
        projected = pca_project(rng.random((30, 4)), 2)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)

    def test_first_component_captures_separation(self, rng):
        points = two_blobs(rng)
        projected = pca_project(points, 1)
        assert np.sign(projected[:30].mean()) != np.sign(projected[30:].mean())

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pca_project(np.zeros(5))

    def test_clamps_components(self, rng):
        points = rng.random((10, 2))
        assert pca_project(points, 5).shape == (10, 2)


class TestTSNE:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=1.0)
        with pytest.raises(ValueError):
            TSNEConfig(n_iter=0)

    def test_output_shape(self, rng):
        points = rng.random((25, 4))
        embedding = tsne_embed(points, TSNEConfig(n_iter=50, perplexity=5))
        assert embedding.shape == (25, 2)
        assert np.all(np.isfinite(embedding))

    def test_requires_three_points(self, rng):
        with pytest.raises(ValueError):
            tsne_embed(rng.random((2, 3)))

    def test_deterministic(self, rng):
        points = rng.random((20, 3))
        config = TSNEConfig(n_iter=40, perplexity=5, seed=1)
        a = tsne_embed(points, config)
        b = tsne_embed(points, config)
        assert np.allclose(a, b)

    def test_separates_blobs(self, rng):
        """Well-separated clusters should stay separated in 2-D."""
        points = two_blobs(rng, n=20)
        embedding = tsne_embed(points, TSNEConfig(n_iter=200, perplexity=8, seed=0))
        a, b = embedding[:20], embedding[20:]
        centroid_distance = np.linalg.norm(a.mean(axis=0) - b.mean(axis=0))
        scatter = max(
            np.linalg.norm(a - a.mean(axis=0), axis=1).mean(),
            np.linalg.norm(b - b.mean(axis=0), axis=1).mean(),
        )
        assert centroid_distance > 2 * scatter
