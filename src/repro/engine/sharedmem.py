"""Shared-memory data plane for the persistent worker pool.

The fleet matrices the hot paths operate on (a :class:`~repro.traces.traceset.TraceSet`
is one ``(n_traces, n_samples)`` block) are far too large to pickle into
worker processes per task — at 1M instances a single copy is gigabytes.
Instead the parent publishes each matrix once into a POSIX shared-memory
segment (:class:`SharedMatrix`), and tasks carry only a :class:`MatrixHandle`
— segment name, shape, dtype — plus the row range they own
(:class:`ShardSpec`).  Workers attach by name and build zero-copy numpy
views, so fanning a 100k-instance scoring job across 4 workers moves a few
hundred bytes of descriptors, not hundreds of megabytes of traces.

Lifecycle is explicit and leak-proof:

* every segment created in this process is tracked in a module registry and
  unlinked by an ``atexit`` hook, so a crashed caller cannot strand blocks
  in ``/dev/shm``;
* :class:`SharedMatrix` is a context manager — ``with`` blocks unlink on
  normal exit, on worker death (``BrokenProcessPool`` propagates through),
  and on ``KeyboardInterrupt`` alike;
* workers attach read-only and *never* unlink; on Python 3.13+ attachments
  opt out of resource tracking (``track=False``), and on older interpreters
  the pool's ``fork`` start method makes the worker's tracker registration
  a harmless no-op (same tracker as the owner, set-idempotent names);
* ``atexit`` does not run on SIGTERM/SIGINT-by-default, so the first
  segment created also installs *chained* signal handlers: the sweep runs,
  then the previously installed disposition (another handler, or the
  default kill) proceeds.  The registry records the creator's pid, and
  both sweeps skip entries registered by another process — a forked worker
  that inherits the parent's handler (and registry) must never unlink the
  parent's live segments.

Segment names carry the :data:`SEGMENT_PREFIX` so tests (and operators) can
audit ``/dev/shm`` for leaks attributable to this package.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: Every segment this package creates is named ``smoothop_<hex>`` so leak
#: audits can attribute blocks in ``/dev/shm`` to us.
SEGMENT_PREFIX = "smoothop_"

#: Segments created (not merely attached) by this process, by name.  The
#: atexit sweep unlinks whatever is still here, so even a caller that never
#: reaches its ``finally`` cannot leak a block past interpreter exit.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}

#: The pid that registered each owned segment.  ``fork`` children inherit
#: the registry (and the signal handlers below) by copy; the pid guard
#: keeps their sweeps away from segments the *parent* still owns.
_OWNED_PIDS: Dict[str, int] = {}


def _register_owned(shm: shared_memory.SharedMemory) -> None:
    _OWNED[shm.name] = shm
    _OWNED_PIDS[shm.name] = os.getpid()
    _install_signal_handlers()
    _update_shm_gauges(created=True)


def _forget_owned(name: str) -> None:
    _OWNED.pop(name, None)
    _OWNED_PIDS.pop(name, None)
    _update_shm_gauges()


def _update_shm_gauges(*, created: bool = False) -> None:
    """Publish the live-segment gauges (skipped when capture is disabled).

    ``shm.segments_live`` / ``shm.bytes_live`` track what this process
    currently owns in ``/dev/shm``; ``shm.segments_created`` counts
    publications over the process lifetime.  Gated on the same
    ``REPRO_OBS_CAPTURE`` switch as worker telemetry so disabling capture
    leaves the metrics registry untouched.
    """
    from ..obs import metrics as obs_metrics
    from ..obs.remote import capture_enabled

    if not capture_enabled():
        return
    if created:
        obs_metrics.count("shm.segments_created")
    obs_metrics.set_gauge("shm.segments_live", len(_OWNED))
    obs_metrics.set_gauge(
        "shm.bytes_live", float(sum(shm.size for shm in _OWNED.values()))
    )


def _sweep_owned() -> None:
    """Unlink every segment *this process* still owns.

    Shared by the atexit hook and the termination-signal handlers.  The
    pid guard matters for the signal path: a ``fork`` child inherits both
    the handlers and a copy of the registry, and a SIGTERM delivered to
    the child must not unlink segments its parent is still serving.
    """
    pid = os.getpid()
    for name in list(_OWNED):
        if _OWNED_PIDS.get(name, pid) != pid:
            continue
        shm = _OWNED.pop(name)
        _OWNED_PIDS.pop(name, None)
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # already gone: fine
            pass


@atexit.register
def _cleanup_owned_segments() -> None:
    """Unlink every segment this process still owns (crash safety net)."""
    _sweep_owned()


#: Previously installed dispositions for the signals we chain, by signum.
#: Present only after :func:`_install_signal_handlers` hooked that signal.
_SIGNAL_CHAIN: Dict[int, object] = {}
_HANDLERS_INSTALLED = False


def _terminate_handler(signum: int, frame: object) -> None:
    """Sweep owned segments, then defer to whatever was installed before.

    ``atexit`` hooks do not run when a signal's default disposition kills
    the process, so SIGTERM (and a SIGINT the application chose not to turn
    into ``KeyboardInterrupt``) would strand every live segment in
    ``/dev/shm``.  This handler closes that hole without changing the
    process's observable death: after the sweep the previous disposition
    proceeds — a callable previous handler is invoked (Python's default
    SIGINT handler raises ``KeyboardInterrupt`` from here, exactly as it
    would have), ``SIG_IGN`` returns, and ``SIG_DFL``/unknown re-raises the
    signal under its default disposition so the exit status still says
    "killed by signal".
    """
    _sweep_owned()
    previous = _SIGNAL_CHAIN.get(signum)
    if callable(previous):
        previous(signum, frame)
        return
    if previous is signal.SIG_IGN:
        return
    try:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)
    except (ValueError, OSError):  # pragma: no cover - teardown races
        pass


def _install_signal_handlers() -> None:
    """Hook SIGTERM/SIGINT once, from the main thread, chaining politely.

    Called on every segment registration but a no-op after the first
    success.  Signal handlers can only be installed from the main thread —
    a pool stage driven from a worker thread simply keeps relying on the
    atexit sweep, as before.
    """
    global _HANDLERS_INSTALLED
    if _HANDLERS_INSTALLED:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous = signal.getsignal(signum)
            if previous is _terminate_handler:  # pragma: no cover - paranoia
                continue
            signal.signal(signum, _terminate_handler)
            _SIGNAL_CHAIN[signum] = previous
    except (ValueError, OSError):  # pragma: no cover - exotic embedding
        return
    _HANDLERS_INSTALLED = True


def owned_segment_names() -> Tuple[str, ...]:
    """Names of the segments currently owned (and not yet unlinked) here."""
    return tuple(_OWNED)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership of it.

    On Python 3.13+ the attach opts out of resource tracking outright
    (``track=False``): a reader must never be the reason a segment gets
    unlinked.  On older interpreters a plain attach re-registers the name
    with the resource tracker — harmless under the pool's ``fork`` start
    method, where workers inherit the owner's tracker and registration is
    set-idempotent, so the owner's unlink still deregisters exactly once.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class MatrixHandle:
    """A picklable descriptor of one shared matrix: name + shape + dtype.

    This — not the matrix — is what crosses the process boundary.  Workers
    pass it to :func:`attach_matrix` to get a zero-copy read-only view.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a sharded job: row range + free-form params.

    Lightweight by design (a few ints and strings): this is the entire
    per-task payload of the shared-memory fast paths, replacing the pickled
    fleets the fork-per-suite pool used to ship.
    """

    start: int
    stop: int
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def n_rows(self) -> int:
        return self.stop - self.start


def shard_ranges(n_rows: int, n_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``n_rows`` into ``n_shards`` contiguous near-equal ranges.

    Early shards take the remainder, every row lands in exactly one shard,
    and empty ranges are dropped (fewer rows than shards).
    """
    if n_rows < 0:
        raise ValueError("n_rows cannot be negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    base, remainder = divmod(n_rows, n_shards)
    ranges = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < remainder else 0)
        if size == 0:
            continue
        ranges.append((start, start + size))
        start += size
    return tuple(ranges)


class SharedMatrix:
    """A 2-D numpy matrix published into POSIX shared memory.

    Created by the parent (:meth:`create`), attached by workers
    (:func:`attach_matrix` via the :attr:`handle`).  The creating process
    owns the segment: it must :meth:`unlink` when done (the context manager
    and the atexit sweep both do).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
        if not owner:
            self.array.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, matrix: np.ndarray, dtype: Optional[object] = None) -> "SharedMatrix":
        """Copy ``matrix`` into a fresh shared segment (optionally casting)."""
        source = np.asarray(matrix)
        target_dtype = np.dtype(dtype) if dtype is not None else source.dtype
        nbytes = max(1, int(source.size) * target_dtype.itemsize)
        shm = shared_memory.SharedMemory(
            create=True,
            size=nbytes,
            name=SEGMENT_PREFIX + secrets.token_hex(8),
        )
        _register_owned(shm)
        shared = cls(shm, source.shape, target_dtype, owner=True)
        shared.array[...] = source
        return shared

    @property
    def handle(self) -> MatrixHandle:
        return MatrixHandle(
            name=self._shm.name, shape=self.shape, dtype=self.dtype.str
        )

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # The numpy view keeps the mmap alive; release it first.
        self.array = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only).  Safe to call twice."""
        if not self._owner:
            raise RuntimeError("only the creating process may unlink a segment")
        self.close()
        _forget_owned(self._shm.name)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Covers normal exit, exceptions, BrokenProcessPool bubbling out of
        # a dead worker pool, and KeyboardInterrupt equally.
        if self._owner:
            self.unlink()
        else:
            self.close()


def attach_matrix(handle: MatrixHandle) -> SharedMatrix:
    """Attach to a published matrix by handle (worker side, read-only)."""
    shm = _attach_segment(handle.name)
    return SharedMatrix(shm, handle.shape, np.dtype(handle.dtype), owner=False)


# ----------------------------------------------------------------------
# worker-side attachment cache
# ----------------------------------------------------------------------
#: Segments this worker has attached, by name.  Attaching is a syscall +
#: mmap; shards of the same job reuse the mapping instead of re-attaching
#: per task.
_ATTACHED: Dict[str, SharedMatrix] = {}


def attached_view(handle: MatrixHandle) -> np.ndarray:
    """The cached read-only view of ``handle`` in this process."""
    shared = _ATTACHED.get(handle.name)
    if shared is None or shared.array is None:
        shared = attach_matrix(handle)
        _ATTACHED[handle.name] = shared
    return shared.array


def detach_all() -> None:
    """Drop every cached worker-side attachment (test isolation hook)."""
    for name in list(_ATTACHED):
        _ATTACHED.pop(name).close()


@atexit.register
def _cleanup_attachments() -> None:
    detach_all()


# ----------------------------------------------------------------------
# TraceSet publication
# ----------------------------------------------------------------------
class SharedTraceSet:
    """A :class:`~repro.traces.traceset.TraceSet` published for workers.

    The parent keeps using the zero-copy :meth:`view`; tasks receive
    ``(handle, grid, ids)`` — or just the handle plus index ranges when ids
    are not needed — and rebuild their slice from the shared block.
    """

    def __init__(self, traceset: "object", dtype: Optional[object] = None) -> None:
        from ..traces.traceset import TraceSet

        if not isinstance(traceset, TraceSet):
            raise TypeError("SharedTraceSet wraps a TraceSet")
        self.grid = traceset.grid
        self.ids = list(traceset.ids)
        self._matrix = SharedMatrix.create(traceset.matrix, dtype=dtype)

    @property
    def handle(self) -> MatrixHandle:
        return self._matrix.handle

    def view(self) -> "object":
        """A TraceSet over the shared block (no copy; do not mutate)."""
        from ..traces.traceset import TraceSet

        return TraceSet(
            self.grid, self.ids, self._matrix.array, dtype=self._matrix.dtype
        )

    def close(self) -> None:
        self._matrix.unlink()

    def __enter__(self) -> "SharedTraceSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def attach_rows(handle: MatrixHandle, start: int, stop: int) -> np.ndarray:
    """The ``[start, stop)`` row block of a shared matrix (worker side)."""
    if not 0 <= start <= stop <= handle.shape[0]:
        raise ValueError(
            f"row range [{start}, {stop}) outside matrix of {handle.shape[0]} rows"
        )
    return attached_view(handle)[start:stop]


__all__ = [
    "MatrixHandle",
    "SEGMENT_PREFIX",
    "SharedMatrix",
    "SharedTraceSet",
    "ShardSpec",
    "attach_matrix",
    "attach_rows",
    "attached_view",
    "detach_all",
    "owned_segment_names",
    "shard_ranges",
]
