"""Unit tests for the reactive conversion controller."""

import numpy as np
import pytest

from repro.reshaping import (
    ConversionPolicy,
    FleetDescription,
    ReactiveConfig,
    ReactiveConversionRuntime,
    ReshapingRuntime,
)
from repro.sim import DemandTrace, ServerPowerModel
from repro.traces import TimeGrid


@pytest.fixture
def fleet():
    return FleetDescription(
        n_lc=100,
        n_batch=60,
        lc_model=ServerPowerModel(90, 240),
        batch_model=ServerPowerModel(150, 235),
        budget_watts=50_000.0,
    )


@pytest.fixture
def grid():
    return TimeGrid.for_days(3, step_minutes=30)


@pytest.fixture
def demand(grid):
    hours = grid.hours_of_day()
    shape = 0.3 + 0.55 * np.exp(2.2 * (np.cos(2 * np.pi * (hours - 14) / 24) - 1))
    return DemandTrace(grid, shape * 100.0)


@pytest.fixture
def policy():
    return ConversionPolicy(conversion_threshold=0.85)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveConfig(observation_window_steps=0)
        with pytest.raises(ValueError):
            ReactiveConfig(delay_steps=-1)
        with pytest.raises(ValueError):
            ReactiveConfig(enter_fraction=0.8, exit_fraction=0.9)


class TestReactiveRuntime:
    def test_converts_at_peak(self, fleet, demand, policy):
        runtime = ReactiveConversionRuntime(fleet, policy)
        result = runtime.run_conversion(demand, 12)
        assert result.n_lc_active.max() > fleet.n_lc
        assert result.n_lc_active.min() == fleet.n_lc

    def test_batch_extras_capped(self, fleet, demand):
        policy = ConversionPolicy(
            conversion_threshold=0.85, max_batch_conversion_fraction=0.05
        )
        runtime = ReactiveConversionRuntime(fleet, policy)
        result = runtime.run_conversion(demand, 12)
        assert result.n_batch_active.max() <= fleet.n_batch + 3

    def test_no_flapping_with_hysteresis(self, fleet, demand, policy):
        """Transitions should track the diurnal cycle (~2/day), not noise."""
        runtime = ReactiveConversionRuntime(
            fleet, policy, config=ReactiveConfig(enter_fraction=0.95, exit_fraction=0.8)
        )
        result = runtime.run_conversion(demand, 12)
        transitions = int(np.sum(np.abs(np.diff(result.n_lc_active)) > 0))
        days = demand.grid.n_days
        assert transitions <= 4 * days

    def test_delay_visible(self, fleet, demand, policy):
        """With a long conversion delay, LC capacity arrives late."""
        fast = ReactiveConversionRuntime(
            fleet, policy, config=ReactiveConfig(delay_steps=0)
        ).run_conversion(demand, 12)
        slow = ReactiveConversionRuntime(
            fleet, policy, config=ReactiveConfig(delay_steps=8)
        ).run_conversion(demand, 12)
        fast_first = int(np.argmax(fast.n_lc_active > fleet.n_lc))
        slow_first = int(np.argmax(slow.n_lc_active > fleet.n_lc))
        assert slow_first >= fast_first

    def test_close_to_oracle_on_diurnal_load(self, fleet, demand, policy):
        """The headline: predictable peaks make reactive ~ oracle."""
        oracle = ReshapingRuntime(fleet, policy).run_conversion(demand, 12)
        reactive = ReactiveConversionRuntime(fleet, policy).run_conversion(demand, 12)
        assert reactive.lc_total() >= oracle.lc_total() * 0.98
        assert reactive.batch_total() >= oracle.batch_total() * 0.90

    def test_negative_extras_rejected(self, fleet, demand, policy):
        runtime = ReactiveConversionRuntime(fleet, policy)
        with pytest.raises(ValueError):
            runtime.run_conversion(demand, -1)

    def test_zero_extras_is_static(self, fleet, demand, policy):
        runtime = ReactiveConversionRuntime(fleet, policy)
        result = runtime.run_conversion(demand, 0)
        assert np.all(result.n_lc_active == fleet.n_lc)
        assert np.all(result.n_batch_active == fleet.n_batch)

    def test_accounting_conserves_extras(self, fleet, demand, policy):
        """Serving + batch + parked extras always equals the extra pool."""
        runtime = ReactiveConversionRuntime(fleet, policy)
        extra = 12
        result = runtime.run_conversion(demand, extra)
        lc_extras = result.n_lc_active - fleet.n_lc
        batch_extras = result.n_batch_active - fleet.n_batch
        assert np.all(lc_extras >= -1e-9)
        assert np.all(batch_extras >= -1e-9)
        assert np.all(lc_extras + batch_extras <= extra + 1e-9)
