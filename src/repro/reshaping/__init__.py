"""Dynamic power profile reshaping (Sec. 4).

History-based server conversion on storage-disaggregated servers, proactive
throttling and boosting of batch clusters, and the runtime that simulates a
datacenter's week under each policy.
"""

from .conversion import ConversionPolicy
from .fleet import (
    aggregate_trace,
    derive_demand,
    describe_fleet,
    estimate_server_model,
    split_by_kind,
)
from .lconv import ThresholdPolicy, learn_conversion_threshold, threshold_from_slo
from .reactive import ReactiveConfig, ReactiveConversionRuntime
from .runtime import (
    FleetDescription,
    ReshapingComparison,
    ReshapingRuntime,
    ScenarioResult,
)
from .throttling import ThrottleBoostPolicy

__all__ = [
    "ReactiveConfig",
    "ReactiveConversionRuntime",
    "threshold_from_slo",
    "ThresholdPolicy",
    "learn_conversion_threshold",
    "ConversionPolicy",
    "ThrottleBoostPolicy",
    "FleetDescription",
    "ReshapingRuntime",
    "ReshapingComparison",
    "ScenarioResult",
    "split_by_kind",
    "estimate_server_model",
    "aggregate_trace",
    "describe_fleet",
    "derive_demand",
]
