"""Unit tests for the structured event log."""

import json

from repro import obs
from repro.obs import events


class TestEventLog:
    def test_emit_stamps_monotonic_seq(self):
        log = events.EventLog()
        first = log.emit(events.VIOLATION, source="test")
        second = log.emit(events.ADVISORY, source="test")
        assert first.seq == 1
        assert second.seq == 2
        assert len(log) == 2

    def test_fields_captured(self):
        log = events.EventLog()
        event = log.emit(
            events.BREAKER_TRIP, severity="critical", source="infra", node="dc/rpp0"
        )
        assert event.kind == events.BREAKER_TRIP
        assert event.severity == "critical"
        assert event.fields == {"node": "dc/rpp0"}

    def test_by_kind_and_counts(self):
        log = events.EventLog()
        log.emit(events.VIOLATION)
        log.emit(events.VIOLATION)
        log.emit(events.CONVERSION)
        assert len(log.by_kind(events.VIOLATION)) == 2
        assert log.counts_by_kind() == {"violation": 2, "conversion": 1}

    def test_iteration_order(self):
        log = events.EventLog()
        for kind in (events.THROTTLE, events.BOOST, events.CAPPING):
            log.emit(kind)
        assert [event.kind for event in log] == ["throttle", "boost", "capping"]


class TestSpanCorrelation:
    def test_event_outside_tracing_has_no_span(self):
        log = events.EventLog()
        event = log.emit(events.VIOLATION)
        assert event.span_id is None
        assert event.span_path is None

    def test_event_inside_span_carries_id_and_path(self):
        log = events.EventLog()
        with obs.tracing():
            with obs.span("outer"):
                with obs.span("inner") as span:
                    event = log.emit(events.SWAP_ACCEPT)
        assert event.span_id == span.span_id
        assert event.span_path == "outer/inner"

    def test_span_ids_unique_across_spans(self):
        log = events.EventLog()
        with obs.tracing():
            with obs.span("a"):
                first = log.emit(events.VIOLATION)
            with obs.span("b"):
                second = log.emit(events.VIOLATION)
        assert first.span_id != second.span_id


class TestJsonl:
    def test_to_jsonl_one_object_per_line(self):
        log = events.EventLog()
        log.emit(events.VIOLATION, source="x", node="n1")
        log.emit(events.ADVISORY, source="y")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        assert payloads[0]["kind"] == "violation"
        assert payloads[0]["fields"]["node"] == "n1"
        assert payloads[1]["seq"] == 2

    def test_write_round_trips(self, tmp_path):
        log = events.EventLog()
        log.emit(events.CAPPING, severity="warning", node="dc/sb1", shed=12.5)
        path = log.write(tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["fields"]["shed"] == 12.5

    def test_write_empty_log(self, tmp_path):
        log = events.EventLog()
        path = log.write(tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestModuleLevelApi:
    def test_emit_without_log_is_noop(self):
        assert events.get_event_log() is None
        assert events.emit(events.VIOLATION, node="x") is None

    def test_recording_installs_and_restores(self):
        with events.recording() as log:
            assert events.get_event_log() is log
            events.emit(events.VIOLATION, node="x")
        assert events.get_event_log() is None
        assert len(log) == 1

    def test_recording_nests(self):
        with events.recording() as outer:
            events.emit(events.VIOLATION)
            with events.recording() as inner:
                events.emit(events.ADVISORY)
            events.emit(events.CONVERSION)
        assert [e.kind for e in outer] == ["violation", "conversion"]
        assert [e.kind for e in inner] == ["advisory"]

    def test_restored_on_exception(self):
        try:
            with events.recording():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert events.get_event_log() is None
