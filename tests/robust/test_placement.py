"""Unit tests for the Γ-robust placer (both strategies, Γ=0 fallback)."""

import numpy as np
import pytest

from repro.core.placement import PlacementConfig, WorkloadAwarePlacer
from repro.robust import (
    STRATEGIES,
    GammaAccountant,
    RobustPlacementConfig,
    RobustPlacer,
    UncertainPowerModel,
)


def spiky_model(records, *, fraction=0.25, spike_watts=120.0, seed=5):
    return UncertainPowerModel.from_records(records).with_spike_minority(
        fraction, spike_watts, seed=seed
    )


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_config_validation():
    assert RobustPlacementConfig().strategy in STRATEGIES
    with pytest.raises(ValueError, match="gamma"):
        RobustPlacementConfig(gamma=-1)
    with pytest.raises(ValueError, match="strategy"):
        RobustPlacementConfig(strategy="magic")
    with pytest.raises(ValueError, match="tolerance"):
        RobustPlacementConfig(swap_nominal_tolerance_watts=-1.0)
    with pytest.raises(ValueError, match="max_swaps"):
        RobustPlacementConfig(max_swaps=-1)


def test_empty_fleet_is_rejected(tiny_topology):
    with pytest.raises(ValueError, match="nothing to place"):
        RobustPlacer().place([], tiny_topology)


# ----------------------------------------------------------------------
# Γ = 0 fallback
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_gamma_zero_reduces_to_the_nominal_placement(
    tiny_records, tiny_topology, strategy
):
    nominal = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(
        tiny_records, tiny_topology
    )
    robust = RobustPlacer(
        RobustPlacementConfig(gamma=0, strategy=strategy)
    ).place(tiny_records, tiny_topology)
    assert robust.assignment.as_mapping() == nominal.assignment.as_mapping()
    assert robust.gamma == 0
    assert robust.n_swaps == 0
    assert robust.is_feasible
    assert robust.fallback is not None


# ----------------------------------------------------------------------
# swap strategy
# ----------------------------------------------------------------------
def test_swap_places_everyone_and_respects_capacity(
    tiny_records, tiny_topology
):
    model = spiky_model(tiny_records)
    result = RobustPlacer(RobustPlacementConfig(gamma=1)).place(
        tiny_records, tiny_topology, model=model
    )
    mapping = result.assignment.as_mapping()
    assert sorted(mapping) == sorted(r.instance_id for r in tiny_records)
    for leaf in tiny_topology.leaves():
        assert len(result.assignment.instances_on_leaf(leaf.name)) <= leaf.capacity
    assert result.infeasible == []


def test_swap_strategy_spreads_spike_radii(tiny_records, tiny_topology):
    """The swap loop must strictly reduce the worst per-leaf top-Γ burden."""
    model = spiky_model(tiny_records)
    seed = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(
        tiny_records, tiny_topology
    )
    result = RobustPlacer(RobustPlacementConfig(gamma=1)).place(
        tiny_records, tiny_topology, model=model
    )

    def worst_burden(assignment):
        worst = 0.0
        for leaf in tiny_topology.leaves():
            acc = GammaAccountant(1)
            for iid in assignment.instances_on_leaf(leaf.name):
                acc.add(iid, model.nominal_of(iid), model.radius_of(iid))
            worst = max(worst, acc.top_sum + acc.radius_sum)
        return worst

    assert result.n_swaps > 0
    assert worst_burden(result.assignment) < worst_burden(seed.assignment)


def test_swap_preserves_per_leaf_occupancy(tiny_records, tiny_topology):
    """Swaps are 1-for-1: the leaf occupancy histogram cannot change."""
    model = spiky_model(tiny_records)
    seed = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(
        tiny_records, tiny_topology
    )
    result = RobustPlacer(RobustPlacementConfig(gamma=1)).place(
        tiny_records, tiny_topology, model=model
    )
    for leaf in tiny_topology.leaves():
        assert len(result.assignment.instances_on_leaf(leaf.name)) == len(
            seed.assignment.instances_on_leaf(leaf.name)
        )


def test_max_swaps_zero_returns_the_seed_placement(tiny_records, tiny_topology):
    model = spiky_model(tiny_records)
    seed = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(
        tiny_records, tiny_topology
    )
    result = RobustPlacer(
        RobustPlacementConfig(gamma=1, max_swaps=0)
    ).place(tiny_records, tiny_topology, model=model)
    assert result.n_swaps == 0
    assert result.assignment.as_mapping() == seed.assignment.as_mapping()


# ----------------------------------------------------------------------
# first-fit strategy
# ----------------------------------------------------------------------
def test_first_fit_respects_budgets_when_feasible(tiny_records, tiny_topology):
    model = UncertainPowerModel.from_records(tiny_records)
    # Generous budgets at every level: everything must be Γ-feasible.
    for node in tiny_topology.nodes():
        node.budget_watts = 1e9
    try:
        result = RobustPlacer(
            RobustPlacementConfig(gamma=2, strategy="first_fit")
        ).place(tiny_records, tiny_topology, model=model)
        assert result.is_feasible
        assert result.min_headroom() > 0
        assert sorted(result.assignment.as_mapping()) == sorted(
            r.instance_id for r in tiny_records
        )
    finally:
        for node in tiny_topology.nodes():
            node.budget_watts = None


def test_first_fit_records_infeasible_instances(tiny_records, tiny_topology):
    model = spiky_model(tiny_records, spike_watts=500.0)
    # Budgets so tight nothing fits: every instance is flagged, yet all are
    # still placed (least-bad leaf) so downstream consumers get a complete
    # assignment.
    for node in tiny_topology.nodes():
        node.budget_watts = 1.0
    try:
        result = RobustPlacer(
            RobustPlacementConfig(gamma=1, strategy="first_fit")
        ).place(tiny_records, tiny_topology, model=model)
        assert not result.is_feasible
        assert len(result.infeasible) == len(tiny_records)
        assert len(result.assignment) == len(tiny_records)
        assert result.min_headroom() < 0
    finally:
        for node in tiny_topology.nodes():
            node.budget_watts = None
