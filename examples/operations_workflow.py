"""An operator's end-to-end workflow with persistence and auditing.

Walks the artifact lifecycle a production deployment needs:

1. synthesise (or ingest) telemetry and **persist the fleet** to disk;
2. derive the placement and **persist topology + assignment** as JSON;
3. reload everything in a "new process" and verify the round-trip;
4. provision budgets, **audit breaker safety** on the held-out week;
5. export node traces to CSV for external dashboards.

Run:  python examples/operations_workflow.py [workdir]
"""

import pathlib
import sys
import tempfile

from repro import SmoothOperator, build_datacenter, small_demo_spec
from repro.analysis import format_percent, format_table
from repro.infra import (
    BreakerModel,
    NodePowerView,
    audit_view,
    load_assignment,
    load_topology,
    save_assignment,
    save_topology,
)
from repro.traces import (
    TraceSet,
    export_csv,
    load_fleet,
    save_fleet,
    test_trace_set,
)


def main(workdir: str = "") -> None:
    base = pathlib.Path(workdir) if workdir else pathlib.Path(tempfile.mkdtemp())
    base.mkdir(parents=True, exist_ok=True)
    print(f"artifacts -> {base}\n")

    # --- 1. telemetry in, fleet persisted -----------------------------
    dc = build_datacenter(small_demo_spec(), weeks=3, step_minutes=30)
    save_fleet(dc.records, base / "fleet")
    print(f"saved fleet: {len(dc.records)} instances -> {base / 'fleet'}")

    # --- 2. placement derived and persisted ---------------------------
    operator = SmoothOperator()
    outcome = operator.optimize(dc.records, dc.topology)
    report = operator.evaluate(
        dc.records, dc.baseline, outcome.assignment, budget_margin=0.05
    )
    save_topology(dc.topology, base / "topology.json")  # includes budgets
    save_assignment(outcome.assignment, base / "placement.json")
    print(
        "saved placement: RPP reduction "
        f"{format_percent(report.peak_reduction['rpp'])}, "
        f"{report.expansion.total_extra} extra servers"
    )

    # --- 3. reload in a fresh context and verify ----------------------
    fleet = load_fleet(base / "fleet")
    topology = load_topology(base / "topology.json")
    assignment = load_assignment(base / "placement.json", topology=topology)
    assert len(fleet) == len(dc.records)
    assert assignment.as_mapping() == outcome.assignment.as_mapping()
    print("round-trip verified: fleet, topology (with budgets), assignment")

    # --- 4. audit breaker safety on the held-out week -----------------
    test_traces = test_trace_set(fleet)
    view = NodePowerView(topology, assignment, test_traces)
    trips = audit_view(view, BreakerModel(tolerance_minutes=120))
    if trips:
        rows = [
            [name, len(events), f"{max(t.peak_overload_watts for t in events):.1f}"]
            for name, events in trips.items()
        ]
        print()
        print(
            format_table(
                ["node", "trip events", "worst overload (W)"],
                rows,
                title="Breaker audit (held-out week)",
            )
        )
        print("-> excursions of this size are the power-capping system's job")
    else:
        print("breaker audit: clean — no sustained overloads on the test week")

    # --- 5. export for external tooling --------------------------------
    suite = topology.nodes_at_level("suite")[0]
    suite_trace = view.node_trace(suite.name)
    node_set = TraceSet.from_traces({suite.name.replace("/", "_"): suite_trace})
    export_csv(node_set, base / "suite0_power.csv")
    print(f"exported {suite.name} power trace -> {base / 'suite0_power.csv'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
