"""Unit tests for the energy-storage (ESD) peak-shaving comparator."""

import numpy as np
import pytest

from repro.baselines import (
    BatterySpec,
    overload_episode_durations,
    required_battery_energy,
    shave_peaks,
)
from repro.traces import PowerTrace, TimeGrid


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


def spike_trace(grid, base=10.0, spike=30.0, start=10, length=2):
    values = np.full(grid.n_samples, base)
    values[start : start + length] = spike
    return PowerTrace(grid, values)


class TestBatterySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatterySpec(-1, 10, 10)
        with pytest.raises(ValueError):
            BatterySpec(10, -1, 10)
        with pytest.raises(ValueError):
            BatterySpec(10, 10, 10, efficiency=0.0)


class TestShaving:
    def test_short_spike_fully_shaved(self, grid):
        trace = spike_trace(grid)
        battery = BatterySpec(energy_wh=100, max_discharge_watts=50, max_charge_watts=10)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery)
        assert result.unshaved_steps() == 0
        assert result.peak_after() <= 15.0 + 1e-9

    def test_long_peak_exhausts_battery(self, grid):
        """The paper's argument: hours-long diurnal peaks drain ESDs."""
        trace = spike_trace(grid, spike=30.0, start=6, length=12)  # 12-hour peak
        battery = BatterySpec(energy_wh=30, max_discharge_watts=50, max_charge_watts=10)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery)
        assert result.unshaved_steps() > 0
        assert result.unshaved_energy(grid.step_minutes) > 0

    def test_discharge_power_limit(self, grid):
        trace = spike_trace(grid, spike=100.0, length=1)
        battery = BatterySpec(energy_wh=1000, max_discharge_watts=20, max_charge_watts=10)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery)
        # Needs 85 W of shaving but can only deliver 20 W.
        assert result.unshaved[10] == pytest.approx(65.0)

    def test_recharges_off_peak(self, grid):
        trace = spike_trace(grid, start=2, length=2)
        battery = BatterySpec(energy_wh=40, max_discharge_watts=50, max_charge_watts=30)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery, initial_soc_fraction=1.0)
        # After discharging, the state of charge climbs back.
        assert result.state_of_charge_wh[-1] > result.state_of_charge_wh[4]

    def test_charging_respects_budget(self, grid):
        trace = PowerTrace.constant(grid, 10.0)
        battery = BatterySpec(energy_wh=1000, max_discharge_watts=0, max_charge_watts=500)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery, initial_soc_fraction=0.0)
        assert result.grid_draw.max() <= 15.0 + 1e-9

    def test_zero_battery_is_passthrough_overload(self, grid):
        trace = spike_trace(grid)
        battery = BatterySpec(energy_wh=0, max_discharge_watts=0, max_charge_watts=0)
        result = shave_peaks(trace, budget_watts=15.0, battery=battery)
        assert result.unshaved_steps() == 2
        assert np.allclose(result.grid_draw, trace.values)

    def test_validation(self, grid):
        trace = spike_trace(grid)
        battery = BatterySpec(10, 10, 10)
        with pytest.raises(ValueError):
            shave_peaks(trace, budget_watts=-1, battery=battery)
        with pytest.raises(ValueError):
            shave_peaks(trace, budget_watts=1, battery=battery, initial_soc_fraction=2.0)


class TestSizing:
    def test_required_energy_for_one_episode(self, grid):
        trace = spike_trace(grid, base=10, spike=20, start=5, length=3)
        # 5 W over budget for 3 hours = 15 Wh.
        assert required_battery_energy(trace, 15.0) == pytest.approx(15.0)

    def test_required_energy_takes_worst_episode(self, grid):
        values = np.full(24, 10.0)
        values[2:4] = 20.0   # 2h episode
        values[10:16] = 20.0  # 6h episode
        trace = PowerTrace(grid, values)
        assert required_battery_energy(trace, 15.0) == pytest.approx(30.0)

    def test_no_overload_zero_energy(self, grid):
        trace = PowerTrace.constant(grid, 5.0)
        assert required_battery_energy(trace, 10.0) == 0.0

    def test_episode_durations(self, grid):
        values = np.full(24, 10.0)
        values[2:4] = 20.0
        values[10:16] = 20.0
        trace = PowerTrace(grid, values)
        assert overload_episode_durations(trace, 15.0) == [120, 360]

    def test_episode_at_end(self, grid):
        values = np.full(24, 10.0)
        values[22:] = 20.0
        trace = PowerTrace(grid, values)
        assert overload_episode_durations(trace, 15.0) == [120]
