"""Reactive server conversion — the control loop as production would run it.

The vectorised :class:`ReshapingRuntime` decides each step's phase from the
*current* demand value, which quietly grants the controller an oracle: real
systems observe load with a lag, convert servers with a delay, and need
hysteresis to avoid flapping.  This module implements that honest
controller (Sec. 4.2's "during runtime, we continuously monitor the LC
server load"):

* phase detection from a trailing moving average of observed per-server
  load on the original fleet;
* **hysteresis** — convert to LC at ``enter_fraction × L_conv``, convert
  back to batch only below ``exit_fraction × L_conv``;
* **conversion delay** — a converted server takes ``delay_steps`` before
  it serves the other role (storage-disaggregated servers need no data
  migration, but process start + warm-up is not free).

Comparing oracle vs reactive quantifies what the paper's "history-based"
design buys: with strongly diurnal load, even a sluggish reactive
controller loses almost nothing — the peaks are predictable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..sim.batch import batch_throughput
from ..sim.demand import DemandTrace
from ..sim.loadbalancer import dispatch
from ..sim.power_model import DVFSModel
from .conversion import ConversionPolicy
from .runtime import FleetDescription, ScenarioResult


@dataclass(frozen=True)
class ReactiveConfig:
    """Controller realism knobs.

    Attributes
    ----------
    observation_window_steps:
        Length of the trailing average the controller sees.
    delay_steps:
        Steps between the conversion decision and the server serving its
        new role (it draws idle power while in transit).
    enter_fraction / exit_fraction:
        Hysteresis band around ``L_conv`` (enter LC-heavy above
        ``enter × L_conv``; return to batch below ``exit × L_conv``).
    """

    observation_window_steps: int = 3
    delay_steps: int = 2
    enter_fraction: float = 0.95
    exit_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.observation_window_steps <= 0:
            raise ValueError("observation window must be positive")
        if self.delay_steps < 0:
            raise ValueError("delay cannot be negative")
        if not 0 < self.exit_fraction <= self.enter_fraction <= 1:
            raise ValueError("need 0 < exit_fraction <= enter_fraction <= 1")


class ReactiveConversionRuntime:
    """Step-driven conversion with observation lag, delay, and hysteresis."""

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        config: Optional[ReactiveConfig] = None,
        dvfs: Optional[DVFSModel] = None,
    ) -> None:
        self.fleet = fleet
        self.conversion = conversion
        self.config = config if config is not None else ReactiveConfig()
        self.dvfs = dvfs if dvfs is not None else DVFSModel()

    def run_conversion(self, demand: DemandTrace, extra_servers: int) -> ScenarioResult:
        """Simulate the week step by step with the reactive controller."""
        if extra_servers < 0:
            raise ValueError("extra server count cannot be negative")
        config = self.config
        threshold = self.conversion.conversion_threshold
        enter_level = threshold * config.enter_fraction
        exit_level = threshold * config.exit_fraction
        convertible = self.conversion.batch_convertible(
            extra_servers, self.fleet.n_batch
        )

        n = demand.grid.n_samples
        n_lc_active = np.empty(n)
        n_batch_active = np.empty(n)
        parked = np.zeros(n)

        lc_heavy = False
        # Conversion pipeline: each entry is steps remaining until arrival.
        in_transit_to_lc: List[int] = []
        in_transit_to_batch: List[int] = []
        lc_extras = 0        # extras currently serving LC
        batch_extras = 0     # extras currently serving batch
        observed: List[float] = []

        for t in range(n):
            # 1. Observe (trailing average of per-original-server load).
            observed.append(demand.values[t] / self.fleet.n_lc)
            window = observed[-config.observation_window_steps :]
            signal = float(np.mean(window))

            # 2. Decide phase with hysteresis.
            if lc_heavy and signal < exit_level:
                lc_heavy = False
            elif not lc_heavy and signal >= enter_level:
                lc_heavy = True

            # 3. Issue conversions toward the target split.
            if lc_heavy:
                want_lc, want_batch = extra_servers, 0
            else:
                want_lc = extra_servers - convertible
                want_batch = convertible

            def idle_pool() -> int:
                return (
                    extra_servers
                    - lc_extras
                    - batch_extras
                    - len(in_transit_to_lc)
                    - len(in_transit_to_batch)
                )

            if lc_extras + len(in_transit_to_lc) < want_lc:
                deficit = want_lc - lc_extras - len(in_transit_to_lc)
                moves = min(deficit, batch_extras)
                batch_extras -= moves
                in_transit_to_lc.extend([config.delay_steps] * moves)
                # Fresh extras never previously assigned also join.
                boot = min(deficit - moves, max(0, idle_pool()))
                in_transit_to_lc.extend([config.delay_steps] * boot)
            elif lc_extras + len(in_transit_to_lc) > want_lc:
                surplus = lc_extras + len(in_transit_to_lc) - want_lc
                moves = min(surplus, lc_extras)
                lc_extras -= moves
                in_transit_to_batch.extend([config.delay_steps] * moves)
            # Cold start / refill: batch draws from the idle pool too,
            # otherwise convertible extras would sit dark until after the
            # first peak cycled them through LC.
            if batch_extras + len(in_transit_to_batch) < want_batch:
                boot = min(
                    want_batch - batch_extras - len(in_transit_to_batch),
                    max(0, idle_pool()),
                )
                in_transit_to_batch.extend([config.delay_steps] * boot)

            # 4. Advance the pipelines.
            in_transit_to_lc = [s - 1 for s in in_transit_to_lc]
            arrived = sum(1 for s in in_transit_to_lc if s <= 0)
            lc_extras += arrived
            in_transit_to_lc = [s for s in in_transit_to_lc if s > 0]
            in_transit_to_batch = [s - 1 for s in in_transit_to_batch]
            arrived = sum(1 for s in in_transit_to_batch if s <= 0)
            batch_extras += arrived
            in_transit_to_batch = [s for s in in_transit_to_batch if s > 0]
            # Batch-capacity cap still applies on arrival.
            if batch_extras > convertible:
                overflow = batch_extras - convertible
                batch_extras = convertible
                parked[t] += overflow

            # 5. Record the step's fleet split.
            transit = len(in_transit_to_lc) + len(in_transit_to_batch)
            idle_pool = extra_servers - lc_extras - batch_extras - transit
            n_lc_active[t] = self.fleet.n_lc + lc_extras
            n_batch_active[t] = self.fleet.n_batch + batch_extras
            parked[t] += transit + max(0, idle_pool)

        outcome = dispatch(demand.values, n_lc_active, threshold)
        batch = batch_throughput(n_batch_active, np.ones(n), self.dvfs)
        lc_power = n_lc_active * self.fleet.lc_model.power(outcome.per_server_load)
        batch_power = n_batch_active * self.fleet.batch_model.power(1.0, batch.freq)
        total = lc_power + batch_power + parked * self.fleet.lc_model.power(0.0)
        if self.fleet.other_power is not None:
            demand.grid.require_same(self.fleet.other_power.grid)
            total = total + self.fleet.other_power.values

        return ScenarioResult(
            name="reactive_conversion",
            grid=demand.grid,
            budget_watts=self.fleet.budget_watts,
            demand=demand.values.copy(),
            lc_served=outcome.served,
            lc_dropped=outcome.dropped,
            load_on_original=demand.values / self.fleet.n_lc,
            per_server_load=outcome.per_server_load,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_throughput=batch.throughput,
            batch_freq=batch.freq,
            total_power=total,
        )
