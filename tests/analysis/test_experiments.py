"""Small-scale tests of the per-figure experiment drivers.

These run the real drivers on shrunken datacenters (96 instances, 60-minute
sampling) — the full-scale runs live in benchmarks/.
"""

import pytest

from repro.analysis import experiments as E
from repro.infra import Level

SMALL = dict(n_instances=96, step_minutes=60)


@pytest.fixture(scope="module")
def dc1():
    return E.get_datacenter("DC1", **SMALL)


@pytest.fixture(scope="module")
def dc3():
    return E.get_datacenter("DC3", **SMALL)


class TestContext:
    def test_cache_returns_same_object(self, dc1):
        assert E.get_datacenter("DC1", **SMALL) is dc1

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            E.get_datacenter("DC9")


class TestFigure5:
    def test_shares_ordered_and_normalised(self, dc1):
        breakdown = E.run_figure5(dc1)
        shares = [share for _, share in breakdown]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) <= 1.0 + 1e-9
        assert breakdown[0][0] in ("frontend", "cache")


class TestFigure6:
    def test_default_services(self, dc1):
        summary = E.run_figure6(dc1)
        assert len(summary) == 3
        for stats in summary.values():
            assert stats["median_peak"] > 0

    def test_web_swings_more_than_batch(self, dc1):
        summary = E.run_figure6(dc1, services=["frontend", "batchjob"])
        assert summary["frontend"]["diurnal_swing"] > summary["batchjob"]["diurnal_swing"]

    def test_unknown_service(self, dc1):
        with pytest.raises(ValueError):
            E.run_figure6(dc1, services=["nope"])


class TestFigure8:
    def test_clusters_and_embedding(self, dc1):
        figure = E.run_figure8(dc1, k=4, max_points=60)
        n = len(figure.instance_ids)
        assert figure.scores.shape[0] == n
        assert figure.embedding.shape == (n, 2)
        assert figure.cluster_sizes().sum() == n
        # Balanced clustering: sizes differ by at most one.
        sizes = figure.cluster_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_suite_index_validated(self, dc1):
        with pytest.raises(IndexError):
            E.run_figure8(dc1, suite_index=99)


class TestFigure9:
    def test_parent_unchanged_children_smoothed(self, dc3):
        figure = E.run_figure9(dc3)
        assert figure.parent_peak_after == pytest.approx(
            figure.parent_peak_before, rel=1e-9
        )
        # At this micro scale (a handful of instances per child) the local
        # re-placement can be a wash; it must not be materially worse.  The
        # full-scale run (benchmarks/bench_fig09) shows the real reduction.
        assert figure.sum_child_peaks_after <= figure.sum_child_peaks_before * 1.03
        assert figure.child_peak_reduction >= -0.03


class TestFigure10:
    def test_structure(self):
        result = E.run_figure10(names=("DC1", "DC3"), **SMALL)
        assert set(result) == {"DC1", "DC3"}
        for row in result.values():
            assert "extra_servers" in row
            assert Level.RPP in row

    def test_dc3_beats_dc1_at_rpp(self):
        result = E.run_figure10(names=("DC1", "DC3"), **SMALL)
        assert result["DC3"][Level.RPP] > result["DC1"][Level.RPP]

    def test_reductions_grow_toward_leaves(self):
        result = E.run_figure10(names=("DC3",), **SMALL)
        row = result["DC3"]
        assert row[Level.RPP] >= row[Level.SUITE] - 1e-9


class TestFigure11:
    def test_grid_shape(self):
        grid = E.run_figure11("DC3", **SMALL)
        assert Level.RPP in grid
        rpp = grid[Level.RPP]
        assert rpp["StatProf(0, 0)"] == pytest.approx(1.0)
        assert rpp["SmoOp(0, 0)"] < 1.0

    def test_smoop_beats_statprof_at_rpp(self):
        grid = E.run_figure11("DC3", **SMALL)
        rpp = grid[Level.RPP]
        for u, d in ((0.0, 0.0), (10.0, 0.1)):
            assert rpp[f"SmoOp({u:g}, {d:g})"] <= rpp[f"StatProf({u:g}, {d:g})"] + 1e-9


class TestReshapingStudies:
    def test_figure12_time_series(self):
        study = E.run_figure12("DC3", **SMALL)
        conv = study.comparison.scenarios["conversion"]
        assert study.conversion_threshold <= 1.0
        assert study.extra_conversion >= 0
        total_extra = study.extra_conversion + study.extra_throttle_funded
        if total_extra > 0:
            # Conversion servers join LC at peak and leave it off-peak.
            tb = study.comparison.scenarios["throttle_boost"]
            assert tb.n_lc_active.max() > tb.n_lc_active.min()
        else:
            # Micro fleets can lack a whole server of per-rack headroom:
            # the study still runs, with a constant LC fleet.
            assert conv.n_lc_active.max() == conv.n_lc_active.min()

    def test_figure13_improvements(self):
        result = E.run_figure13(names=("DC1",), **SMALL)
        row = result["DC1"]
        assert row["lc_conversion"] >= 0
        assert row["batch_conversion"] >= 0
        assert row["lc_throttle_boost"] >= row["lc_conversion"]

    def test_figure14_slack(self):
        result = E.run_figure14(names=("DC1",), **SMALL)
        row = result["DC1"]
        assert set(row) == {"average", "off_peak", "average_vs_pre", "off_peak_vs_pre"}
        assert row["average_vs_pre"] > 0

    def test_scenarios_power_safe(self):
        study = E.run_figure12("DC1", **SMALL)
        for scenario in study.comparison.scenarios.values():
            assert scenario.overload_steps() == 0
