"""Property-based tests for the fault-injection subsystem.

Three invariants the chaos harness leans on:

* repair is idempotent — sanitised telemetry passes through unchanged;
* interpolating an injected gap recovers the clean trace (exactly for
  linear signals, within a curvature bound for smooth ones);
* the emergency capping fallback never sheds a service class below its
  policy floor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.faults import (
    FaultPlan,
    NegativeGlitch,
    PowerSpike,
    RawTelemetry,
    RepairPolicy,
    SensorDropout,
    StuckSensor,
    dirty_copy,
    repair_telemetry,
)
from repro.infra import Assignment, CappingPolicy, CappingSimulator, PowerNode, PowerTopology
from repro.traces import ServiceKind, TimeGrid, TraceSet

GRID = TimeGrid(0, 10, 288)


def smooth_matrix(n_rows, seed, noise=1.0):
    rng = np.random.default_rng(seed)
    t = np.arange(GRID.n_samples)
    base = 100.0 + 30.0 * np.sin(2 * np.pi * t / 144)
    return np.maximum(base + rng.normal(0, noise, (n_rows, GRID.n_samples)), 1.0)


class TestRepairIdempotent:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_second_repair_is_identity(self, seed):
        traces = TraceSet(GRID, ["a", "b", "c", "d"], smooth_matrix(4, seed))
        plan = FaultPlan(
            faults=(
                SensorDropout(fraction_of_traces=0.5),
                StuckSensor(fraction_of_traces=0.5),
                PowerSpike(fraction_of_traces=0.5, spikes_per_trace=2),
                NegativeGlitch(fraction_of_traces=0.25),
            ),
            seed=seed,
        )
        first = repair_telemetry(dirty_copy(traces, plan))
        second = repair_telemetry(first.traces)
        np.testing.assert_allclose(
            second.traces.matrix, first.traces.matrix, atol=1e-9
        )

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_repaired_output_is_strict_traceset(self, seed):
        traces = TraceSet(GRID, ["a", "b"], smooth_matrix(2, seed))
        plan = FaultPlan(
            faults=(SensorDropout(fraction_of_traces=1.0),), seed=seed
        )
        outcome = repair_telemetry(dirty_copy(traces, plan))
        # TraceSet construction itself enforces finite, non-negative values;
        # re-check explicitly so a loosened TraceSet cannot mask a regression.
        assert np.isfinite(outcome.traces.matrix).all()
        assert (outcome.traces.matrix >= 0).all()


class TestGapInterpolation:
    @given(
        st.integers(1, GRID.n_samples - 14),  # interior gap start
        st.integers(1, 12),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_trace_recovered_exactly(self, start, length, slope):
        clean = 10.0 + slope * np.arange(GRID.n_samples, dtype=np.float64)
        dirty = clean.copy()
        dirty[start : start + length] = np.nan
        outcome = repair_telemetry(RawTelemetry(GRID, ["ramp"], dirty[None, :]))
        np.testing.assert_allclose(outcome.traces.row("ramp"), clean, atol=1e-6)

    @given(st.integers(1, GRID.n_samples - 14), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_sinusoid_recovered_within_curvature_bound(self, start, length):
        amplitude = 30.0
        t = np.arange(GRID.n_samples)
        clean = 100.0 + amplitude * np.sin(2 * np.pi * t / 144)
        dirty = clean.copy()
        dirty[start : start + length] = np.nan
        # Disable the stuck-at detector: a gap landing on the sine's flat
        # extremum gets widened by stuck-run marking, and the curvature
        # bound below only holds for the injected gap width.
        policy = RepairPolicy(stuck_min_run=GRID.n_samples)
        outcome = repair_telemetry(
            RawTelemetry(GRID, ["sine"], dirty[None, :]), policy=policy
        )
        # Linear interpolation of A sin(wt) over g samples errs at most
        # A w^2 (g+1)^2 / 8; with w = 2*pi/144 and g <= 12 that is ~4% of A.
        tolerance = amplitude * (2 * np.pi / 144) ** 2 * (length + 1) ** 2 / 8
        err = np.abs(outcome.traces.row("sine") - clean).max()
        assert err <= tolerance + 1e-9


class TestCappingFloors:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(3, 24),
            elements=st.floats(0, 200, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1, 400),
    )
    @settings(max_examples=40, deadline=None)
    def test_capped_draw_never_below_class_floor(self, matrix, budget):
        """The fallback sheds down to the floors, never through them."""
        grid = TimeGrid(0, 60, 24)
        root = PowerNode("dc", level="datacenter", budget_watts=budget)
        topology = PowerTopology(root)
        assignment = Assignment(
            topology, {"lc": "dc", "batch": "dc", "other": "dc"}
        )
        traces = TraceSet(grid, ["lc", "batch", "other"], matrix)
        kinds = {
            "lc": ServiceKind.LATENCY_CRITICAL,
            "batch": ServiceKind.BATCH,
            "other": ServiceKind.OTHER,
        }
        policy = CappingPolicy()
        _, capped = CappingSimulator(
            topology, assignment, traces, kinds, policy=policy
        ).run_capped()
        for instance_id in ("lc", "batch", "other"):
            floor = policy.floor_for(kinds[instance_id])
            np.testing.assert_array_less(
                floor * traces.row(instance_id) - 1e-6,
                capped.row(instance_id) + 1e-9,
            )
