"""Shared fixtures: small grids, tiny fleets, and a demo datacenter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_datacenter, small_demo_spec
from repro.infra import build_topology, ocp_spec, two_level_spec
from repro.traces import (
    TimeGrid,
    TraceSynthesizer,
    cache_profile,
    db_profile,
    hadoop_profile,
    web_profile,
)


@pytest.fixture
def week_grid() -> TimeGrid:
    """One week at 30-minute resolution (fast: 336 samples)."""
    return TimeGrid.for_weeks(1, step_minutes=30)


@pytest.fixture
def day_grid() -> TimeGrid:
    return TimeGrid.for_days(1, step_minutes=30)


@pytest.fixture
def synthesizer() -> TraceSynthesizer:
    """Three weeks at 30-minute resolution, fixed seed."""
    return TraceSynthesizer(weeks=3, step_minutes=30, seed=42)


@pytest.fixture
def tiny_records(synthesizer):
    """24 instances across the four canonical archetypes."""
    return synthesizer.fleet(
        [
            (web_profile(), 8),
            (cache_profile(), 6),
            (db_profile(), 6),
            (hadoop_profile(), 4),
        ]
    )


@pytest.fixture
def tiny_topology():
    """2 RPPs x 2 racks x 8 slots = 32 capacity."""
    return build_topology(
        ocp_spec(
            "tiny",
            suites=1,
            msbs_per_suite=1,
            sbs_per_msb=1,
            rpps_per_sb=2,
            racks_per_rpp=2,
            servers_per_rack=8,
        )
    )


@pytest.fixture
def flat_topology():
    """Two leaves, 16 slots each — the Figure 1/3 toy datacenter."""
    return build_topology(two_level_spec("flat", leaves=2, leaf_capacity=16))


@pytest.fixture(scope="session")
def demo_datacenter():
    """The small demo datacenter (120 instances, 30-min step), built once."""
    return build_datacenter(small_demo_spec(), weeks=3, step_minutes=30)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
