"""Unit tests for headroom analysis and expansion planning."""

import numpy as np
import pytest

from repro.infra import (
    Assignment,
    NodePowerView,
    build_topology,
    node_headroom,
    plan_expansion,
    provision_hierarchical,
    two_level_spec,
)
from repro.traces import TimeGrid, TraceSet


@pytest.fixture
def setup():
    """Two leaves; leaf0 holds a 10 W-peak trace, leaf1 a 4 W-peak one.

    Budgets are fixed at 10 W per leaf (20 W root), so leaf0 has no
    headroom and leaf1 has 6 W.
    """
    grid = TimeGrid(0, 60, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=10))
    traces = TraceSet(
        grid,
        ["a", "b"],
        np.vstack(
            [np.full(24, 10.0), np.full(24, 4.0)]
        ),
    )
    assignment = Assignment(topo, {"a": "dc/rpp0", "b": "dc/rpp1"})
    view = NodePowerView(topo, assignment, traces)
    topo.node("dc/rpp0").budget_watts = 10.0
    topo.node("dc/rpp1").budget_watts = 10.0
    topo.node("dc").budget_watts = 20.0
    return topo, view


class TestHeadroom:
    def test_node_headroom(self, setup):
        _, view = setup
        headroom = node_headroom(view)
        assert headroom["dc/rpp0"] == pytest.approx(0.0)
        assert headroom["dc/rpp1"] == pytest.approx(6.0)
        assert headroom["dc"] == pytest.approx(6.0)

    def test_skips_unbudgeted(self, setup):
        topo, view = setup
        topo.node("dc").budget_watts = None
        assert "dc" not in node_headroom(view)


class TestExpansion:
    def test_fills_where_headroom_is(self, setup):
        _, view = setup
        plan = plan_expansion(view, per_server_watts=2.0)
        assert plan.extra_per_leaf["dc/rpp1"] == 3
        assert plan.extra_per_leaf["dc/rpp0"] == 0
        assert plan.total_extra == 3

    def test_root_constraint_binds(self, setup):
        topo, view = setup
        topo.node("dc").budget_watts = 15.0  # root has only 1 W headroom
        plan = plan_expansion(view, per_server_watts=2.0)
        assert plan.total_extra == 0

    def test_expansion_fraction(self, setup):
        _, view = setup
        plan = plan_expansion(view, per_server_watts=2.0)
        # 3 extra over 2 original instances.
        assert plan.expansion_fraction == pytest.approx(1.5)

    def test_respect_leaf_capacity(self, setup):
        topo, view = setup
        topo.node("dc/rpp1").capacity = 2  # 1 used, only 1 slot free
        plan = plan_expansion(view, per_server_watts=2.0, respect_leaf_capacity=True)
        assert plan.extra_per_leaf["dc/rpp1"] == 1

    def test_requires_positive_server_watts(self, setup):
        _, view = setup
        with pytest.raises(ValueError):
            plan_expansion(view, per_server_watts=0)

    def test_requires_budgets(self, setup):
        topo, view = setup
        topo.node("dc").budget_watts = None
        with pytest.raises(ValueError):
            plan_expansion(view, per_server_watts=1.0)


class TestHierarchicalInteraction:
    def test_defragmented_placement_unlocks_servers(self):
        """End-to-end micro-version of the paper's headline claim."""
        grid = TimeGrid(0, 60, 24)
        topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=10))
        up = np.concatenate([np.zeros(12), np.full(12, 10.0)])
        down = np.concatenate([np.full(12, 10.0), np.zeros(12)])
        traces = TraceSet(grid, ["u1", "u2", "d1", "d2"], np.vstack([up, up, down, down]))

        poor = Assignment(
            topo, {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp1"}
        )
        good = Assignment(
            topo, {"u1": "dc/rpp0", "d1": "dc/rpp0", "u2": "dc/rpp1", "d2": "dc/rpp1"}
        )
        poor_view = NodePowerView(topo, poor, traces)
        provision_hierarchical(poor_view, margin=0.0)

        # Under the poor placement there is no room anywhere.
        assert plan_expansion(poor_view, per_server_watts=10.0).total_extra == 0

        # The good placement halves leaf peaks: each leaf fits one more
        # 10 W server under the same budgets.
        good_view = NodePowerView(topo, good, traces)
        plan = plan_expansion(good_view, per_server_watts=10.0)
        assert plan.total_extra == 2
