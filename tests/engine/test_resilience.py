"""Regression tests: ``run_many`` survives dying workers and bad specs.

A killed worker process breaks the whole ``ProcessPoolExecutor``; the
suite must come back with per-spec results anyway — retried where the
spec was an innocent bystander, a structured :class:`RunFailure` where it
kept crashing.
"""

import os

import pytest

from conftest import make_demand, make_fleet, make_runtime_parts
from repro.engine import RunArtifacts, RunFailure, ScenarioSpec, run_many
from repro.engine.parallel import WorkerPool, _worker_barrier


# ----------------------------------------------------------------------
# module-level callables (must pickle into fork workers)
# ----------------------------------------------------------------------
def well_behaved():
    return "ok"


def kill_worker_hard():
    """Die the way a real casualty dies: no exception, no cleanup."""
    os._exit(17)


class KillOnce:
    """Kills the first worker that runs it, succeeds afterwards.

    The flag lives on the filesystem because the retry lands in a *new*
    forked worker: process memory resets, the file survives.
    """

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def __call__(self):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("died")
            os._exit(17)
        return "recovered"


class AlwaysRaises:
    def __call__(self):
        raise ValueError("deliberate failure")


def _scenario_spec():
    fleet, conversion, _, _ = make_runtime_parts()
    return ScenarioSpec(
        mode="pre", fleet=fleet, demand=make_demand(), conversion=conversion
    )


# ----------------------------------------------------------------------
# worker death
# ----------------------------------------------------------------------
def test_run_many_survives_a_worker_killed_mid_suite(tmp_path):
    """One spec kills its worker once; the suite still returns everything."""
    specs = [
        _scenario_spec(),
        KillOnce(tmp_path / "died.flag"),
        well_behaved,
    ]
    results = run_many(specs, workers=2, retry_backoff_s=0.0)
    assert len(results) == 3
    assert isinstance(results[0], RunArtifacts)
    assert results[0].result.name == "pre"
    assert isinstance(results[1], RunArtifacts)
    assert results[1].result == "recovered"
    assert isinstance(results[2], RunArtifacts)
    assert results[2].result == "ok"


def test_run_many_reports_a_persistent_killer_as_run_failure():
    specs = [well_behaved, kill_worker_hard, well_behaved]
    results = run_many(
        specs, workers=2, max_attempts=2, retry_backoff_s=0.0
    )
    assert len(results) == 3
    # The innocent bystanders survive (possibly via retry) …
    assert results[0].result == "ok"
    assert results[2].result == "ok"
    # … and the killer comes back as a structured failure, not a crash.
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.attempts == 2
    assert failure.spec is kill_worker_hard
    assert failure.result is None
    assert failure.error_type and failure.error


def test_submit_resilient_retries_a_submit_that_found_a_broken_executor():
    """A worker death can break the executor *between* two submits of the
    same round; the racing submit then raises ``BrokenProcessPool``
    synchronously instead of returning a future.  ``submit_resilient``
    must absorb that: rebuild, resubmit, and hand back a working future.
    """
    from concurrent.futures.process import BrokenProcessPool

    pool = WorkerPool(2)
    try:
        real_submit = pool.submit
        calls = []
        rebuilds = []

        def submit_broken_once(fn, /, *args, **kwargs):
            calls.append(fn)
            if len(calls) == 1:
                raise BrokenProcessPool("executor died before dispatch")
            return real_submit(fn, *args, **kwargs)

        pool.submit = submit_broken_once
        future = pool.submit_resilient(
            _worker_barrier, 7, on_rebuild=lambda: rebuilds.append(True)
        )
        assert future.result() == 7
        assert len(calls) == 2
        assert rebuilds == [True]
    finally:
        pool.submit = real_submit
        pool.shutdown()


def test_rebuild_if_broken_spares_a_healthy_executor():
    """``rebuild_if_broken`` must only tear down an executor that really
    broke — a fresh one swapped in mid-round keeps its running tasks."""
    pool = WorkerPool(2)
    try:
        pool.warm()
        generation = pool.generation
        assert pool.rebuild_if_broken() is False
        assert pool.generation == generation

        future = pool.submit(kill_worker_hard)
        with pytest.raises(Exception):
            future.result()
        assert pool.rebuild_if_broken() is True
        assert pool.submit(_worker_barrier, 3).result() == 3
        assert pool.generation == generation + 1
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# plain exceptions (serial and parallel)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_run_many_wraps_raising_specs_without_sinking_the_suite(workers):
    specs = [well_behaved, AlwaysRaises(), well_behaved]
    results = run_many(
        specs, workers=workers, max_attempts=2, retry_backoff_s=0.0
    )
    assert results[0].result == "ok"
    assert results[2].result == "ok"
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.error_type == "ValueError"
    assert "deliberate failure" in failure.error
    assert failure.attempts == 2


def test_run_many_validates_retry_parameters():
    with pytest.raises(ValueError, match="max_attempts"):
        run_many([well_behaved], max_attempts=0)
    with pytest.raises(ValueError, match="backoff"):
        run_many([well_behaved], retry_backoff_s=-1.0)


def test_callable_specs_wrap_plain_return_values():
    [artifacts] = run_many([well_behaved])
    assert isinstance(artifacts, RunArtifacts)
    assert artifacts.spec is well_behaved
    assert artifacts.result == "ok"
