"""Unit tests for batch throughput accounting."""

import numpy as np
import pytest

from repro.sim import DVFSModel, batch_throughput


class TestBatchThroughput:
    def test_nominal(self):
        outcome = batch_throughput(
            np.full(4, 10.0), np.ones(4), DVFSModel()
        )
        assert np.allclose(outcome.throughput, 10.0)
        assert outcome.total() == pytest.approx(40.0)

    def test_throttled(self):
        dvfs = DVFSModel(min_freq=0.5)
        outcome = batch_throughput(np.full(2, 10.0), np.full(2, 0.5), dvfs)
        assert np.allclose(outcome.throughput, 5.0)

    def test_boost_sublinear(self):
        dvfs = DVFSModel(max_freq=1.5, boost_efficiency=0.5)
        outcome = batch_throughput(np.array([10.0]), np.array([1.4]), dvfs)
        assert outcome.throughput[0] == pytest.approx(12.0)

    def test_freq_clamped(self):
        dvfs = DVFSModel(min_freq=0.6, max_freq=1.2)
        outcome = batch_throughput(np.array([10.0]), np.array([0.1]), dvfs)
        assert outcome.freq[0] == pytest.approx(0.6)

    def test_zero_servers(self):
        outcome = batch_throughput(np.zeros(3), np.ones(3), DVFSModel())
        assert outcome.total() == 0.0

    def test_negative_servers_rejected(self):
        with pytest.raises(ValueError):
            batch_throughput(np.array([-1.0]), np.array([1.0]), DVFSModel())

    def test_varying_schedule(self):
        dvfs = DVFSModel(min_freq=0.5, max_freq=1.2, boost_efficiency=1.0)
        servers = np.array([10.0, 10.0, 10.0])
        freq = np.array([0.5, 1.0, 1.2])
        outcome = batch_throughput(servers, freq, dvfs)
        assert outcome.throughput[0] < outcome.throughput[1] < outcome.throughput[2]
