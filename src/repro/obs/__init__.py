"""Observability: span tracing, metrics, and benchmark emission.

The substrate every perf-sensitive subsystem reports into:

* :mod:`repro.obs.spans` — a zero-dependency span tracer.  Instrumented
  code opens regions with ``obs.span("cluster")``; when a tracer is
  installed via :func:`tracing`, every end-to-end run yields a structured
  stage-by-stage profile (wall/CPU time per span, nested).
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and histograms.  :func:`count` is always on and additionally
  attributes increments to the open span while profiling.
* :mod:`repro.obs.bench` — writes machine-readable ``BENCH_<name>.json``
  documents (stage timings, workload sizes, peak-reduction numbers) that
  CI uploads so the perf trajectory accrues per PR.
"""

from .bench import bench_path, stage_timings, update_bench
from .metrics import (
    Histogram,
    MetricsRegistry,
    count,
    counter_value,
    global_registry,
    observe,
    reset_metrics,
    set_gauge,
    snapshot_metrics,
)
from .spans import Span, Tracer, current_span, get_tracer, span, tracing

__all__ = [
    # spans
    "Span",
    "Tracer",
    "span",
    "tracing",
    "current_span",
    "get_tracer",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "count",
    "counter_value",
    "global_registry",
    "observe",
    "set_gauge",
    "snapshot_metrics",
    "reset_metrics",
    # bench
    "bench_path",
    "stage_timings",
    "update_bench",
]
