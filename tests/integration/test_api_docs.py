"""docs/API.md must stay in sync with the code."""

import pathlib
import sys


ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_api_docs_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    expected = gen_api_docs.generate()
    committed = (ROOT / "docs" / "API.md").read_text()
    assert committed == expected, (
        "docs/API.md is stale — run `python tools/gen_api_docs.py`"
    )


def test_api_docs_mention_core_names():
    content = (ROOT / "docs" / "API.md").read_text()
    for name in (
        "WorkloadAwarePlacer",
        "asynchrony_score",
        "ReshapingRuntime",
        "CappingSimulator",
        "TraceSynthesizer",
    ):
        assert name in content
