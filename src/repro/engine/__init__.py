"""The unified simulation core.

One :class:`Engine` replaces the three scenario stacks that grew up in
parallel — ``repro.reshaping.runtime`` (clean Sec. 4 scenarios),
``repro.faults.runtime`` (the same scenarios under injected faults) and
``repro.infra.capping`` (the emergency fallback).  Scenarios are described
declaratively by :class:`ScenarioSpec` / :class:`ChaosSpec`, executed by
:meth:`Engine.run` through a pipeline of :class:`Policy` / :class:`Actuator`
plugins, and fanned out across processes by :func:`run_many`.

The legacy entry points remain importable as thin shims and produce
bit-identical results (pinned by the golden parity suite in
``tests/engine/``).
"""

from .delta import (  # noqa: F401  (import order: leaf modules first)
    FleetDelta,
    Move,
    PlacementState,
    dirty_nodes,
)
from .state import (  # noqa: F401
    FleetDescription,
    FleetState,
    RunArtifacts,
    ScenarioResult,
)
from .capping import (  # noqa: F401
    DEFAULT_PRIORITY,
    CappingPolicy,
    CappingReport,
    CappingSimulator,
    NodeCappingStats,
    compare_capping,
)
from .faults import (  # noqa: F401
    BATCH_POOL,
    LC_POOL,
    ChaosRunResult,
    ConversionFaultModel,
    ConversionLog,
    FailureEvent,
    PowerSpikeSchedule,
    RecoveryReport,
    ServerFailureSchedule,
    SpikeEvent,
)
from .policy import (  # noqa: F401
    Actuator,
    ConversionFaultPolicy,
    ConversionPlanPolicy,
    EmergencyCapping,
    Policy,
    PowerSpikePolicy,
    RunContext,
    ServerFailurePolicy,
    StaticFleetPolicy,
    ThrottleBoostPlan,
)
from .spec import (  # noqa: F401
    MODES,
    ChaosSpec,
    ScenarioSpec,
    build_pipeline,
    chaos_spec,
)
from .chaos_infra import (  # noqa: F401
    InfraFault,
    InjectedFault,
)
from .deadline import (  # noqa: F401
    TaskDeadline,
    TaskTimeoutError,
    clear_default_deadline,
    deadline_scope,
    get_default_deadline,
    set_default_deadline,
)
from .core import Engine  # noqa: F401
from .parallel import (  # noqa: F401
    RunFailure,
    WorkerPool,
    execute,
    get_pool,
    run_many,
    shutdown_pools,
    warm_pool,
)
from .sharedmem import (  # noqa: F401
    MatrixHandle,
    SharedMatrix,
    SharedTraceSet,
    ShardSpec,
    shard_ranges,
)

__all__ = [
    "Actuator",
    "BATCH_POOL",
    "CappingPolicy",
    "CappingReport",
    "CappingSimulator",
    "ChaosRunResult",
    "ChaosSpec",
    "ConversionFaultModel",
    "ConversionFaultPolicy",
    "ConversionLog",
    "ConversionPlanPolicy",
    "DEFAULT_PRIORITY",
    "EmergencyCapping",
    "Engine",
    "FailureEvent",
    "FleetDelta",
    "FleetDescription",
    "FleetState",
    "InfraFault",
    "InjectedFault",
    "LC_POOL",
    "MODES",
    "MatrixHandle",
    "Move",
    "NodeCappingStats",
    "PlacementState",
    "Policy",
    "PowerSpikePolicy",
    "PowerSpikeSchedule",
    "RecoveryReport",
    "RunArtifacts",
    "RunContext",
    "RunFailure",
    "ScenarioResult",
    "ScenarioSpec",
    "ServerFailurePolicy",
    "ServerFailureSchedule",
    "ShardSpec",
    "SharedMatrix",
    "SharedTraceSet",
    "SpikeEvent",
    "StaticFleetPolicy",
    "TaskDeadline",
    "TaskTimeoutError",
    "ThrottleBoostPlan",
    "WorkerPool",
    "build_pipeline",
    "chaos_spec",
    "clear_default_deadline",
    "compare_capping",
    "deadline_scope",
    "dirty_nodes",
    "execute",
    "get_default_deadline",
    "get_pool",
    "run_many",
    "set_default_deadline",
    "shard_ranges",
    "shutdown_pools",
    "warm_pool",
]
