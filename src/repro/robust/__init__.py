"""Γ-robust placement and headroom accounting under power uncertainty.

The rest of the pipeline treats each instance's peak power as a point
estimate; real fleets spike, and synchronized spikes are exactly what trips
breakers (the paper's own motivation).  This package models every
instance's power as an interval ``[p_c - p_r, p_c + p_r]`` — a *nominal*
draw ``p_c`` plus a *spike radius* ``p_r``, both derived from trace
history — and budgets every power node so that at most ``Γ`` co-located
instances can spike to their maximum simultaneously without a violation
(Bertsimas–Sim Γ-robustness, specialised to the power tree):

* :mod:`repro.robust.uncertainty` — :class:`UncertainPowerModel`, the
  per-instance nominal + radius estimator;
* :mod:`repro.robust.headroom` — the exact Γ-sum (sorted top-Γ radii) with
  O(log n) incremental updates (:class:`GammaAccountant`,
  :class:`RobustHeadroomIndex`) plus vectorised whole-tree accounting;
* :mod:`repro.robust.placement` — :class:`RobustPlacer` with two
  strategies: ``"swap"`` (default) seeds from the nominal workload-aware
  placement and trades similar-draw instances to spread spike radii
  without disturbing the asynchrony-optimised peaks, ``"first_fit"`` is a
  strict Γ-feasible sorted first-fit against budgets (both fall back to
  the nominal placement at ``Γ = 0``);
* :mod:`repro.robust.chaos` — the spike-burst chaos suite comparing
  robust vs. nominal placement, reporting violations and breaker trips
  avoided per watt of headroom sacrificed through the event log.
"""

from .uncertainty import UncertainPowerModel
from .headroom import (
    GammaAccountant,
    RobustHeadroomIndex,
    gamma_sum,
    robust_load,
    robust_node_headroom,
    robust_node_loads,
)
from .placement import (
    STRATEGIES,
    RobustPlacementConfig,
    RobustPlacementResult,
    RobustPlacer,
)
from .chaos import (
    SPIKE_SUITE,
    PlacementUnderSpikes,
    RobustScenarioOutcome,
    SpikeScenario,
    format_robust_table,
    run_robust_scenario,
    run_robust_suite,
    spike_scenario_by_name,
)

__all__ = [
    "GammaAccountant",
    "PlacementUnderSpikes",
    "STRATEGIES",
    "RobustHeadroomIndex",
    "RobustPlacementConfig",
    "RobustPlacementResult",
    "RobustPlacer",
    "RobustScenarioOutcome",
    "SPIKE_SUITE",
    "SpikeScenario",
    "UncertainPowerModel",
    "format_robust_table",
    "gamma_sum",
    "robust_load",
    "robust_node_headroom",
    "robust_node_loads",
    "run_robust_scenario",
    "run_robust_suite",
    "spike_scenario_by_name",
]
