"""The cross-process capture/ship/merge layer (repro.obs.remote)."""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro import obs
from repro.obs import events as obs_events
from repro.obs import remote
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Span, Tracer


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestCaptureEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(remote.CAPTURE_ENV, raising=False)
        assert remote.capture_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " 0 ", "FALSE"])
    def test_kill_switch_values(self, monkeypatch, value):
        monkeypatch.setenv(remote.CAPTURE_ENV, value)
        assert not remote.capture_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(remote.CAPTURE_ENV, value)
        assert remote.capture_enabled()


class TestCapture:
    def test_bundle_collects_spans_metrics_events(self):
        with remote.capture(shard_id=3, label="score.shard") as cap:
            obs.count("work.rows", 40)
            obs.observe("work.latency", 0.5)
            obs.set_gauge("work.gauge", 7.0)
            obs.emit("advisory", source="test", note="hi")
            with obs.span("inner"):
                obs.count("work.inner")
        bundle = cap.bundle
        assert bundle.shard_id == 3
        assert bundle.label == "score.shard"
        assert bundle.worker_pid == os.getpid()
        assert not bundle.failed
        assert bundle.counters == {"work.rows": 40.0, "work.inner": 1.0}
        assert bundle.gauges == {"work.gauge": 7.0}
        assert bundle.histograms["work.latency"]["count"] == 1
        [root] = bundle.spans
        assert root["name"] == "score.shard"
        assert root["meta"] == {"shard": 3, "pid": os.getpid()}
        assert [c["name"] for c in root.get("children", [])] == ["inner"]
        [event] = bundle.events
        assert event["kind"] == "advisory"
        # The event correlates to the capture's root span by original id.
        assert event["span_id"] == root["span_id"]

    def test_capture_is_isolated_from_global_registry(self):
        with remote.capture():
            obs.count("isolated.counter")
        assert obs.snapshot_metrics()["counters"] == {}

    def test_exception_recorded_and_propagates(self):
        cap = remote.capture(shard_id=1, label="boom.shard")
        with pytest.raises(ValueError):
            with cap:
                obs.emit("advisory", source="boom", note="before")
                raise ValueError("kaboom")
        bundle = cap.bundle
        assert bundle.failed
        assert bundle.error == {"type": "ValueError", "message": "kaboom"}
        [root] = bundle.spans
        assert root["meta"]["error"] == "ValueError: kaboom"
        kinds = [event["kind"] for event in bundle.events]
        assert kinds == ["advisory", obs_events.TASK_ERROR]
        task_error = bundle.events[-1]
        assert task_error["fields"]["error_type"] == "ValueError"

    def test_nested_capture_restores_previous_surfaces(self):
        with obs.tracing() as outer_tracer:
            with remote.capture():
                pass
            with obs.span("after"):
                pass
        assert [s.name for s in outer_tracer.roots] == ["after"]


class TestRunCaptured:
    def test_success_returns_result_and_bundle(self):
        result, bundle = remote.run_captured(
            lambda a, b: a + b, 2, "add.shard", 1, (20, 22)
        )
        assert result == 42
        assert bundle.shard_id == 2
        assert bundle.attempt == 1
        assert bundle.wall_s >= 0.0

    def test_failure_attaches_bundle_to_original_exception(self):
        def explode():
            raise KeyError("missing")

        with pytest.raises(KeyError) as exc_info:
            remote.run_captured(explode, 0, "boom", 2, ())
        bundle = remote.bundle_from_error(exc_info.value)
        assert bundle is not None
        assert bundle.failed
        assert bundle.attempt == 2

    def test_bundle_survives_exception_pickling(self):
        """The shipped bundle must live through the executor's pickle trip."""

        def explode():
            raise ValueError("kaboom")

        with pytest.raises(ValueError) as exc_info:
            remote.run_captured(explode, 0, "boom", 1, ())
        revived = pickle.loads(pickle.dumps(exc_info.value))
        assert type(revived) is ValueError
        bundle = remote.bundle_from_error(revived)
        assert bundle is not None and bundle.error["type"] == "ValueError"

    def test_bundle_from_error_none_for_plain_exceptions(self):
        assert remote.bundle_from_error(ValueError("plain")) is None


def _make_bundle(shard_id, *, counters=None, observations=(), events=(), attempt=1):
    """A bundle built through the real capture machinery."""
    with remote.capture(shard_id=shard_id, label="t.shard", attempt=attempt) as cap:
        for name, value in (counters or {}).items():
            obs.count(name, value)
        for value in observations:
            obs.observe("t.hist", value)
        for note in events:
            obs.emit("advisory", source="t", note=note)
    return cap.bundle


class TestMergeBundles:
    def test_spans_graft_under_open_coordinator_span(self):
        bundles = [_make_bundle(i) for i in range(3)]
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("dispatch"):
                remote.merge_bundles(bundles)
        [dispatch] = tracer.roots
        assert [c.name for c in dispatch.children] == ["t.shard"] * 3
        assert [c.meta["shard"] for c in dispatch.children] == [0, 1, 2]

    def test_counters_and_gauges_merge_into_registry(self):
        bundles = [
            _make_bundle(0, counters={"t.rows": 10}),
            _make_bundle(1, counters={"t.rows": 32}),
        ]
        registry = MetricsRegistry()
        remote.merge_bundles(bundles, registry=registry, tracer=None, log=None)
        assert registry.counters["t.rows"] == 42.0

    def test_events_remap_span_ids_and_gain_worker_tags(self):
        bundle = _make_bundle(5, events=["one", "two"])
        tracer = Tracer()
        log = obs_events.EventLog()
        with obs.tracing(tracer):
            remote.merge_bundles([bundle], log=log)
        [root] = tracer.roots
        merged = log.events
        assert [e.fields["note"] for e in merged] == ["one", "two"]
        assert all(e.fields["worker_pid"] == os.getpid() for e in merged)
        assert all(e.fields["shard_id"] == 5 for e in merged)
        # Remapped onto the rebuilt span, not the worker-side original id.
        assert all(e.span_id == root.span_id for e in merged)
        assert [e.seq for e in merged] == [1, 2]

    def test_merge_is_deterministic_under_shuffled_completion_order(self):
        """Satellite: coordinator-merged histograms must not depend on the
        order tasks completed in — merge sorts by shard id first."""
        rng = random.Random(7)
        bundles = [
            _make_bundle(i, observations=[float(v) for v in range(i * 10, i * 10 + 8)])
            for i in range(6)
        ]

        def merged_registry(order):
            registry = MetricsRegistry()
            remote.merge_bundles(
                [bundles[i] for i in order], registry=registry, tracer=None, log=None
            )
            return registry

        baseline = merged_registry(range(6)).histogram("t.hist")
        for _ in range(5):
            order = list(range(6))
            rng.shuffle(order)
            shuffled = merged_registry(order).histogram("t.hist")
            assert shuffled.count == baseline.count
            assert shuffled.total == baseline.total
            assert shuffled._reservoir == baseline._reservoir
            assert shuffled.percentile(95) == baseline.percentile(95)

    def test_histogram_state_roundtrip_merges_like_original(self):
        original = Histogram()
        for value in range(100):
            original.observe(float(value))
        rebuilt = Histogram.from_state(original.to_state())
        target_a, target_b = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            target_a.observe(value)
            target_b.observe(value)
        target_a.merge(original)
        target_b.merge(rebuilt)
        assert target_a.count == target_b.count
        assert target_a.total == target_b.total
        assert target_a._reservoir == target_b._reservoir

    def test_empty_bundle_list_is_a_noop(self):
        remote.merge_bundles([])  # must not touch (or require) any surface

    def test_span_from_dict_fills_id_map(self):
        with remote.capture(shard_id=0) as cap:
            with obs.span("child"):
                pass
        [payload] = cap.bundle.spans
        id_map = {}
        rebuilt = Span.from_dict(payload, id_map=id_map)
        assert set(id_map) == {payload["span_id"], payload["children"][0]["span_id"]}
        assert rebuilt.span_id == id_map[payload["span_id"]]
        assert rebuilt.children[0].name == "child"
