"""Unit tests for the interval power model."""

import numpy as np
import pytest

from repro.robust import UncertainPowerModel
from repro.traces.traceset import TraceSet


def test_from_traceset_derives_percentile_nominal_and_max_radius(week_grid):
    n = week_grid.n_samples
    flat = np.full(n, 100.0)
    spiky = np.full(n, 100.0)
    spiky[:3] = 400.0  # three spike samples, above the 95th percentile
    traces = TraceSet(week_grid, ["flat", "spiky"], np.vstack([flat, spiky]))
    model = UncertainPowerModel.from_traceset(traces)

    assert model.nominal_of("flat") == pytest.approx(100.0)
    assert model.radius_of("flat") == pytest.approx(0.0)
    assert model.nominal_of("spiky") == pytest.approx(100.0)
    assert model.radius_of("spiky") == pytest.approx(300.0)
    assert model.upper("spiky") == pytest.approx(400.0)


def test_radius_scale_hardens_and_zero_degenerates(week_grid):
    n = week_grid.n_samples
    trace = np.full(n, 50.0)
    trace[0] = 150.0
    traces = TraceSet(week_grid, ["a"], trace[None, :])
    hard = UncertainPowerModel.from_traceset(traces, radius_scale=2.0)
    point = UncertainPowerModel.from_traceset(traces, radius_scale=0.0)
    assert hard.radius_of("a") == pytest.approx(200.0)
    assert point.radius_of("a") == 0.0


def test_interval_floors_lower_end_at_zero():
    model = UncertainPowerModel(["a"], [10.0], [25.0])
    low, high = model.interval("a")
    assert low == 0.0
    assert high == pytest.approx(35.0)


def test_validation_rejects_bad_shapes_and_values():
    with pytest.raises(ValueError, match="inconsistent"):
        UncertainPowerModel(["a", "b"], [1.0], [1.0])
    with pytest.raises(ValueError, match="negative"):
        UncertainPowerModel(["a"], [-1.0], [0.0])
    with pytest.raises(ValueError, match="negative"):
        UncertainPowerModel(["a"], [1.0], [-0.5])
    with pytest.raises(ValueError, match="unique"):
        UncertainPowerModel(["a", "a"], [1.0, 2.0], [0.0, 0.0])
    with pytest.raises(ValueError, match="finite"):
        UncertainPowerModel(["a"], [float("nan")], [0.0])


def test_subset_preserves_order_and_values():
    model = UncertainPowerModel(
        ["a", "b", "c"], [1.0, 2.0, 3.0], [0.1, 0.2, 0.3]
    )
    sub = model.subset(["c", "a"])
    assert sub.ids == ["c", "a"]
    assert sub.nominal.tolist() == [3.0, 1.0]
    assert sub.radius.tolist() == [0.3, 0.1]
    with pytest.raises(KeyError):
        model.subset(["nope"])


def test_rows_and_total_upper():
    model = UncertainPowerModel(["a", "b"], [10.0, 20.0], [1.0, 2.0])
    nominal, radius = model.rows(["b", "a"])
    assert nominal.tolist() == [20.0, 10.0]
    assert radius.tolist() == [2.0, 1.0]
    assert model.total_upper() == pytest.approx(33.0)
    assert len(model) == 2
    assert "a" in model and "z" not in model


# ----------------------------------------------------------------------
# spike minority
# ----------------------------------------------------------------------
def test_spike_minority_replaces_the_requested_fraction():
    ids = [f"i{k}" for k in range(50)]
    model = UncertainPowerModel(ids, np.full(50, 100.0), np.full(50, 5.0))
    spiked = model.with_spike_minority(0.1, 230.0, seed=7)
    boosted = [iid for iid in ids if spiked.radius_of(iid) == 230.0]
    assert len(boosted) == 5
    # Untouched instances keep their trace-derived radius …
    for iid in set(ids) - set(boosted):
        assert spiked.radius_of(iid) == 5.0
    # … and nominals never change.
    assert np.array_equal(spiked.nominal, model.nominal)
    # The original model is not mutated.
    assert float(model.radius.max()) == 5.0


def test_spike_minority_is_seed_deterministic():
    ids = [f"i{k}" for k in range(40)]
    model = UncertainPowerModel(ids, np.full(40, 100.0), np.full(40, 5.0))
    first = model.with_spike_minority(0.25, 300.0, seed=3)
    second = model.with_spike_minority(0.25, 300.0, seed=3)
    other = model.with_spike_minority(0.25, 300.0, seed=4)
    assert np.array_equal(first.radius, second.radius)
    assert not np.array_equal(first.radius, other.radius)


def test_spike_minority_edge_fractions():
    model = UncertainPowerModel(["a", "b"], [1.0, 2.0], [0.5, 0.5])
    assert np.array_equal(
        model.with_spike_minority(0.0, 99.0).radius, model.radius
    )
    assert (model.with_spike_minority(1.0, 99.0).radius == 99.0).all()
    with pytest.raises(ValueError, match="fraction"):
        model.with_spike_minority(1.5, 10.0)
    with pytest.raises(ValueError, match="negative"):
        model.with_spike_minority(0.5, -1.0)
