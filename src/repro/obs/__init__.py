"""Observability: spans, metrics, telemetry, events, exporters, benchmarks.

The substrate every perf-sensitive subsystem reports into:

* :mod:`repro.obs.spans` — a zero-dependency span tracer.  Instrumented
  code opens regions with ``obs.span("cluster")``; when a tracer is
  installed via :func:`tracing`, every end-to-end run yields a structured
  stage-by-stage profile (wall/CPU time per span, nested).  Installation
  and the open-span stack are thread-local.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and histograms.  :func:`count` is always on and additionally
  attributes increments to the open span while profiling.
* :mod:`repro.obs.telemetry` — the power-tree flight recorder: compact
  numpy ring buffers of per-node utilization/slack/headroom/capped series
  keyed by topology path, plus sliding-window precursor detection.
* :mod:`repro.obs.events` — a structured, sequence-numbered event log
  (budget violations, breaker trips, conversions, throttle/boost, swap
  decisions, fault injections, advisories) with span correlation ids,
  serialisable as JSONL.
* :mod:`repro.obs.export` — Prometheus text exposition and a merged JSON
  document over all of the above.
* :mod:`repro.obs.remote` — cross-process capture/ship/merge: pool tasks
  record into a private tracer/registry/log inside the worker, ship a
  :class:`~repro.obs.remote.TelemetryBundle` back with their result, and
  the coordinator merges everything into its live surfaces — one coherent
  span tree, metric set, and event log across process boundaries
  (``REPRO_OBS_CAPTURE=0`` disables it).
* :mod:`repro.obs.report` — the unified run report over pooled stages:
  per-worker utilization, shard imbalance, straggler shards, queue vs
  execution latency, rendered by ``smoothoperator report`` and
  auto-written when ``REPRO_RUN_REPORT`` names a path.
* :mod:`repro.obs.bench` — writes machine-readable ``BENCH_<name>.json``
  documents (stage timings, workload sizes, peak-reduction numbers) that
  CI uploads so the perf trajectory accrues per PR;
  ``tools/bench_compare.py`` gates regressions against them.
"""

from . import events, export, remote, report, telemetry
from .bench import bench_path, stage_timings, update_bench
from .events import Event, EventLog, emit, get_event_log
from .metrics import (
    Histogram,
    MetricsRegistry,
    count,
    counter_value,
    global_registry,
    observe,
    reset_metrics,
    set_gauge,
    snapshot_metrics,
)
from .remote import TelemetryBundle, capture_enabled, merge_bundles
from .report import build_report, record_stage, render_report, reset_report, write_report
from .spans import Span, Tracer, current_span, get_tracer, span, tracing
from .telemetry import FlightRecorder, RingBuffer, record_delta, record_power, record_view

__all__ = [
    # spans
    "Span",
    "Tracer",
    "span",
    "tracing",
    "current_span",
    "get_tracer",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "count",
    "counter_value",
    "global_registry",
    "observe",
    "set_gauge",
    "snapshot_metrics",
    "reset_metrics",
    # events
    "Event",
    "EventLog",
    "emit",
    "get_event_log",
    "events",
    # telemetry
    "FlightRecorder",
    "RingBuffer",
    "record_delta",
    "record_power",
    "record_view",
    "telemetry",
    # export
    "export",
    # remote (cross-process capture)
    "TelemetryBundle",
    "capture_enabled",
    "merge_bundles",
    "remote",
    # run report
    "build_report",
    "record_stage",
    "render_report",
    "report",
    "reset_report",
    "write_report",
    # bench
    "bench_path",
    "stage_timings",
    "update_bench",
]
