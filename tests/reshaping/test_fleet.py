"""Unit tests for fleet description derivation."""

import pytest

from repro.reshaping import (
    aggregate_trace,
    derive_demand,
    describe_fleet,
    estimate_server_model,
    split_by_kind,
)
from repro.traces import ServiceKind


class TestSplit:
    def test_partitions_by_kind(self, tiny_records):
        lc, batch, other = split_by_kind(tiny_records)
        assert all(r.kind == ServiceKind.LATENCY_CRITICAL for r in lc)
        assert all(r.kind == ServiceKind.BATCH for r in batch)
        assert len(lc) + len(batch) + len(other) == len(tiny_records)

    def test_web_and_cache_are_lc(self, tiny_records):
        lc, _, _ = split_by_kind(tiny_records)
        assert {r.service for r in lc} == {"web", "cache"}


class TestModelEstimation:
    def test_peak_stat(self, tiny_records):
        lc, _, _ = split_by_kind(tiny_records)
        model = estimate_server_model(lc)
        assert model.idle_watts < model.peak_watts
        assert model.idle_watts > 0

    def test_mean_stat_lower_than_peak_stat(self, tiny_records):
        _, batch, _ = split_by_kind(tiny_records)
        by_peak = estimate_server_model(batch, full_load_stat="peak")
        by_mean = estimate_server_model(batch, full_load_stat="mean")
        assert by_mean.peak_watts <= by_peak.peak_watts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_server_model([])

    def test_unknown_stat_rejected(self, tiny_records):
        with pytest.raises(ValueError):
            estimate_server_model(tiny_records, full_load_stat="median")

    def test_training_vs_test_source(self, tiny_records):
        a = estimate_server_model(tiny_records, use_test=True)
        b = estimate_server_model(tiny_records, use_test=False)
        assert a.peak_watts != b.peak_watts  # different weeks differ


class TestAggregateAndDescribe:
    def test_aggregate_none_for_empty(self):
        assert aggregate_trace([]) is None

    def test_aggregate_sums(self, tiny_records):
        total = aggregate_trace(tiny_records)
        assert total.peak() > max(r.test_trace.peak() for r in tiny_records)

    def test_describe_fleet(self, tiny_records):
        fleet = describe_fleet(tiny_records, budget_watts=100_000.0)
        lc, batch, other = split_by_kind(tiny_records)
        assert fleet.n_lc == len(lc)
        assert fleet.n_batch == len(batch)
        assert fleet.other_power is not None  # db instances are storage
        assert fleet.budget_watts == 100_000.0

    def test_describe_requires_lc(self, synthesizer):
        from repro.traces import hadoop_profile

        records = synthesizer.service_instances(hadoop_profile(), 4)
        with pytest.raises(ValueError):
            describe_fleet(records, budget_watts=1000.0)


class TestDemandDerivation:
    def test_calibrated_peak_load(self, tiny_records):
        demand = derive_demand(tiny_records, peak_load=0.8)
        lc, _, _ = split_by_kind(tiny_records)
        assert demand.per_server_load(len(lc)).max() == pytest.approx(0.8)

    def test_training_and_test_differ(self, tiny_records):
        train = derive_demand(tiny_records, use_test=False)
        test = derive_demand(tiny_records, use_test=True)
        assert not (train.values == test.values).all()

    def test_requires_lc(self, synthesizer):
        from repro.traces import hadoop_profile

        records = synthesizer.service_instances(hadoop_profile(), 4)
        with pytest.raises(ValueError):
            derive_demand(records)
