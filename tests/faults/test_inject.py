"""Unit tests for the telemetry fault injectors."""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    GridMisalignment,
    NegativeGlitch,
    PowerSpike,
    RawTelemetry,
    SensorDropout,
    StuckSensor,
    dirty_copy,
)
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 10, 288)


@pytest.fixture
def traces():
    rng = np.random.default_rng(0)
    t = np.arange(GRID.n_samples)
    matrix = 100.0 + 30.0 * np.sin(2 * np.pi * t / 144) + rng.normal(0, 2, (8, GRID.n_samples))
    return TraceSet(GRID, [f"s{i}" for i in range(8)], np.maximum(matrix, 1.0))


class TestRawTelemetry:
    def test_from_traceset_roundtrip(self, traces):
        raw = RawTelemetry.from_traceset(traces)
        assert raw.ids == list(traces.ids)
        assert np.array_equal(raw.matrix, traces.matrix)
        assert raw.missing_fraction() == 0.0

    def test_copy_is_independent(self, traces):
        raw = RawTelemetry.from_traceset(traces)
        copy = raw.copy()
        copy.matrix[0, 0] = np.nan
        assert np.isfinite(raw.matrix[0, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RawTelemetry(GRID, ["a"], np.zeros((2, GRID.n_samples)))

    def test_accepts_garbage_values(self):
        matrix = np.full((1, GRID.n_samples), np.nan)
        raw = RawTelemetry(GRID, ["a"], matrix)
        assert raw.missing_fraction() == 1.0


class TestInjectors:
    def test_dropout_creates_nan_gaps(self, traces):
        rng = np.random.default_rng(1)
        raw = SensorDropout(fraction_of_traces=0.5, gap_samples=12).apply(
            RawTelemetry.from_traceset(traces), rng
        )
        assert raw.missing_fraction() > 0
        # Gaps are contiguous runs of the configured length.
        for row in range(len(raw.ids)):
            holes = np.flatnonzero(~np.isfinite(raw.matrix[row]))
            if holes.size:
                assert holes.size >= 12

    def test_stuck_creates_constant_run(self, traces):
        rng = np.random.default_rng(2)
        raw = StuckSensor(fraction_of_traces=1.0, stuck_samples=24).apply(
            RawTelemetry.from_traceset(traces), rng
        )
        stuck_rows = 0
        for row in range(len(raw.ids)):
            diffs = np.diff(raw.matrix[row])
            runs = np.flatnonzero(diffs == 0.0)
            if runs.size >= 23:
                stuck_rows += 1
        assert stuck_rows == len(raw.ids)

    def test_spike_far_above_ceiling(self, traces):
        rng = np.random.default_rng(3)
        raw = PowerSpike(fraction_of_traces=1.0, spikes_per_trace=1, magnitude=8.0).apply(
            RawTelemetry.from_traceset(traces), rng
        )
        for row in range(len(raw.ids)):
            assert raw.matrix[row].max() > traces.matrix[row].max() * 4

    def test_negative_glitch(self, traces):
        rng = np.random.default_rng(4)
        raw = NegativeGlitch(fraction_of_traces=1.0).apply(
            RawTelemetry.from_traceset(traces), rng
        )
        assert (raw.matrix < 0).any()

    def test_misalignment_shifts_grid(self, traces):
        rng = np.random.default_rng(5)
        raw = GridMisalignment(offset_minutes=3).apply(
            RawTelemetry.from_traceset(traces), rng
        )
        assert raw.grid.start_minute == GRID.start_minute + 3
        assert np.array_equal(raw.matrix, traces.matrix)

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            GridMisalignment(offset_minutes=0)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            SensorDropout(fraction_of_traces=0.0)
        with pytest.raises(ValueError):
            PowerSpike(magnitude=0.5)
        with pytest.raises(ValueError):
            StuckSensor(stuck_samples=1)


class TestFaultPlan:
    def test_deterministic(self, traces):
        plan = FaultPlan(
            faults=(
                SensorDropout(fraction_of_traces=0.5),
                PowerSpike(fraction_of_traces=0.5),
            ),
            seed=7,
        )
        first = dirty_copy(traces, plan)
        second = dirty_copy(traces, plan)
        assert np.array_equal(first.matrix, second.matrix, equal_nan=True)

    def test_different_seeds_differ(self, traces):
        a = dirty_copy(traces, FaultPlan((SensorDropout(),), seed=1))
        b = dirty_copy(traces, FaultPlan((SensorDropout(),), seed=2))
        assert not np.array_equal(a.matrix, b.matrix, equal_nan=True)

    def test_source_untouched(self, traces):
        before = traces.matrix.copy()
        dirty_copy(traces, FaultPlan((SensorDropout(), NegativeGlitch()), seed=3))
        assert np.array_equal(traces.matrix, before)

    def test_empty_plan_is_identity(self, traces):
        raw = dirty_copy(traces, FaultPlan())
        assert np.array_equal(raw.matrix, traces.matrix)
        assert len(FaultPlan()) == 0
