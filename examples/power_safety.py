"""Power safety under bursty traffic (Sec. 3.2's claim, demonstrated).

Injects a daily latency-critical traffic surge — the "bursty traffic due to
power failure of neighboring datacenters" the paper worries about — into
the held-out week, and runs a Dynamo-style hierarchical power-capping loop
under both the legacy and the workload-aware placements.

The legacy placement concentrates the surge in the sub-trees that hold the
user-facing services, so *those* nodes blow their budgets and the capping
system must throttle latency-critical servers (QoS damage).  The
workload-aware placement shares the surge across all nodes, where capping
can shed batch power instead.

Run:  python examples/power_safety.py [surge_factor]
"""

import sys

from repro.analysis import experiments as E
from repro.analysis import format_table
from repro.infra import compare_capping


def main(surge_factor: float = 1.25) -> None:
    study = E.run_power_safety(
        "DC3",
        surge_factor=surge_factor,
        n_instances=480,
        step_minutes=10,
    )

    rows = []
    for label in ("oblivious", "smoothoperator"):
        report = study.reports[label]
        rows.append(
            [
                label,
                report.total_event_steps,
                f"{report.lc_energy_shed / 1e3:.1f}",
                f"{report.batch_energy_shed / 1e3:.1f}",
                len(report.capped_nodes()),
                report.residual_overload_steps,
            ]
        )
    print(
        format_table(
            [
                "placement",
                "capping events",
                "LC shed (kW-min)",
                "batch shed (kW-min)",
                "nodes capped",
                "residual overloads",
            ],
            rows,
            title=f"Capping under a {surge_factor:.2f}x LC surge (DC3, test week)",
        )
    )

    ranked = compare_capping(study.reports)
    best = ranked[0][0]
    lc_ratio = (
        study.lc_shed("oblivious") / study.lc_shed("smoothoperator")
        if study.lc_shed("smoothoperator") > 0
        else float("inf")
    )
    print(
        f"\nLeast QoS damage: {best}. The workload-aware placement sheds "
        f"{lc_ratio:.1f}x less latency-critical energy — the surge lands on "
        "nodes that also hold throttleable batch work."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.25)
