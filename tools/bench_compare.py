#!/usr/bin/env python
"""Diff fresh ``BENCH_*.json`` runs against committed baselines.

The repo commits three benchmark documents at its root —
``BENCH_pipeline.json`` (per-stage wall/CPU timings from
``benchmarks/bench_profile.py``), ``BENCH_remap.json`` (the remapping
loop's swap counters and peak-reduction results), and ``BENCH_engine.json``
(serial vs process-pool chaos-suite walls from
``benchmarks/bench_engine.py``).  This tool loads a fresh set of those
documents and compares them stage by stage against the committed set:

* a pipeline stage regresses when its fresh wall time exceeds
  ``baseline * tolerance + floor`` (the multiplicative tolerance absorbs
  machine-to-machine speed differences, the additive floor absorbs timer
  jitter on sub-50ms stages);
* a stage present in the baseline but absent from the fresh run is a
  regression (the profile lost coverage);
* a remap ``peak_reduction`` level regresses when the fresh reduction falls
  more than an absolute tolerance below the committed one — the benchmark
  guards *quality*, not just speed;
* on multi-CPU runners (fresh ``cpu_count >= 2``) the chaos-suite process
  pool must beat serial execution by ``--min-speedup``; single-CPU hosts
  skip that check, and a missing ``BENCH_engine.json`` baseline is
  tolerated so old baselines keep comparing;
* the robust-placement document (``BENCH_robust.json`` from
  ``benchmarks/bench_robust.py``) carries a quality gate of its own: the
  Γ-robust placement must avoid at least 80% of spike-induced violations
  while provisioning at most 15% extra capacity.  A fresh document with a
  missing committed baseline is a *new* benchmark — recorded, never a
  failure — but the fresh gate thresholds still apply;
* the fleet-scale document (``BENCH_scale.json`` from
  ``benchmarks/bench_scale.py``) gates parallel scaling *efficiency*
  (``speedup / workers >= --min-efficiency``) on multi-CPU runners; a
  single-CPU host skips the gate, and a missing committed baseline is a
  new benchmark, never a failure;
* the same document's ``capture`` section gates worker-telemetry capture
  overhead: the parallel pass with capture on may cost at most
  ``--max-capture-overhead`` (default 5%) over the identical pass with
  ``REPRO_OBS_CAPTURE=0``, plus the additive floor so timer jitter on
  sub-second passes cannot trip it.  Single-CPU hosts skip the gate, and
  a fresh document without the section (an older generator) is tolerated;
* its ``recovery`` section gates the failure-domain layer the same way:
  the parallel pass under an armed (never firing) deadline may cost at
  most ``--max-recovery-overhead`` (default 3%) over the identical
  unguarded pass, plus the floor.  Same skip rules as ``capture``;
* the incremental-state document (``BENCH_incremental.json`` from
  ``benchmarks/bench_incremental.py``) gates the delta layer's headline
  claim: applying a placement delta through the incremental indices must
  beat a full view-rebuild-and-rescore by ``--min-incremental-speedup``
  (default 5x) at the 100k-instance point.  The speedup is host-relative
  (both walls from the same process), so the gate judges the fresh run
  alone; a document whose gate records ``skipped`` (the fixture did not
  fit in memory) is tolerated, and a missing committed baseline is a new
  benchmark, never a failure.

Exit status is non-zero when any regression is found, so CI can gate on
it.  ``--output`` writes the full diff document as JSON for artifact
upload.

Usage::

    python tools/bench_compare.py \
        --baseline-dir . --current-dir /tmp/fresh \
        --tolerance 3.0 --output bench_diff.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence

#: Fresh wall time may be up to this multiple of the committed baseline.
DEFAULT_WALL_TOLERANCE = 3.0

#: Additive slack (seconds) so timer jitter on very fast stages cannot trip
#: the multiplicative gate (mirrors the overhead guard in bench_profile).
DEFAULT_FLOOR_S = 0.05

#: Absolute drop in a remap peak-reduction fraction that counts as a
#: regression (2 percentage points).
DEFAULT_PEAK_TOLERANCE = 0.02

#: Minimum serial/parallel chaos-suite speedup on multi-CPU runners.  The
#: gate only applies when the fresh document reports ``cpu_count >= 2`` —
#: a process pool cannot beat serial execution on a single CPU.
DEFAULT_MIN_SPEEDUP = 1.3

#: Absolute drop in the robust suite's avoided-violation fraction that
#: counts as a regression against a committed baseline.
DEFAULT_AVOIDED_TOLERANCE = 0.05

#: Minimum parallel scaling efficiency (speedup / workers) on multi-CPU
#: runners for the fleet-scale scoring benchmark.
DEFAULT_MIN_EFFICIENCY = 0.7

#: Maximum fractional overhead of worker-telemetry capture over the same
#: parallel pass with ``REPRO_OBS_CAPTURE=0`` (the ``capture`` section of
#: ``BENCH_scale.json``).
DEFAULT_MAX_CAPTURE_OVERHEAD = 0.05

#: Maximum fractional overhead of the failure-domain layer (armed but
#: never-firing deadlines: watchdog polling + straggler bookkeeping) over
#: the identical unguarded parallel pass (the ``recovery`` section of
#: ``BENCH_scale.json``).
DEFAULT_MAX_RECOVERY_OVERHEAD = 0.03

#: Minimum incremental-vs-full-recompute speedup per placement delta at
#: the 100k-instance point (the ``gate`` section of
#: ``BENCH_incremental.json``).
DEFAULT_MIN_INCREMENTAL_SPEEDUP = 5.0

BENCH_FILES = (
    "BENCH_pipeline.json",
    "BENCH_remap.json",
    "BENCH_engine.json",
    "BENCH_robust.json",
    "BENCH_scale.json",
    "BENCH_incremental.json",
)


def load_document(path: pathlib.Path) -> Dict:
    """Load and shape-check one BENCH document."""
    with open(path) as handle:
        document = json.load(handle)
    for key in ("benchmark", "sections"):
        if key not in document:
            raise ValueError(f"{path}: missing required key {key!r}")
    return document


def _stages_by_name(document: Dict) -> Dict[str, Dict]:
    return {row["stage"]: row for row in document["sections"].get("stages", [])}


def compare_pipeline(
    baseline: Dict,
    current: Dict,
    *,
    tolerance: float = DEFAULT_WALL_TOLERANCE,
    floor_s: float = DEFAULT_FLOOR_S,
) -> List[Dict]:
    """Per-stage wall-time comparison rows, one per baseline/fresh stage."""
    base_stages = _stages_by_name(baseline)
    cur_stages = _stages_by_name(current)
    rows: List[Dict] = []
    for name, base in base_stages.items():
        row: Dict = {"stage": name, "baseline_wall_s": base["wall_s"]}
        cur = cur_stages.get(name)
        if cur is None:
            # Lost coverage is as bad as lost speed: the stage either
            # disappeared from the pipeline or stopped being traced.
            row.update(current_wall_s=None, status="missing")
        else:
            limit = base["wall_s"] * tolerance + floor_s
            row.update(
                current_wall_s=cur["wall_s"],
                ratio=cur["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else None,
                limit_s=limit,
                status="regression" if cur["wall_s"] > limit else "ok",
            )
        rows.append(row)
    for name, cur in cur_stages.items():
        if name not in base_stages:
            rows.append(
                {
                    "stage": name,
                    "baseline_wall_s": None,
                    "current_wall_s": cur["wall_s"],
                    "status": "new",
                }
            )
    return rows


def compare_remap(
    baseline: Dict,
    current: Dict,
    *,
    peak_tolerance: float = DEFAULT_PEAK_TOLERANCE,
) -> List[Dict]:
    """Per-level peak-reduction comparison rows (quality, not speed)."""
    base = baseline["sections"].get("remap", {})
    cur = current["sections"].get("remap", {})
    rows: List[Dict] = []
    for level, base_value in base.get("peak_reduction", {}).items():
        row: Dict = {"level": level, "baseline_reduction": base_value}
        cur_value = cur.get("peak_reduction", {}).get(level)
        if cur_value is None:
            row.update(current_reduction=None, status="missing")
        else:
            row.update(
                current_reduction=cur_value,
                status=(
                    "regression"
                    if cur_value < base_value - peak_tolerance
                    else "ok"
                ),
            )
        rows.append(row)
    return rows


def compare_engine_parallel(
    current: Dict,
    *,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> Dict:
    """The parallel-speedup gate row for a fresh ``BENCH_engine.json``.

    Judged on the fresh run alone (a speedup is host-relative, so there is
    nothing meaningful to diff against the baseline): on a multi-CPU host
    the process pool must beat serial execution by ``min_speedup``; on a
    single CPU the row reports ``skipped``.
    """
    parallel = current["sections"].get("parallel")
    if not parallel:
        return {"check": "engine_speedup", "status": "missing"}
    row = {
        "check": "engine_speedup",
        "workers": parallel.get("workers"),
        "cpu_count": parallel.get("cpu_count"),
        "speedup": parallel.get("speedup"),
        "min_speedup": min_speedup,
    }
    if (parallel.get("cpu_count") or 1) < 2:
        row["status"] = "skipped"
    elif parallel.get("speedup") is None:
        row["status"] = "missing"
    else:
        row["status"] = "ok" if parallel["speedup"] >= min_speedup else "regression"
    return row


def compare_robust(
    baseline: Optional[Dict],
    current: Dict,
    *,
    avoided_tolerance: float = DEFAULT_AVOIDED_TOLERANCE,
) -> Dict:
    """The robust-placement quality row for a fresh ``BENCH_robust.json``.

    The fresh document's own gate thresholds always apply (they guard the
    robustness *claim*, not a machine-relative timing).  With a committed
    baseline, the avoided fraction additionally must not drop more than
    ``avoided_tolerance`` below it; without one this is a brand-new
    benchmark — record the numbers, report ``new``, never fail.
    """
    gate = current["sections"].get("gate")
    if not gate:
        return {"check": "robust_gate", "status": "missing"}
    row: Dict = {
        "check": "robust_gate",
        "avoided_fraction": gate.get("avoided_fraction"),
        "min_avoided_fraction": gate.get("min_avoided_fraction"),
        "max_capacity_overhead": gate.get("max_capacity_overhead"),
        "capacity_overhead_limit": gate.get("capacity_overhead_limit"),
    }
    if not gate.get("passed"):
        row["status"] = "regression"
        return row
    if baseline is None:
        row["status"] = "new"
        return row
    base_avoided = baseline["sections"].get("gate", {}).get("avoided_fraction")
    row["baseline_avoided_fraction"] = base_avoided
    if (
        base_avoided is not None
        and gate.get("avoided_fraction") is not None
        and gate["avoided_fraction"] < base_avoided - avoided_tolerance
    ):
        row["status"] = "regression"
    else:
        row["status"] = "ok"
    return row


def compare_scale(
    baseline: Optional[Dict],
    current: Dict,
    *,
    min_efficiency: float = DEFAULT_MIN_EFFICIENCY,
) -> Dict:
    """The scaling-efficiency row for a fresh ``BENCH_scale.json``.

    Efficiency is host-relative, so the gate judges the fresh run alone:
    on a multi-CPU host ``speedup / workers`` must clear
    ``min_efficiency``; a single-CPU host reports ``skipped``.  A missing
    committed baseline marks the benchmark ``new`` (when the gate itself
    passes) — recorded, never a failure.
    """
    scaling = current["sections"].get("scaling")
    if not scaling:
        return {"check": "scale_efficiency", "status": "missing"}
    row: Dict = {
        "check": "scale_efficiency",
        "workers": scaling.get("workers"),
        "cpu_count": scaling.get("cpu_count"),
        "speedup": scaling.get("speedup"),
        "efficiency": scaling.get("efficiency"),
        "min_efficiency": min_efficiency,
    }
    if (scaling.get("cpu_count") or 1) < 2:
        row["status"] = "skipped"
    elif scaling.get("efficiency") is None:
        row["status"] = "missing"
    elif scaling["efficiency"] < min_efficiency:
        row["status"] = "regression"
    else:
        row["status"] = "new" if baseline is None else "ok"
    return row


def compare_capture(
    current: Dict,
    *,
    max_overhead: float = DEFAULT_MAX_CAPTURE_OVERHEAD,
    floor_s: float = DEFAULT_FLOOR_S,
) -> Optional[Dict]:
    """The telemetry-capture overhead row for a fresh ``BENCH_scale.json``.

    Judged on the fresh run alone (both walls come from the same host in
    the same process): with capture enabled the parallel pass may cost at
    most ``no_capture_wall * (1 + max_overhead) + floor_s``.  Single-CPU
    hosts skip the gate, and a document without the section (generated
    before the capture layer existed) reports ``None`` — tolerated so old
    baselines keep comparing.
    """
    capture = current["sections"].get("capture")
    if not capture:
        return None
    row: Dict = {
        "check": "capture_overhead",
        "workers": capture.get("workers"),
        "cpu_count": capture.get("cpu_count"),
        "capture_wall_s": capture.get("capture_wall_s"),
        "no_capture_wall_s": capture.get("no_capture_wall_s"),
        "overhead_frac": capture.get("overhead_frac"),
        "max_overhead_frac": max_overhead,
    }
    bare = capture.get("no_capture_wall_s")
    captured = capture.get("capture_wall_s")
    if (capture.get("cpu_count") or 1) < 2:
        row["status"] = "skipped"
    elif bare is None or captured is None:
        row["status"] = "missing"
    else:
        limit = bare * (1.0 + max_overhead) + floor_s
        row["limit_s"] = limit
        row["status"] = "ok" if captured <= limit else "regression"
    return row


def compare_recovery(
    current: Dict,
    *,
    max_overhead: float = DEFAULT_MAX_RECOVERY_OVERHEAD,
    floor_s: float = DEFAULT_FLOOR_S,
) -> Optional[Dict]:
    """The failure-domain overhead row for a fresh ``BENCH_scale.json``.

    Judged on the fresh run alone, like :func:`compare_capture`: the
    parallel pass under an armed (never firing) deadline may cost at most
    ``bare_wall * (1 + max_overhead) + floor_s`` over the identical
    unguarded pass.  Single-CPU hosts skip the gate, and a document
    without the section (generated before the deadline layer existed)
    reports ``None`` — tolerated so old baselines keep comparing.
    """
    recovery = current["sections"].get("recovery")
    if not recovery:
        return None
    row: Dict = {
        "check": "recovery_overhead",
        "workers": recovery.get("workers"),
        "cpu_count": recovery.get("cpu_count"),
        "guarded_wall_s": recovery.get("guarded_wall_s"),
        "bare_wall_s": recovery.get("bare_wall_s"),
        "overhead_frac": recovery.get("overhead_frac"),
        "max_overhead_frac": max_overhead,
    }
    bare = recovery.get("bare_wall_s")
    guarded = recovery.get("guarded_wall_s")
    if (recovery.get("cpu_count") or 1) < 2:
        row["status"] = "skipped"
    elif bare is None or guarded is None:
        row["status"] = "missing"
    else:
        limit = bare * (1.0 + max_overhead) + floor_s
        row["limit_s"] = limit
        row["status"] = "ok" if guarded <= limit else "regression"
    return row


def compare_incremental(
    baseline: Optional[Dict],
    current: Dict,
    *,
    min_speedup: float = DEFAULT_MIN_INCREMENTAL_SPEEDUP,
) -> Dict:
    """The incremental-speedup row for a fresh ``BENCH_incremental.json``.

    The speedup is host-relative (incremental and full-recompute walls
    come from the same process), so the gate judges the fresh run alone:
    the delta path must beat a full rebuild by ``min_speedup``.  A gate
    that records ``skipped: true`` (the 100k-instance fixture did not fit
    in the runner's memory) is tolerated, and a missing committed
    baseline marks the benchmark ``new`` — recorded, never a failure.
    """
    gate = current["sections"].get("gate")
    if not gate:
        return {"check": "incremental_speedup", "status": "missing"}
    row: Dict = {
        "check": "incremental_speedup",
        "speedup": gate.get("speedup"),
        "min_speedup": min_speedup,
        "n_instances": current["sections"].get("workload", {}).get("n_instances"),
    }
    if gate.get("skipped"):
        row["status"] = "skipped"
        row["reason"] = gate.get("reason")
    elif gate.get("speedup") is None:
        row["status"] = "missing"
    elif gate["speedup"] < min_speedup:
        row["status"] = "regression"
    else:
        row["status"] = "new" if baseline is None else "ok"
    return row


def compare_documents(
    baseline_dir: pathlib.Path,
    current_dir: pathlib.Path,
    *,
    tolerance: float = DEFAULT_WALL_TOLERANCE,
    floor_s: float = DEFAULT_FLOOR_S,
    peak_tolerance: float = DEFAULT_PEAK_TOLERANCE,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    min_efficiency: float = DEFAULT_MIN_EFFICIENCY,
    max_capture_overhead: float = DEFAULT_MAX_CAPTURE_OVERHEAD,
    max_recovery_overhead: float = DEFAULT_MAX_RECOVERY_OVERHEAD,
    min_incremental_speedup: float = DEFAULT_MIN_INCREMENTAL_SPEEDUP,
) -> Dict:
    """The full diff document: stage rows, remap rows, regression list."""
    pipeline_rows = compare_pipeline(
        load_document(baseline_dir / "BENCH_pipeline.json"),
        load_document(current_dir / "BENCH_pipeline.json"),
        tolerance=tolerance,
        floor_s=floor_s,
    )
    remap_rows = compare_remap(
        load_document(baseline_dir / "BENCH_remap.json"),
        load_document(current_dir / "BENCH_remap.json"),
        peak_tolerance=peak_tolerance,
    )
    # The engine document is newer than the others; tolerate its absence
    # (old baselines, partial regeneration) instead of failing the load.
    engine_base_path = baseline_dir / "BENCH_engine.json"
    engine_cur_path = current_dir / "BENCH_engine.json"
    engine_rows: List[Dict] = []
    engine_parallel: Optional[Dict] = None
    if engine_cur_path.exists():
        engine_cur = load_document(engine_cur_path)
        if engine_base_path.exists():
            engine_rows = compare_pipeline(
                load_document(engine_base_path),
                engine_cur,
                tolerance=tolerance,
                floor_s=floor_s,
            )
        engine_parallel = compare_engine_parallel(
            engine_cur, min_speedup=min_speedup
        )
    elif engine_base_path.exists():
        # The stage walls vanished from the fresh run: lost coverage.
        engine_rows = compare_pipeline(
            load_document(engine_base_path),
            {"benchmark": "engine", "sections": {}},
            tolerance=tolerance,
            floor_s=floor_s,
        )
    # Robust-placement quality gate.  A fresh document without a committed
    # baseline is a new benchmark (record, don't fail); a committed
    # baseline without a fresh document is lost coverage.
    robust_base_path = baseline_dir / "BENCH_robust.json"
    robust_cur_path = current_dir / "BENCH_robust.json"
    robust_gate: Optional[Dict] = None
    if robust_cur_path.exists():
        robust_gate = compare_robust(
            load_document(robust_base_path) if robust_base_path.exists() else None,
            load_document(robust_cur_path),
        )
    elif robust_base_path.exists():
        robust_gate = {"check": "robust_gate", "status": "missing"}
    # Fleet-scale scaling gate.  Same convention: fresh without baseline
    # is new, baseline without fresh is lost coverage.
    scale_base_path = baseline_dir / "BENCH_scale.json"
    scale_cur_path = current_dir / "BENCH_scale.json"
    scale_rows: List[Dict] = []
    scale_gate: Optional[Dict] = None
    capture_gate: Optional[Dict] = None
    recovery_gate: Optional[Dict] = None
    if scale_cur_path.exists():
        scale_cur = load_document(scale_cur_path)
        scale_base = (
            load_document(scale_base_path) if scale_base_path.exists() else None
        )
        if scale_base is not None:
            scale_rows = compare_pipeline(
                scale_base, scale_cur, tolerance=tolerance, floor_s=floor_s
            )
        scale_gate = compare_scale(
            scale_base, scale_cur, min_efficiency=min_efficiency
        )
        capture_gate = compare_capture(
            scale_cur, max_overhead=max_capture_overhead, floor_s=floor_s
        )
        recovery_gate = compare_recovery(
            scale_cur, max_overhead=max_recovery_overhead, floor_s=floor_s
        )
    elif scale_base_path.exists():
        scale_gate = {"check": "scale_efficiency", "status": "missing"}
    # Incremental-state speedup gate.  Fresh without baseline is new,
    # baseline without fresh is lost coverage.
    incr_base_path = baseline_dir / "BENCH_incremental.json"
    incr_cur_path = current_dir / "BENCH_incremental.json"
    incremental_gate: Optional[Dict] = None
    if incr_cur_path.exists():
        incremental_gate = compare_incremental(
            load_document(incr_base_path) if incr_base_path.exists() else None,
            load_document(incr_cur_path),
            min_speedup=min_incremental_speedup,
        )
    elif incr_base_path.exists():
        incremental_gate = {"check": "incremental_speedup", "status": "missing"}
    bad_status = ("regression", "missing")
    regressions = [
        f"pipeline stage {row['stage']!r}: {row['status']}"
        for row in pipeline_rows
        if row["status"] in bad_status
    ] + [
        f"remap peak_reduction[{row['level']}]: {row['status']}"
        for row in remap_rows
        if row["status"] in bad_status
    ] + [
        f"engine stage {row['stage']!r}: {row['status']}"
        for row in engine_rows
        if row["status"] in bad_status
    ] + [
        f"scale stage {row['stage']!r}: {row['status']}"
        for row in scale_rows
        if row["status"] in bad_status
    ]
    if engine_parallel is not None and engine_parallel["status"] in bad_status:
        regressions.append(f"engine speedup: {engine_parallel['status']}")
    if robust_gate is not None and robust_gate["status"] in bad_status:
        regressions.append(f"robust gate: {robust_gate['status']}")
    if scale_gate is not None and scale_gate["status"] in bad_status:
        regressions.append(f"scale efficiency: {scale_gate['status']}")
    if capture_gate is not None and capture_gate["status"] in bad_status:
        regressions.append(f"capture overhead: {capture_gate['status']}")
    if recovery_gate is not None and recovery_gate["status"] in bad_status:
        regressions.append(f"recovery overhead: {recovery_gate['status']}")
    if incremental_gate is not None and incremental_gate["status"] in bad_status:
        regressions.append(f"incremental speedup: {incremental_gate['status']}")
    return {
        "baseline_dir": str(baseline_dir),
        "current_dir": str(current_dir),
        "tolerance": tolerance,
        "floor_s": floor_s,
        "peak_tolerance": peak_tolerance,
        "min_speedup": min_speedup,
        "min_efficiency": min_efficiency,
        "max_capture_overhead": max_capture_overhead,
        "max_recovery_overhead": max_recovery_overhead,
        "min_incremental_speedup": min_incremental_speedup,
        "pipeline": pipeline_rows,
        "remap": remap_rows,
        "engine": engine_rows,
        "engine_parallel": engine_parallel,
        "robust": robust_gate,
        "scale": scale_rows,
        "scale_gate": scale_gate,
        "capture_gate": capture_gate,
        "recovery_gate": recovery_gate,
        "incremental_gate": incremental_gate,
        "regressions": regressions,
    }


def render(diff: Dict) -> str:
    """Human-readable summary of one diff document."""
    lines = [
        f"{'stage':<22} {'baseline':>10} {'current':>10} {'ratio':>7}  status"
    ]
    def fmt(value, spec, suffix=""):
        return "-" if value is None else format(value, spec) + suffix

    for row in diff["pipeline"] + diff.get("engine", []) + diff.get("scale", []):
        lines.append(
            f"{row['stage']:<22} "
            f"{fmt(row.get('baseline_wall_s'), '9.3f', 's'):>10} "
            f"{fmt(row.get('current_wall_s'), '9.3f', 's'):>10} "
            f"{fmt(row.get('ratio'), '6.2f', 'x'):>7}  "
            f"{row['status']}"
        )
    lines.append("")
    parallel = diff.get("engine_parallel")
    if parallel is not None:
        lines.append(
            f"engine speedup: {fmt(parallel.get('speedup'), '.2f', 'x')} "
            f"(workers={parallel.get('workers')}, "
            f"cpus={parallel.get('cpu_count')}, "
            f"min={fmt(parallel.get('min_speedup'), '.2f', 'x')}) "
            f"{parallel['status']}"
        )
    scale_gate = diff.get("scale_gate")
    if scale_gate is not None:
        lines.append(
            f"scale efficiency: {fmt(scale_gate.get('efficiency'), '.2f')} "
            f"(speedup={fmt(scale_gate.get('speedup'), '.2f', 'x')}, "
            f"workers={scale_gate.get('workers')}, "
            f"cpus={scale_gate.get('cpu_count')}, "
            f"min={fmt(scale_gate.get('min_efficiency'), '.2f')}) "
            f"{scale_gate['status']}"
        )
    capture_gate = diff.get("capture_gate")
    if capture_gate is not None:
        lines.append(
            f"capture overhead: {fmt(capture_gate.get('overhead_frac'), '+.1%')} "
            f"(capture={fmt(capture_gate.get('capture_wall_s'), '.3f', 's')}, "
            f"bare={fmt(capture_gate.get('no_capture_wall_s'), '.3f', 's')}, "
            f"max={fmt(capture_gate.get('max_overhead_frac'), '.0%')}) "
            f"{capture_gate['status']}"
        )
    recovery_gate = diff.get("recovery_gate")
    if recovery_gate is not None:
        lines.append(
            f"recovery overhead: "
            f"{fmt(recovery_gate.get('overhead_frac'), '+.1%')} "
            f"(guarded={fmt(recovery_gate.get('guarded_wall_s'), '.3f', 's')}, "
            f"bare={fmt(recovery_gate.get('bare_wall_s'), '.3f', 's')}, "
            f"max={fmt(recovery_gate.get('max_overhead_frac'), '.0%')}) "
            f"{recovery_gate['status']}"
        )
    incremental = diff.get("incremental_gate")
    if incremental is not None:
        lines.append(
            f"incremental speedup: {fmt(incremental.get('speedup'), '.1f', 'x')} "
            f"(instances={incremental.get('n_instances')}, "
            f"min={fmt(incremental.get('min_speedup'), '.0f', 'x')}) "
            f"{incremental['status']}"
        )
    robust = diff.get("robust")
    if robust is not None:
        lines.append(
            f"robust gate: avoided={fmt(robust.get('avoided_fraction'), '.3f')} "
            f"(min={fmt(robust.get('min_avoided_fraction'), '.2f')}), "
            f"capacity={fmt(robust.get('max_capacity_overhead'), '.4f')} "
            f"(limit={fmt(robust.get('capacity_overhead_limit'), '.2f')}) "
            f"{robust['status']}"
        )
    for row in diff["remap"]:
        lines.append(
            f"peak_reduction[{row['level']:<10}] "
            f"baseline={fmt(row['baseline_reduction'], '.4f')} "
            f"current={fmt(row['current_reduction'], '.4f')} "
            f"{row['status']}"
        )
    lines.append("")
    if diff["regressions"]:
        lines.append(f"REGRESSIONS ({len(diff['regressions'])}):")
        lines.extend(f"  - {item}" for item in diff["regressions"])
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json runs against committed baselines."
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=pathlib.Path("."),
        help="directory holding the committed BENCH_*.json pair",
    )
    parser.add_argument(
        "--current-dir",
        type=pathlib.Path,
        required=True,
        help="directory holding the freshly generated BENCH_*.json pair",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE,
        help="max current/baseline wall-time ratio per stage",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR_S,
        help="additive per-stage slack in seconds (timer jitter)",
    )
    parser.add_argument(
        "--peak-tolerance",
        type=float,
        default=DEFAULT_PEAK_TOLERANCE,
        help="max absolute drop in remap peak reduction per level",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="min chaos-suite parallel speedup on multi-CPU runners",
    )
    parser.add_argument(
        "--min-efficiency",
        type=float,
        default=DEFAULT_MIN_EFFICIENCY,
        help="min fleet-scale scaling efficiency on multi-CPU runners",
    )
    parser.add_argument(
        "--max-capture-overhead",
        type=float,
        default=DEFAULT_MAX_CAPTURE_OVERHEAD,
        help="max telemetry-capture overhead fraction on multi-CPU runners",
    )
    parser.add_argument(
        "--max-recovery-overhead",
        type=float,
        default=DEFAULT_MAX_RECOVERY_OVERHEAD,
        help="max failure-domain (deadline) overhead fraction on multi-CPU runners",
    )
    parser.add_argument(
        "--min-incremental-speedup",
        type=float,
        default=DEFAULT_MIN_INCREMENTAL_SPEEDUP,
        help="min incremental-vs-full-recompute speedup per placement delta",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="write the full diff document as JSON here",
    )
    args = parser.parse_args(argv)

    diff = compare_documents(
        args.baseline_dir,
        args.current_dir,
        tolerance=args.tolerance,
        floor_s=args.floor,
        peak_tolerance=args.peak_tolerance,
        min_speedup=args.min_speedup,
        min_efficiency=args.min_efficiency,
        max_capture_overhead=args.max_capture_overhead,
        max_recovery_overhead=args.max_recovery_overhead,
        min_incremental_speedup=args.min_incremental_speedup,
    )
    if args.output is not None:
        args.output.write_text(json.dumps(diff, indent=2, sort_keys=True) + "\n")
    print(render(diff))
    return 1 if diff["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
