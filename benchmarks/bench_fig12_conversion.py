"""Figure 12: server conversion's impact over the test week.

Paper: during Batch-heavy Phase the per-LC-server load is low, conversion
servers run batch (Batch throughput above pre-SmoothOperator); during
LC-heavy Phase they convert to LC, reducing per-LC-server load below what
the original fleet would suffer while serving more traffic.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, sparkline


def _run(full_scale):
    return E.run_figure12("DC1", **full_scale)


@pytest.mark.benchmark(group="figure12")
def test_fig12_conversion(benchmark, emit_report, full_scale):
    study = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)
    comparison = study.comparison
    pre = comparison.pre
    conv = comparison.scenarios["conversion"]

    lines = [
        "Figure 12 — server conversion time series (DC1, test week)",
        "=" * 60,
        f"L_conv = {study.conversion_threshold:.3f}   "
        f"e_conv = {study.extra_conversion}   e_th = {study.extra_throttle_funded}",
        "",
        "per-LC-server load:",
        f"  pre  {sparkline(pre.per_server_load)}",
        f"  conv {sparkline(conv.per_server_load)}",
        "",
        "batch throughput (normalised to pre mean):",
        f"  pre  {sparkline(pre.batch_throughput)}",
        f"  conv {sparkline(conv.batch_throughput)}",
        "",
        "LC served:",
        f"  pre  {sparkline(pre.lc_served)}",
        f"  conv {sparkline(conv.lc_served)}",
        "",
        f"LC improvement:    {format_percent(comparison.lc_improvement('conversion'))}",
        f"Batch improvement: {format_percent(comparison.batch_improvement('conversion'))}",
    ]
    emit_report("fig12_conversion", "\n".join(lines))

    # Shape 1: conversion servers flip with the phase.
    assert conv.n_lc_active.max() > conv.n_lc_active.min()
    # Shape 2: batch throughput exceeds pre during batch-heavy hours.
    offpeak = study.offpeak_mask
    assert conv.batch_throughput[offpeak].mean() > pre.batch_throughput[offpeak].mean()
    # Shape 3: LC serves more in total (it absorbed extra traffic).
    assert conv.lc_total() > pre.lc_total()
    # Shape 4: per-LC-server load stays under the learned threshold.
    assert conv.per_server_load.max() <= study.conversion_threshold + 1e-9
    # Shape 5: power-safe throughout.
    assert conv.overload_steps() == 0
