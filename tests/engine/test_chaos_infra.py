"""Deterministic infra fault injection: spec parsing plus the scenario suite.

The scenario suite is the acceptance test of the failure-domain layer:
for every fault kind the injector knows (`kill`, `hang`, `slow`,
`exception`, `oversized_bundle`, `shm_exhaust`), a pooled stage running
under a :class:`TaskDeadline` must

* complete in bounded wall time,
* return results bit-identical to a fault-free serial run,
* leak no ``/dev/shm`` segments, and
* emit the corresponding ``pool.*`` telemetry.

Faults are configured through ``REPRO_INFRA_FAULTS`` and armed only in
pool workers, so the in-process recovery paths (retry-to-inline,
quarantine, degradation) are fault-free by construction.

When ``REPRO_INFRA_EVENTS`` names a file, every scenario appends its
recorded event log there as JSON Lines — CI uploads that file as the
chaos-run artifact.
"""

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.engine import chaos_infra
from repro.engine.chaos_infra import (
    FAULTS_ENV,
    InfraFault,
    InjectedFault,
    parse_faults,
)
from repro.engine.deadline import TaskDeadline
from repro.engine.parallel import RunFailure, WorkerPool, run_many
from repro.engine.sharedmem import SharedMatrix, attach_rows, shard_ranges
from repro.obs import events as obs_events

#: Appended to by every scenario when ``REPRO_INFRA_EVENTS`` is set.
EVENTS_ENV = "REPRO_INFRA_EVENTS"


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    chaos_infra.deactivate()
    yield
    obs.reset_metrics()
    obs.reset_report()
    chaos_infra.deactivate()


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    if not os.path.isdir("/dev/shm"):
        yield
        return
    before = set(os.listdir("/dev/shm"))
    yield
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def publish(log):
    """Append a scenario's event log to the CI artifact file, if configured."""
    path = os.environ.get(EVENTS_ENV, "").strip()
    if not path:
        return
    text = log.to_jsonl()
    if text:
        with open(path, "a") as handle:
            handle.write(text + "\n")


# ----------------------------------------------------------------------
# module-level callables (must pickle into fork workers)
# ----------------------------------------------------------------------
def shard_sum(handle, start, stop):
    return float(attach_rows(handle, start, stop).sum())


class ReturnValue:
    """A zero-arg run_many spec returning ``value`` (picklable instance)."""

    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value


# ----------------------------------------------------------------------
# spec parsing and matching
# ----------------------------------------------------------------------
def test_parse_single_object_and_list():
    (fault,) = parse_faults('{"kind": "kill", "shards": [1], "times": 2}')
    assert fault == InfraFault(kind="kill", shards=(1,), times=2)
    faults = parse_faults(
        '[{"kind": "hang", "duration_s": 9.0}, {"kind": "exception"}]'
    )
    assert [fault.kind for fault in faults] == ["hang", "exception"]
    assert parse_faults("") == ()
    assert parse_faults("   ") == ()


@pytest.mark.parametrize(
    "text",
    [
        '"kill"',  # bare string, not an object
        '[{"kind": "nope"}]',  # unknown kind
        '{"kind": "kill", "times": 0}',
        '{"kind": "slow", "duration_s": -1}',
        '{"kind": "kill", "probability": 0}',
        "[42]",
    ],
)
def test_parse_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        parse_faults(text)


def test_configured_raises_on_typoed_spec(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, '{"kind": "oops"}')
    with pytest.raises(ValueError):
        chaos_infra.configured()
    monkeypatch.delenv(FAULTS_ENV)
    assert not chaos_infra.configured()


def test_matches_is_a_pure_function_of_shard_and_attempt():
    fault = InfraFault(kind="exception", shards=(1, 3), times=2)
    assert fault.matches(1, 1) and fault.matches(3, 2)
    assert not fault.matches(2, 1)  # wrong shard
    assert not fault.matches(1, 3)  # past the times window
    # repeated evaluation never changes the answer
    assert all(fault.matches(1, 1) for _ in range(10))


def test_probability_draw_is_deterministic():
    fault = InfraFault(kind="exception", probability=0.5, seed=42, times=1000)
    draws = [fault.matches(shard, 1) for shard in range(200)]
    assert draws == [
        InfraFault(kind="exception", probability=0.5, seed=42, times=1000).matches(
            shard, 1
        )
        for shard in range(200)
    ]
    fired = sum(draws)
    assert 0 < fired < 200  # the coin actually flips both ways


def test_activate_and_inject_are_process_local(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, '{"kind": "exception", "times": 1}')
    assert chaos_infra._ACTIVE == ()
    chaos_infra.inject(0, 1)  # unarmed: no-op
    chaos_infra.activate()
    with pytest.raises(InjectedFault):
        chaos_infra.inject(0, 1)
    chaos_infra.inject(0, 2)  # past the times window
    chaos_infra.deactivate()
    chaos_infra.inject(0, 1)  # disarmed again


# ----------------------------------------------------------------------
# the scenario suite
# ----------------------------------------------------------------------
def _matrix_and_tasks(shared, rows=64, shards=4):
    tasks = [(shared.handle, a, b) for a, b in shard_ranges(rows, shards)]
    return tasks


def test_scenario_kill_recovers_by_retry(monkeypatch):
    """A worker killed mid-task costs one attempt, never the results."""
    matrix = np.arange(64.0 * 8).reshape(64, 8)
    expected = [float(matrix[a:b].sum()) for a, b in shard_ranges(64, 4)]
    monkeypatch.setenv(FAULTS_ENV, '{"kind": "kill", "shards": [1], "times": 1}')
    deadline = TaskDeadline(hard_timeout_s=30.0, speculative=False)
    with obs_events.recording() as log:
        with WorkerPool(2) as pool, SharedMatrix.create(matrix) as shared:
            results = pool.map_shards(
                shard_sum,
                _matrix_and_tasks(shared),
                max_attempts=3,
                deadline=deadline,
            )
    assert results == expected
    assert obs.counter_value("pool.worker_deaths") >= 1.0
    assert obs.counter_value("pool.tasks_retried") >= 1.0
    publish(log)


def test_scenario_hang_bounded_by_hard_deadline(monkeypatch):
    """A hung worker is killed at the hard deadline; the retry recovers."""
    matrix = np.ones((32, 4))
    expected = [float(matrix[a:b].sum()) for a, b in shard_ranges(32, 2)]
    monkeypatch.setenv(
        FAULTS_ENV,
        '{"kind": "hang", "shards": [0], "times": 1, "duration_s": 60.0}',
    )
    deadline = TaskDeadline(hard_timeout_s=1.0, speculative=False)
    with obs_events.recording() as log:
        started = time.perf_counter()
        with WorkerPool(2) as pool, SharedMatrix.create(matrix) as shared:
            results = pool.map_shards(
                shard_sum,
                _matrix_and_tasks(shared, rows=32, shards=2),
                max_attempts=3,
                deadline=deadline,
            )
        elapsed = time.perf_counter() - started
    assert results == expected
    assert elapsed < 30.0  # nowhere near the 60s hang
    assert obs.counter_value("pool.task_timeouts") >= 1.0
    assert log.by_kind(obs_events.TASK_TIMEOUT)
    publish(log)


def test_scenario_slow_straggler_speculated_around(monkeypatch):
    """A slow worker is raced by a speculative twin; first result wins."""
    monkeypatch.setenv(
        FAULTS_ENV,
        '{"kind": "slow", "shards": [1], "times": 1, "duration_s": 8.0}',
    )
    deadline = TaskDeadline(soft_timeout_s=0.3, speculative=True)
    specs = [ReturnValue(index * 10) for index in range(3)]
    with obs_events.recording() as log:
        started = time.perf_counter()
        with WorkerPool(2) as pool:
            results = run_many(
                specs, workers=2, pool=pool, retry_backoff_s=0.0, deadline=deadline
            )
            elapsed = time.perf_counter() - started
            pool.kill()  # don't join the worker still sleeping off the fault
    assert [artifact.result for artifact in results] == [0, 10, 20]
    assert elapsed < 6.0  # did not wait out the 8s slow fault
    assert obs.counter_value("pool.speculative_dispatched") >= 1.0
    assert obs.counter_value("pool.speculative_wins") >= 1.0
    assert log.by_kind(obs_events.SPECULATIVE_DISPATCH)
    publish(log)


def test_scenario_exception_retried_to_success(monkeypatch):
    """Worker-raised injected exceptions burn attempts, not results."""
    matrix = np.arange(48.0).reshape(16, 3)
    expected = [float(matrix[a:b].sum()) for a, b in shard_ranges(16, 4)]
    monkeypatch.setenv(FAULTS_ENV, '{"kind": "exception", "times": 1}')
    with obs_events.recording() as log:
        with WorkerPool(2) as pool, SharedMatrix.create(matrix) as shared:
            results = pool.map_shards(
                shard_sum,
                _matrix_and_tasks(shared, rows=16, shards=4),
                max_attempts=2,
                deadline=TaskDeadline(speculative=False),
            )
    assert results == expected
    assert obs.counter_value("pool.tasks_failed") == 4.0  # one per shard
    assert log.by_kind(obs_events.FAULT_INJECTION)
    publish(log)


def test_scenario_shm_exhaustion_retried_to_success(monkeypatch):
    """ENOSPC from /dev/shm is an ordinary retryable failure."""
    monkeypatch.setenv(
        FAULTS_ENV, '{"kind": "shm_exhaust", "shards": [0, 1], "times": 1}'
    )
    specs = [ReturnValue(index) for index in range(3)]
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = run_many(
                specs,
                workers=2,
                pool=pool,
                max_attempts=2,
                retry_backoff_s=0.0,
                deadline=TaskDeadline(speculative=False),
            )
    assert [artifact.result for artifact in results] == [0, 1, 2]
    assert not any(isinstance(entry, RunFailure) for entry in results)
    publish(log)


def test_scenario_oversized_bundle_survives_the_merge(monkeypatch):
    """A pathologically large telemetry bundle still ships and merges."""
    monkeypatch.setenv(
        FAULTS_ENV,
        '{"kind": "oversized_bundle", "shards": [0], "times": 1,'
        ' "payload_events": 2000}',
    )
    specs = [ReturnValue(index) for index in range(2)]
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = run_many(
                specs,
                workers=2,
                pool=pool,
                retry_backoff_s=0.0,
                deadline=TaskDeadline(speculative=False),
            )
    assert [artifact.result for artifact in results] == [0, 1]
    payload = [
        event
        for event in log.by_kind(obs_events.FAULT_INJECTION)
        if event.source == "chaos_infra.payload"
    ]
    assert len(payload) == 2000
    publish(log)


def test_scenario_permanent_exception_exhausts_cleanly(monkeypatch):
    """A fault outlasting every retry yields a structured RunFailure."""
    monkeypatch.setenv(
        FAULTS_ENV, '{"kind": "exception", "shards": [1], "times": 99}'
    )
    specs = [ReturnValue(0), ReturnValue(1), ReturnValue(2)]
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = run_many(
                specs,
                workers=2,
                pool=pool,
                max_attempts=2,
                retry_backoff_s=0.0,
                deadline=TaskDeadline(speculative=False),
            )
    assert results[0].result == 0 and results[2].result == 2
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.attempts == 2
    assert failure.error_type == "InjectedFault"
    publish(log)


def test_faults_never_fire_without_the_env(monkeypatch):
    """No spec, no injection wrapper: the fault-free path is untouched."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    matrix = np.ones((8, 2))
    with WorkerPool(2) as pool, SharedMatrix.create(matrix) as shared:
        results = pool.map_shards(
            shard_sum, _matrix_and_tasks(shared, rows=8, shards=2)
        )
    assert results == [8.0, 8.0]
