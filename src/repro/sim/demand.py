"""Latency-critical demand models.

The reshaping runtime needs the *load* signal behind the LC power traces:
queries arriving per time step.  We recover it from the fleet's LC aggregate
power trace — power above idle is proportional to utilisation for the
archetypes we synthesise — and express demand in *server-loads*: a demand of
``d`` means ``d`` fully-loaded servers' worth of queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.grid import TimeGrid
from ..traces.series import PowerTrace


@dataclass(frozen=True)
class DemandTrace:
    """LC demand per time step, in units of fully-loaded servers."""

    grid: TimeGrid
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.shape != (self.grid.n_samples,):
            raise ValueError("demand length must match grid")
        if np.any(values < 0):
            raise ValueError("demand cannot be negative")
        object.__setattr__(self, "values", values)

    def peak(self) -> float:
        return float(self.values.max())

    def scaled(self, factor: float) -> "DemandTrace":
        """Demand grown by ``factor`` (e.g. the extra traffic new capacity
        is deployed to absorb)."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return DemandTrace(self.grid, self.values * factor)

    def per_server_load(self, n_servers: float) -> np.ndarray:
        """Average load per server if spread over ``n_servers`` servers."""
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        return self.values / n_servers


def demand_from_power(
    lc_aggregate: PowerTrace,
    *,
    idle_watts_total: float,
    swing_watts_per_server: float,
) -> DemandTrace:
    """Recover LC demand from the LC fleet's aggregate power trace.

    ``(P(t) − idle_total) / swing_per_server`` is the number of fully-loaded
    servers' worth of work in flight at time *t* under a linear load-to-power
    model.
    """
    if swing_watts_per_server <= 0:
        raise ValueError("swing per server must be positive")
    if idle_watts_total < 0:
        raise ValueError("idle power cannot be negative")
    utilised = np.maximum(lc_aggregate.values - idle_watts_total, 0.0)
    return DemandTrace(lc_aggregate.grid, utilised / swing_watts_per_server)


def demand_at_target_load(
    lc_aggregate: PowerTrace, n_servers: int, *, peak_load: float = 0.85
) -> DemandTrace:
    """Demand shaped like the LC power signal, scaled so that spreading it
    over ``n_servers`` yields a per-server load of ``peak_load`` at peak.

    A convenient calibration when absolute query rates are unknown (our
    traces are synthetic): the original fleet is sized to run hot but safe
    at peak, like a production deployment.
    """
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    if not 0 < peak_load <= 1:
        raise ValueError("peak_load must be in (0, 1]")
    top = lc_aggregate.peak()
    if top == 0:
        # Dead LC signal: constant demand at the target load.
        values = np.full(lc_aggregate.grid.n_samples, peak_load * n_servers)
        return DemandTrace(lc_aggregate.grid, values)
    values = lc_aggregate.values / top * peak_load * n_servers
    return DemandTrace(lc_aggregate.grid, values)
