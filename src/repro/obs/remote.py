"""Cross-process observability: capture in workers, ship, merge upstream.

Everything in :mod:`repro.obs` is process-local — a span tree, a metrics
registry, an event log all live and die with the process that recorded
them.  That made the shared-memory worker pool (:mod:`repro.engine.parallel`)
an observability black hole: a ``workers=8`` profile showed only the
coordinator's wall time, and every counter a shard incremented vanished
with the task.  This module closes the gap with a capture → ship → merge
pipeline:

* **capture** — a pool task runs inside :class:`capture`, which installs a
  fresh thread-local :class:`~repro.obs.spans.Tracer`, a private
  :class:`~repro.obs.metrics.MetricsRegistry`
  (via :class:`~repro.obs.metrics.capturing`), and a fresh
  :class:`~repro.obs.events.EventLog` — the instrumented code inside the
  task needs no changes;
* **ship** — on exit the capture serializes everything into a
  :class:`TelemetryBundle` (span dicts, metric deltas, histogram states
  with their reservoirs, sequence-numbered events), stamped with the worker
  pid and the shard id.  Bundles are plain picklable data a few KB long;
  :func:`run_captured` is the worker-side driver that pairs a task's result
  with its bundle, and ships the bundle *even when the task raises* (the
  bundle rides back attached to the original exception — see
  :func:`bundle_from_error` — so error types and messages are reported
  exactly as they would be without capture);
* **merge** — the coordinator calls :func:`merge_bundles`, which sorts
  bundles by ``(shard id, attempt)`` (so completion order can never change
  the outcome), grafts each bundle's spans under the coordinator's open
  dispatching span (worker span ids are re-allocated; event correlations
  are remapped to match), folds counters/gauges/histograms into the live
  registry, and re-emits events into the active log tagged with
  ``worker_pid`` and ``shard_id``.

The ``REPRO_OBS_CAPTURE`` environment variable is the kill switch:
``REPRO_OBS_CAPTURE=0`` disables capture entirely — tasks run bare, no
bundle is built or serialized, and the coordinator registry receives
nothing from workers (see :func:`capture_enabled`).
"""

from __future__ import annotations

import os
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from . import events as _events
from . import metrics as _metrics
from . import spans as _spans

__all__ = [
    "BUNDLE_ATTR",
    "CAPTURE_ENV",
    "TelemetryBundle",
    "bundle_from_error",
    "capture",
    "capture_enabled",
    "merge_bundles",
    "run_captured",
]

#: Environment switch: set to ``0``/``false``/``no``/``off`` to disable
#: worker telemetry capture entirely (no bundle is built or shipped).
CAPTURE_ENV = "REPRO_OBS_CAPTURE"

_FALSE_VALUES = ("0", "false", "no", "off")


def capture_enabled() -> bool:
    """Is worker telemetry capture on?  (Default yes; env kill switch.)

    Read at call time, so tests and benchmarks can flip the switch around
    individual calls without rebuilding pools.
    """
    return os.environ.get(CAPTURE_ENV, "1").strip().lower() not in _FALSE_VALUES


@dataclass
class TelemetryBundle:
    """One task's complete telemetry, serialized for the trip upstream.

    Plain picklable data only: span trees as ``to_dict`` payloads, metric
    deltas as name→value maps, histograms as full mergeable states
    (:meth:`repro.obs.metrics.Histogram.to_state`), and events as
    ``to_dict`` payloads in emission order.  ``shard_id`` and ``attempt``
    make the coordinator's merge order deterministic whatever order tasks
    completed in; ``worker_pid`` tags every merged span and event with the
    process that produced it.
    """

    shard_id: int
    label: str
    worker_pid: int
    attempt: int = 1
    wall_s: float = 0.0
    cpu_s: float = 0.0
    spans: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)
    error: Optional[Dict[str, str]] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


#: Attribute name :func:`run_captured` uses to attach a failed task's
#: bundle to the exception it re-raises.  ``BaseException.__reduce__``
#: includes instance ``__dict__`` in the pickle, so the bundle survives the
#: trip back through a ``ProcessPoolExecutor`` while the exception keeps
#: its original type and message — retry logic and failure reporting never
#: see a wrapper.
BUNDLE_ATTR = "_telemetry_bundle"


def bundle_from_error(error: BaseException) -> Optional[TelemetryBundle]:
    """The telemetry bundle a failed captured task shipped, if any.

    ``None`` for uncaptured failures (capture disabled, pool breakage,
    exceptions with a custom ``__reduce__`` that drops instance state)."""
    bundle = getattr(error, BUNDLE_ATTR, None)
    return bundle if isinstance(bundle, TelemetryBundle) else None


class capture:
    """Record one task's telemetry into a shippable bundle (worker side).

    ::

        with capture(shard_id=3, label="score.shard") as cap:
            do_the_work()
        ship(cap.bundle)

    Installs a fresh tracer, metrics registry, and event log for the
    duration, and opens one root span named ``label`` carrying the shard id
    and worker pid — everything the task records nests under it.  On exit
    (normal or exceptional) the bundle is finalized; an exception is
    recorded on the root span (``meta["error"]``) and as a ``task_error``
    event before it propagates, so failed tasks still ship their story.
    """

    __slots__ = (
        "bundle",
        "_tracing",
        "_recording",
        "_capturing",
        "_span_context",
        "_root",
    )

    def __init__(self, shard_id: int = 0, label: str = "task", attempt: int = 1) -> None:
        self.bundle = TelemetryBundle(
            shard_id=shard_id,
            label=label,
            worker_pid=os.getpid(),
            attempt=attempt,
        )

    def __enter__(self) -> "capture":
        self._tracing = _spans.tracing()
        tracer = self._tracing.__enter__()
        self._recording = _events.recording()
        self._recording.__enter__()
        self._capturing = _metrics.capturing()
        self._capturing.__enter__()
        self._span_context = tracer.span(
            self.bundle.label,
            shard=self.bundle.shard_id,
            pid=self.bundle.worker_pid,
        )
        self._root = self._span_context.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._root.meta["error"] = f"{type(exc).__name__}: {exc}"
            _events.emit(
                _events.TASK_ERROR,
                severity="critical",
                source=self.bundle.label,
                shard=self.bundle.shard_id,
                error_type=type(exc).__name__,
                error=str(exc) or repr(exc),
            )
            self.bundle.error = {
                "type": type(exc).__name__,
                "message": str(exc) or repr(exc),
            }
        self._span_context.__exit__(exc_type, exc, tb)
        self._capturing.__exit__(exc_type, exc, tb)
        self._recording.__exit__(exc_type, exc, tb)
        self._tracing.__exit__(exc_type, exc, tb)
        self._finalize()
        return False

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        bundle = self.bundle
        tracer = self._tracing.tracer
        registry = self._capturing.registry
        log = self._recording.log
        bundle.wall_s = self._root.wall_s
        bundle.cpu_s = self._root.cpu_s
        bundle.spans = [root.to_dict() for root in tracer.roots]
        bundle.counters = dict(registry.counters)
        bundle.gauges = dict(registry.gauges)
        bundle.histograms = {
            name: histogram.to_state()
            for name, histogram in registry.histograms.items()
        }
        bundle.events = [event.to_dict() for event in log]


def run_captured(fn, shard_id: int, label: str, attempt: int, args: Sequence):
    """Worker-side driver: run ``fn(*args)`` under capture.

    Returns ``(result, bundle)`` on success.  On failure the original
    exception propagates unchanged except for the bundle attached under
    :data:`BUNDLE_ATTR` (plus the formatted worker traceback, for
    diagnosis) — the coordinator harvests the telemetry with
    :func:`bundle_from_error` while its retry logic and failure reporting
    keep seeing the true error type and message.
    """
    cap = capture(shard_id=shard_id, label=label, attempt=attempt)
    try:
        with cap:
            result = fn(*args)
    except Exception as error:  # noqa: BLE001 - annotated, never swallowed
        try:
            setattr(error, BUNDLE_ATTR, cap.bundle)
            error._worker_traceback = _traceback.format_exc()
        except Exception:  # pragma: no cover - slotted/frozen exceptions
            pass
        raise
    return result, cap.bundle


# ----------------------------------------------------------------------
# coordinator-side merge
# ----------------------------------------------------------------------
def merge_bundles(
    bundles: Sequence[TelemetryBundle],
    *,
    tracer: Optional[_spans.Tracer] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
    log: Optional[_events.EventLog] = None,
) -> None:
    """Fold shipped bundles into the coordinator's live surfaces.

    Defaults target whatever is live right now: the calling thread's
    installed tracer, the active metrics registry, and the active event
    log (each skipped when absent — metrics always merge, since a registry
    always exists).

    Bundles are first sorted by ``(shard_id, attempt)``, which makes every
    merged artifact — histogram reservoirs included — a pure function of
    the work done, not of the order tasks happened to complete in.  Spans
    are grafted under the innermost open coordinator span with fresh span
    ids; event ``span_id`` correlations are remapped onto the rebuilt tree
    and every event gains ``worker_pid`` and ``shard_id`` fields.
    """
    if not bundles:
        return
    tracer = tracer if tracer is not None else _spans.get_tracer()
    registry = registry if registry is not None else _metrics.global_registry()
    log = log if log is not None else _events.get_event_log()
    ordered = sorted(bundles, key=lambda b: (b.shard_id, b.attempt))
    for bundle in ordered:
        _merge_one(bundle, tracer, registry, log)


def _merge_one(
    bundle: TelemetryBundle,
    tracer: Optional[_spans.Tracer],
    registry: Optional[_metrics.MetricsRegistry],
    log: Optional[_events.EventLog],
) -> None:
    id_map: Dict[int, int] = {}
    if tracer is not None:
        for payload in bundle.spans:
            tracer.attach(_spans.Span.from_dict(payload, id_map=id_map))
    if registry is not None:
        for name in sorted(bundle.counters):
            registry.inc(name, bundle.counters[name])
        for name in sorted(bundle.gauges):
            registry.set_gauge(name, bundle.gauges[name])
        for name in sorted(bundle.histograms):
            shipped = _metrics.Histogram.from_state(bundle.histograms[name])
            registry.histogram(name).merge(shipped)
    if log is not None:
        for payload in bundle.events:
            fields = dict(payload.get("fields", {}))
            fields.setdefault("worker_pid", bundle.worker_pid)
            fields.setdefault("shard_id", bundle.shard_id)
            span_id = payload.get("span_id")
            log.append(
                _events.Event(
                    seq=int(payload["seq"]),
                    kind=str(payload["kind"]),
                    severity=str(payload.get("severity", "info")),
                    source=str(payload.get("source", "")),
                    fields=fields,
                    span_id=id_map.get(span_id) if span_id is not None else None,
                    span_path=payload.get("span_path"),
                )
            )
