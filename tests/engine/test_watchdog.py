"""The hard-deadline watchdog: hung workers are killed, stages stay bounded.

A hang is the failure mode the retry layer alone cannot handle — a hung
worker never raises, never exits, and never returns, so before the
watchdog existed one stuck task stalled ``map_shards`` / ``run_many``
forever.  These tests pin the watchdog contract:

* a task past ``hard_timeout_s`` fails that attempt with
  :class:`TaskTimeoutError` carrying the dispatch context;
* the worker processes are killed outright (graceful shutdown would
  block on the hung worker), and the pool rebuilds for the retry;
* an exhausted hang surfaces as ``TaskTimeoutError`` from ``map_shards``
  and as a structured ``RunFailure`` from ``run_many``;
* wall time is bounded by attempts x deadline, not by the hang length.
"""

import json
import time

import pytest

from repro import obs
from repro.engine.chaos_infra import FAULTS_ENV
from repro.engine.deadline import TaskDeadline, TaskTimeoutError
from repro.engine.parallel import RunFailure, WorkerPool, run_many
from repro.obs import events as obs_events

#: Far beyond any deadline used here; a leaked wait would blow the test
#: session's timeout long before this elapses.
HANG_S = 120.0


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    yield
    obs.reset_metrics()
    obs.reset_report()


def ident(value):
    return value


class ReturnValue:
    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value


def _hang_spec(shards, times):
    return json.dumps(
        {"kind": "hang", "shards": shards, "times": times, "duration_s": HANG_S}
    )


def test_watchdog_kills_and_retry_recovers(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, _hang_spec([1], times=1))
    deadline = TaskDeadline(hard_timeout_s=0.75, speculative=False)
    with obs_events.recording() as log:
        started = time.perf_counter()
        with WorkerPool(2) as pool:
            results = pool.map_shards(
                ident,
                [(0,), (1,), (2,)],
                max_attempts=2,
                deadline=deadline,
            )
        elapsed = time.perf_counter() - started
    assert results == [0, 1, 2]
    assert elapsed < HANG_S / 4  # bounded by the deadline, not the hang

    assert obs.counter_value("pool.task_timeouts") == 1.0
    assert obs.counter_value("pool.worker_deaths") >= 1.0
    assert obs.counter_value("pool.rebuilds") >= 1.0
    (timeout_event,) = log.by_kind(obs_events.TASK_TIMEOUT)
    assert timeout_event.severity == "critical"
    assert timeout_event.fields["shard"] == 1
    assert timeout_event.fields["timeout_s"] == 0.75


def test_exhausted_hang_raises_task_timeout_error(monkeypatch):
    """map_shards: a permanent hang surfaces as TaskTimeoutError."""
    monkeypatch.setenv(FAULTS_ENV, _hang_spec([0], times=99))
    deadline = TaskDeadline(
        hard_timeout_s=0.5, speculative=False, quarantine_after=0
    )
    started = time.perf_counter()
    with WorkerPool(2) as pool:
        with pytest.raises(TaskTimeoutError) as excinfo:
            pool.map_shards(
                ident, [(0,), (1,)], max_attempts=2, deadline=deadline
            )
    elapsed = time.perf_counter() - started
    assert elapsed < HANG_S / 4
    error = excinfo.value
    assert error.shard_id == 0
    assert error.timeout_s == 0.5
    assert error.attempt == 2
    assert obs.counter_value("pool.task_timeouts") == 2.0  # both attempts


def test_exhausted_hang_is_a_run_failure(monkeypatch):
    """run_many: a permanent hang fills the slot with RunFailure."""
    monkeypatch.setenv(FAULTS_ENV, _hang_spec([1], times=99))
    deadline = TaskDeadline(
        hard_timeout_s=0.5, speculative=False, quarantine_after=0
    )
    with WorkerPool(2) as pool:
        results = run_many(
            [ReturnValue(0), ReturnValue(1), ReturnValue(2)],
            workers=2,
            pool=pool,
            max_attempts=2,
            retry_backoff_s=0.0,
            deadline=deadline,
        )
    assert results[0].result == 0 and results[2].result == 2
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.error_type == "TaskTimeoutError"
    assert failure.attempts == 2


def test_innocent_inflight_tasks_are_retried_not_condemned(monkeypatch):
    """Tasks in flight when the watchdog fires burn an attempt but recover.

    Killing the pool takes the innocents' workers with it; their failures
    are collateral (plain RuntimeError, no infra-failure accounting) and
    the retry on the rebuilt pool completes them.
    """
    monkeypatch.setenv(FAULTS_ENV, _hang_spec([0], times=1))
    deadline = TaskDeadline(
        hard_timeout_s=0.75, speculative=False, quarantine_after=0
    )
    with obs_events.recording() as log:
        with WorkerPool(2) as pool:
            results = pool.map_shards(
                ident,
                [(index,) for index in range(4)],
                max_attempts=3,
                deadline=deadline,
            )
    assert results == [0, 1, 2, 3]
    # exactly one shard actually timed out; the others were collateral
    assert obs.counter_value("pool.task_timeouts") == 1.0
    assert len(log.by_kind(obs_events.TASK_TIMEOUT)) == 1


def test_no_deadline_means_no_watchdog_overhead():
    """Without a deadline the dispatch loop blocks exactly as before."""
    with WorkerPool(2) as pool:
        results = pool.map_shards(ident, [(0,), (1,)], deadline=None)
    assert results == [0, 1]
    assert obs.counter_value("pool.task_timeouts") == 0.0


def test_pool_kill_discards_executor_without_waiting():
    """kill() must return promptly and leave the pool lazily rebuildable."""
    with WorkerPool(2) as pool:
        assert pool.map_shards(ident, [(0,), (1,)]) == [0, 1]
        started = time.perf_counter()
        pool.kill()
        assert time.perf_counter() - started < 5.0
        # the next dispatch re-forks transparently
        assert pool.map_shards(ident, [(7,), (8,)]) == [7, 8]
