"""Proactive throttling and boosting of Batch clusters (Sec. 4.2).

During LC-heavy Phase the batch clusters are throttled to a lower DVFS
point, freeing power budget that lets the datacenter house an *additional*
set of conversion servers ``e_th``.  During Batch-heavy Phase batch servers
are boosted — within the instantaneous power slack — to compensate for the
throughput lost to throttling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.power_model import DVFSModel, ServerPowerModel


@dataclass(frozen=True)
class ThrottleBoostPolicy:
    """Throttle/boost parameters.

    Attributes
    ----------
    throttle_freq:
        DVFS point batch servers drop to during LC-heavy Phase.
    boost_safety:
        Fraction of the instantaneous power slack boosting may consume
        (keeps a guard band under the breaker).
    max_extra_lc_fraction:
        Operational bound on ``e_th``: at most this fraction of the original
        LC fleet is deployed as throttle-funded conversion servers, however
        much power throttling frees.  Mirrors the conservative sizing the
        paper's production deployment implies (single-digit-percent extras).
    """

    throttle_freq: float = 0.8
    boost_safety: float = 0.6
    max_extra_lc_fraction: float = 0.08

    def __post_init__(self) -> None:
        if not 0 < self.throttle_freq <= 1:
            raise ValueError("throttle_freq must be in (0, 1]")
        if not 0 <= self.boost_safety <= 1:
            raise ValueError("boost_safety must be in [0, 1]")
        if self.max_extra_lc_fraction < 0:
            raise ValueError("max_extra_lc_fraction cannot be negative")

    # ------------------------------------------------------------------
    def freed_watts(self, n_batch: int, batch_model: ServerPowerModel) -> float:
        """Power released by throttling ``n_batch`` full-load batch servers."""
        if n_batch < 0:
            raise ValueError("n_batch cannot be negative")
        nominal = batch_model.max_power(1.0)
        throttled = batch_model.max_power(self.throttle_freq)
        return n_batch * (nominal - throttled)

    def extra_conversion_servers(
        self,
        n_batch: int,
        batch_model: ServerPowerModel,
        lc_model: ServerPowerModel,
        *,
        n_lc: Optional[int] = None,
    ) -> int:
        """``e_th``: extra conversion servers fundable by throttle headroom.

        Each extra server must be reservable at its full LC peak draw out of
        the watts throttling frees at the worst moment.  When ``n_lc`` is
        given the result is additionally capped at
        ``max_extra_lc_fraction × n_lc``.
        """
        freed = self.freed_watts(n_batch, batch_model)
        per_server = lc_model.max_power(1.0)
        funded = int(freed // per_server)
        if n_lc is not None:
            funded = min(funded, int(self.max_extra_lc_fraction * n_lc))
        return funded

    # ------------------------------------------------------------------
    def boost_schedule(
        self,
        slack_watts: np.ndarray,
        n_batch_active: np.ndarray,
        batch_model: ServerPowerModel,
        dvfs: DVFSModel,
    ) -> np.ndarray:
        """Per-step boost frequency fitting inside the power slack.

        Solves ``n × swing × (f^γ − 1) ≤ slack × boost_safety`` for ``f``
        and clamps to the DVFS range (never below nominal: this schedule is
        only applied on boost steps).
        """
        slack_watts = np.asarray(slack_watts, dtype=np.float64)
        n_batch_active = np.asarray(n_batch_active, dtype=np.float64)
        allowed = np.maximum(slack_watts, 0.0) * self.boost_safety
        swing = batch_model.swing_watts
        with np.errstate(divide="ignore", invalid="ignore"):
            budget_per_server = np.where(
                n_batch_active > 0, allowed / (n_batch_active * swing), 0.0
            )
        freq = np.power(1.0 + budget_per_server, 1.0 / batch_model.gamma)
        return np.clip(freq, 1.0, dvfs.max_freq)
