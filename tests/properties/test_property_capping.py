"""Property-based tests for the capping simulator and battery model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import BatterySpec, required_battery_energy, shave_peaks
from repro.infra import (
    Assignment,
    CappingSimulator,
    build_topology,
    two_level_spec,
)
from repro.traces import PowerTrace, ServiceKind, TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


def fleet_matrices():
    return hnp.arrays(
        dtype=np.float64,
        shape=(4, 24),
        elements=st.floats(0, 100, allow_nan=False, allow_infinity=False),
    )


def make_scene(matrix, budget):
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    ids = ["lc0", "lc1", "b0", "b1"]
    traces = TraceSet(GRID, ids, matrix)
    assignment = Assignment(
        topo, {"lc0": "dc/rpp0", "b0": "dc/rpp0", "lc1": "dc/rpp1", "b1": "dc/rpp1"}
    )
    for node in topo.nodes():
        node.budget_watts = budget
    kinds = {
        "lc0": ServiceKind.LATENCY_CRITICAL,
        "lc1": ServiceKind.LATENCY_CRITICAL,
        "b0": ServiceKind.BATCH,
        "b1": ServiceKind.BATCH,
    }
    return topo, assignment, traces, kinds


class TestCappingProperties:
    @given(fleet_matrices(), st.floats(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_shed_is_nonnegative_and_bounded(self, matrix, budget):
        topo, assignment, traces, kinds = make_scene(matrix, budget)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        total_energy = float(matrix.sum()) * GRID.step_minutes
        assert 0.0 <= report.total_energy_shed <= total_energy + 1e-6

    @given(fleet_matrices())
    @settings(max_examples=30, deadline=None)
    def test_generous_budget_never_caps(self, matrix):
        budget = float(matrix.sum()) + 1.0
        topo, assignment, traces, kinds = make_scene(matrix, budget)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.total_event_steps == 0
        assert report.total_energy_shed == 0.0

    @given(fleet_matrices(), st.floats(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_lc_shed_only_after_batch(self, matrix, budget):
        """LC is only shed at nodes where batch was shed to its floor."""
        topo, assignment, traces, kinds = make_scene(matrix, budget)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        for stats in report.nodes.values():
            if ServiceKind.LATENCY_CRITICAL in stats.shed_by_kind:
                # some batch shedding (or no batch present) must have happened
                assert (
                    ServiceKind.BATCH in stats.shed_by_kind
                    or not stats.shed_by_kind.get(ServiceKind.BATCH)
                )


class TestBatteryProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=24,
            elements=st.floats(0, 100, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1, 150),
        st.floats(0, 200),
        st.floats(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_soc_stays_in_bounds(self, values, budget, energy, discharge):
        trace = PowerTrace(GRID, values)
        battery = BatterySpec(
            energy_wh=energy, max_discharge_watts=discharge, max_charge_watts=20
        )
        result = shave_peaks(trace, budget, battery)
        assert np.all(result.state_of_charge_wh >= -1e-9)
        assert np.all(result.state_of_charge_wh <= energy + 1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=24,
            elements=st.floats(0, 100, allow_nan=False, allow_infinity=False),
        ),
        st.floats(1, 150),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_draw_never_below_shaved_load(self, values, budget):
        """The battery cannot create energy: draw + unshaved >= load where
        overloaded, and draw >= load never violates the budget while
        charging."""
        trace = PowerTrace(GRID, values)
        battery = BatterySpec(energy_wh=50, max_discharge_watts=30, max_charge_watts=10)
        result = shave_peaks(trace, budget, battery)
        over = values > budget
        # While overloaded: grid draw + what the battery delivered = load.
        assert np.all(result.grid_draw[over] <= values[over] + 1e-9)
        # While under budget we may charge, but never past the budget.
        assert np.all(result.grid_draw[~over] <= budget + 1e-9)

    @given(st.floats(0, 150), st.floats(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_required_energy_zero_iff_under_budget(self, level, budget):
        trace = PowerTrace.constant(GRID, level)
        required = required_battery_energy(trace, budget)
        if level <= budget:
            assert required == 0.0
        else:
            assert required > 0.0
