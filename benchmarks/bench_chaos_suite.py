"""The chaos suite at experiment scale.

Runs every named fault scenario — dirty telemetry, server failures, flaky
conversions, browned-out budgets — through the full synthesize → inject →
repair → place → reshape pipeline and asserts the robustness acceptance
criteria: repaired-input placements stay within 5% of clean quality, and
the recovered reshaping scenarios end with zero overload steps and zero
breaker trips.
"""

import pytest

from repro.faults import format_chaos_table, run_chaos_suite


def _run(full_scale):
    return run_chaos_suite(dc_name="DC1", **full_scale)


@pytest.mark.benchmark(group="chaos")
def test_chaos_suite(benchmark, emit_report, full_scale):
    outcomes = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    emit_report("chaos_suite", format_chaos_table(outcomes))

    failed = [o.scenario.name for o in outcomes if not o.passed]
    assert not failed, f"chaos scenarios failed: {failed}"

    by_name = {o.scenario.name: o for o in outcomes}
    # The browned-out scenarios must actually exercise the fallback …
    assert by_name["surge_overload"].reshaping.recovery.engaged
    assert by_name["perfect_storm"].reshaping.recovery.engaged
    # … and the control run must not.
    assert not by_name["clean"].reshaping.recovery.engaged
    assert by_name["clean"].placement_trips == 0
