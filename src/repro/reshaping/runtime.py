"""The dynamic power profile reshaping runtime (Sec. 4).

Simulates a datacenter's test week under four scenarios:

* ``pre``            — the original fleet and traffic (pre-SmoothOperator);
* ``lc_only``        — headroom filled with LC-specific servers only;
* ``conversion``     — headroom filled with storage-disaggregated
  *conversion* servers that flip between Batch and LC with load (Sec. 4.2);
* ``throttle_boost`` — conversion plus proactive batch throttling during
  LC-heavy Phase (funding extra conversion servers) and batch boosting
  during Batch-heavy Phase.

Each scenario produces the Figure 12 time series (per-LC-server load, LC and
Batch throughput) and the power trace from which Figure 13's throughput
improvements and Figure 14's slack reductions are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..obs import telemetry as obs_telemetry
from ..sim.batch import batch_throughput
from ..sim.demand import DemandTrace
from ..sim.loadbalancer import dispatch
from ..sim.power_model import DVFSModel, ServerPowerModel
from ..traces.grid import TimeGrid
from ..traces.series import PowerTrace
from .conversion import ConversionPolicy
from .throttling import ThrottleBoostPolicy


@dataclass(frozen=True)
class FleetDescription:
    """The original fleet the reshaping runtime operates on.

    ``other_power`` carries the exogenous draw of servers that are neither
    LC nor Batch (storage, dev, ...) straight from their test traces.
    """

    n_lc: int
    n_batch: int
    lc_model: ServerPowerModel
    batch_model: ServerPowerModel
    budget_watts: float
    other_power: Optional[PowerTrace] = None

    def __post_init__(self) -> None:
        if self.n_lc <= 0:
            raise ValueError("fleet needs at least one LC server")
        if self.n_batch < 0:
            raise ValueError("n_batch cannot be negative")
        if self.budget_watts <= 0:
            raise ValueError("budget must be positive")


@dataclass
class ScenarioResult:
    """Time series and summaries for one simulated scenario."""

    name: str
    grid: TimeGrid
    budget_watts: float
    demand: np.ndarray
    lc_served: np.ndarray
    lc_dropped: np.ndarray
    load_on_original: np.ndarray
    per_server_load: np.ndarray
    n_lc_active: np.ndarray
    n_batch_active: np.ndarray
    batch_throughput: np.ndarray
    batch_freq: np.ndarray
    total_power: np.ndarray
    #: Conversion servers idling between modes (OS up, no work), per step.
    parked: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def lc_total(self) -> float:
        return float(self.lc_served.sum())

    def batch_total(self) -> float:
        return float(self.batch_throughput.sum())

    def dropped_fraction(self) -> float:
        total = float(self.demand.sum())
        if total == 0:
            return 0.0
        return float(self.lc_dropped.sum()) / total

    def power_slack(self) -> np.ndarray:
        """Instantaneous slack (Eq. 1); negative values mean overload."""
        return self.budget_watts - self.total_power

    def mean_slack(self) -> float:
        return float(self.power_slack().mean())

    def energy_slack(self) -> float:
        """Eq. 2 over the whole scenario, in watt-minutes."""
        return float(self.power_slack().sum()) * self.grid.step_minutes

    def overload_steps(self) -> int:
        return int(np.sum(self.total_power > self.budget_watts + 1e-9))

    def peak_power(self) -> float:
        return float(self.total_power.max())


class ReshapingRuntime:
    """Runs the Sec. 4 scenarios for one datacenter."""

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        throttle: Optional[ThrottleBoostPolicy] = None,
        dvfs: Optional[DVFSModel] = None,
    ) -> None:
        self.fleet = fleet
        self.conversion = conversion
        self.throttle = throttle if throttle is not None else ThrottleBoostPolicy()
        self.dvfs = dvfs if dvfs is not None else DVFSModel()

    # ------------------------------------------------------------------
    # scenario entry points
    # ------------------------------------------------------------------
    def run_pre(self, demand: DemandTrace) -> ScenarioResult:
        """Original fleet, original traffic, nominal frequency everywhere."""
        n = demand.grid.n_samples
        return self._assemble(
            "pre",
            demand,
            n_lc_active=np.full(n, float(self.fleet.n_lc)),
            n_batch_active=np.full(n, float(self.fleet.n_batch)),
            batch_freq=np.ones(n),
        )

    def run_lc_only(self, demand: DemandTrace, extra_servers: int) -> ScenarioResult:
        """Headroom filled with LC-specific servers (always LC)."""
        self._check_extra(extra_servers)
        n = demand.grid.n_samples
        return self._assemble(
            "lc_only",
            demand,
            n_lc_active=np.full(n, float(self.fleet.n_lc + extra_servers)),
            n_batch_active=np.full(n, float(self.fleet.n_batch)),
            batch_freq=np.ones(n),
        )

    def run_conversion(self, demand: DemandTrace, extra_servers: int) -> ScenarioResult:
        """Headroom filled with conversion servers flipping with the phase.

        During Batch-heavy Phase at most
        ``conversion.batch_convertible(extra, n_batch)`` extras run batch;
        any remainder stays in LC mode (the batch tier cannot absorb them).
        """
        self._check_extra(extra_servers)
        _, n_lc_active, n_batch_active, parked = self.conversion_plan(
            demand, extra_servers
        )
        return self._assemble(
            "conversion",
            demand,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_freq=np.ones(demand.grid.n_samples),
            parked=parked,
        )

    def run_throttle_boost(
        self,
        demand: DemandTrace,
        extra_conversion: int,
        extra_throttle_funded: Optional[int] = None,
    ) -> ScenarioResult:
        """Conversion plus proactive throttling and boosting.

        ``extra_throttle_funded`` (``e_th``) defaults to what throttling the
        batch fleet frees at the policy's throttle frequency.
        """
        self._check_extra(extra_conversion)
        if extra_throttle_funded is None:
            extra_throttle_funded = self.throttle.extra_conversion_servers(
                self.fleet.n_batch,
                self.fleet.batch_model,
                self.fleet.lc_model,
                n_lc=self.fleet.n_lc,
            )
        if extra_throttle_funded < 0:
            raise ValueError("extra_throttle_funded cannot be negative")
        total_extra = extra_conversion + extra_throttle_funded

        lc_heavy, n_lc_active, n_batch_active, parked = self.conversion_plan(
            demand, total_extra
        )
        batch_heavy = ~lc_heavy

        # LC-heavy: batch throttled.  Batch-heavy: boost into the slack left
        # by the nominal-frequency power draw.
        freq = np.where(lc_heavy, self.throttle.throttle_freq, 1.0)
        nominal = self._assemble(
            "throttle_boost",
            demand,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_freq=freq,
            parked=parked,
        )
        slack = nominal.power_slack()
        boost = self.throttle.boost_schedule(
            slack, n_batch_active, self.fleet.batch_model, self.dvfs
        )
        freq = np.where(batch_heavy, np.maximum(boost, 1.0), freq)
        boosted = self._assemble(
            "throttle_boost",
            demand,
            n_lc_active=n_lc_active,
            n_batch_active=n_batch_active,
            batch_freq=freq,
            parked=parked,
        )
        # Regression guard: the boost schedule is solved against the
        # *nominal* run's slack.  Wherever the realised scenario still
        # exceeds budget (pre-existing overload, full-safety rounding),
        # re-solve the batch frequency against the actual non-batch draw so
        # the boosted scenario never trades throughput for a breaker trip.
        if boosted.overload_steps():
            freq = self._fit_freq_to_budget(boosted, freq)
            boosted = self._assemble(
                "throttle_boost",
                demand,
                n_lc_active=n_lc_active,
                n_batch_active=n_batch_active,
                batch_freq=freq,
                parked=parked,
            )
        throttled_steps = int(np.count_nonzero(boosted.batch_freq < 1.0 - 1e-12))
        if throttled_steps:
            obs_events.emit(
                obs_events.THROTTLE,
                source="reshaping.throttle_boost",
                steps=throttled_steps,
                min_freq=float(boosted.batch_freq.min()),
                throttle_freq=float(self.throttle.throttle_freq),
            )
        boosted_steps = int(np.count_nonzero(boosted.batch_freq > 1.0 + 1e-12))
        if boosted_steps:
            obs_events.emit(
                obs_events.BOOST,
                source="reshaping.throttle_boost",
                steps=boosted_steps,
                max_freq=float(boosted.batch_freq.max()),
            )
        return boosted

    # ------------------------------------------------------------------
    def conversion_plan(
        self, demand: DemandTrace, total_extra: int
    ) -> "tuple":
        """Per-step fleet plan for ``total_extra`` conversion servers.

        Returns ``(lc_heavy, n_lc_active, n_batch_active, parked)``: during
        LC-heavy Phase every extra runs LC; during Batch-heavy Phase at most
        ``batch_convertible`` extras run batch and the remainder sit parked
        at idle, OS up, ready to convert (Sec. 4.2).
        """
        lc_heavy = self.conversion.lc_heavy_mask(demand, self.fleet.n_lc)
        convertible = self.conversion.batch_convertible(
            total_extra, self.fleet.n_batch
        )
        batch_heavy_f = (~lc_heavy).astype(np.float64)
        n_lc_active = self.fleet.n_lc + total_extra * lc_heavy.astype(np.float64)
        n_batch_active = self.fleet.n_batch + convertible * batch_heavy_f
        parked = (total_extra - convertible) * batch_heavy_f
        obs_events.emit(
            obs_events.CONVERSION,
            source="reshaping.conversion_plan",
            phase_changes=int(np.count_nonzero(np.diff(lc_heavy))),
            total_extra=int(total_extra),
            batch_convertible=int(convertible),
            parked_peak=float(parked.max()) if len(parked) else 0.0,
        )
        return lc_heavy, n_lc_active, n_batch_active, parked

    def _fit_freq_to_budget(
        self, result: ScenarioResult, freq: np.ndarray
    ) -> np.ndarray:
        """Lower the batch frequency wherever ``result`` exceeds its budget.

        Solves ``n x (idle + swing x f^gamma) <= budget - non_batch_power``
        per step and clamps into the DVFS range; steps already within budget
        keep their schedule.  Overload that batch throttling alone cannot
        cure (non-batch draw above budget even at ``min_freq``) is left for
        the emergency capping fallback (:mod:`repro.faults.runtime`).
        """
        over = result.total_power > result.budget_watts + 1e-9
        if not np.any(over):
            return freq
        model = self.fleet.batch_model
        n_batch = result.n_batch_active
        batch_power = n_batch * model.power(1.0, result.batch_freq)
        non_batch = result.total_power - batch_power
        allowed = result.budget_watts - non_batch - 1e-6
        with np.errstate(divide="ignore", invalid="ignore"):
            per_server = np.where(
                n_batch > 0, allowed / np.maximum(n_batch, 1e-12), np.inf
            )
        ratio = np.maximum((per_server - model.idle_watts) / model.swing_watts, 0.0)
        safe = np.power(ratio, 1.0 / model.gamma)
        safe = np.clip(safe, self.dvfs.min_freq, self.dvfs.max_freq)
        return np.where(over, np.minimum(freq, safe), freq)

    # ------------------------------------------------------------------
    def _check_extra(self, extra: int) -> None:
        if extra < 0:
            raise ValueError("extra server count cannot be negative")

    def _assemble(
        self,
        name: str,
        demand: DemandTrace,
        *,
        n_lc_active: np.ndarray,
        n_batch_active: np.ndarray,
        batch_freq: np.ndarray,
        parked: Optional[np.ndarray] = None,
    ) -> ScenarioResult:
        with obs.span("reshape.assemble", scenario=name):
            return self._assemble_traced(
                name,
                demand,
                n_lc_active=n_lc_active,
                n_batch_active=n_batch_active,
                batch_freq=batch_freq,
                parked=parked,
            )

    def _assemble_traced(
        self,
        name: str,
        demand: DemandTrace,
        *,
        n_lc_active: np.ndarray,
        n_batch_active: np.ndarray,
        batch_freq: np.ndarray,
        parked: Optional[np.ndarray] = None,
    ) -> ScenarioResult:
        obs.count("reshape.scenarios_assembled")
        obs.count("reshape.steps_simulated", demand.grid.n_samples)
        outcome = dispatch(
            demand.values, n_lc_active, self.conversion.conversion_threshold
        )
        batch = batch_throughput(n_batch_active, batch_freq, self.dvfs)

        lc_power = n_lc_active * self.fleet.lc_model.power(outcome.per_server_load)
        batch_power = n_batch_active * self.fleet.batch_model.power(1.0, batch.freq)
        total = lc_power + batch_power
        if parked is not None:
            # Parked conversion servers idle with the OS up (no reboot on
            # conversion, Sec. 4.2), drawing the LC idle floor.
            total = total + np.asarray(parked, dtype=np.float64) * self.fleet.lc_model.power(0.0)
        if self.fleet.other_power is not None:
            demand.grid.require_same(self.fleet.other_power.grid)
            total = total + self.fleet.other_power.values

        # Flight-recorder hook: per-step utilization/slack/headroom against
        # the scenario budget, plus violation/advisory events.  No-op unless
        # a recorder or event log is installed.
        obs_telemetry.record_power(
            f"reshape/{name}",
            total,
            self.fleet.budget_watts,
            step_minutes=demand.grid.step_minutes,
            source=f"reshaping.{name}",
        )

        load_on_original = demand.values / self.fleet.n_lc
        return ScenarioResult(
            name=name,
            grid=demand.grid,
            budget_watts=self.fleet.budget_watts,
            demand=demand.values.copy(),
            lc_served=outcome.served,
            lc_dropped=outcome.dropped,
            load_on_original=load_on_original,
            per_server_load=outcome.per_server_load,
            n_lc_active=np.asarray(n_lc_active, dtype=np.float64).copy(),
            n_batch_active=np.asarray(n_batch_active, dtype=np.float64).copy(),
            batch_throughput=batch.throughput,
            batch_freq=batch.freq,
            total_power=total,
            parked=(
                np.asarray(parked, dtype=np.float64).copy()
                if parked is not None
                else np.zeros(demand.grid.n_samples)
            ),
        )


@dataclass
class ReshapingComparison:
    """Figure 13/14-style comparison of reshaping scenarios against ``pre``."""

    pre: ScenarioResult
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)

    def lc_improvement(self, name: str) -> float:
        base = self.pre.lc_total()
        if base == 0:
            return 0.0
        return self.scenarios[name].lc_total() / base - 1.0

    def batch_improvement(self, name: str) -> float:
        base = self.pre.batch_total()
        if base == 0:
            return 0.0
        return self.scenarios[name].batch_total() / base - 1.0

    def slack_reduction(
        self,
        name: str,
        mask: Optional[np.ndarray] = None,
        *,
        baseline: str = "pre",
    ) -> float:
        """Fractional reduction of mean power slack vs a baseline (Figure 14).

        ``mask`` restricts the comparison to a subset of steps (e.g. the
        off-peak / Batch-heavy hours).  ``baseline`` is ``"pre"`` or the
        name of another scenario; comparing ``"throttle_boost"`` against
        ``"lc_only"`` isolates what *dynamic reshaping itself* (conversion +
        throttling/boosting) does with the slack, separate from the static
        effect of simply hosting more servers.
        """
        base = self.pre if baseline == "pre" else self.scenarios[baseline]
        before = base.power_slack()
        after = self.scenarios[name].power_slack()
        if mask is not None:
            before = before[mask]
            after = after[mask]
        mean_before = float(before.mean())
        if mean_before <= 0:
            return 0.0
        return 1.0 - float(after.mean()) / mean_before
