"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "table1" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SmoothOperator" in out
        assert "Power Routing" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "%" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "RPP" in out
        assert "extra servers" in out

    def test_safety_small(self, capsys):
        assert main(["safety", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Power safety" in out
        assert "smoothoperator" in out

    def test_predictability_small(self, capsys):
        assert main(["predictability", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_profile_small(self, capsys):
        assert main(["profile", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        for stage in ("synthesize", "score", "cluster", "place", "remap"):
            assert stage in out
        assert "peak reduction" in out

    def test_profile_json(self, capsys):
        assert main(["profile", "--instances", "96", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = {row["stage"] for row in payload["stages"]}
        for stage in ("synthesize", "score", "cluster", "place", "remap"):
            assert stage in stages
        assert payload["workload"]["instances"] == 96
        assert payload["spans"][0]["name"] == "profile"
        assert "counters" in payload["metrics"]
