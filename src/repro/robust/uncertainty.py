"""Interval power models: per-instance nominal draw + spike radius.

Point-estimate peaks hide the behaviour that actually trips breakers:
an instance whose trace usually sits at ``p_c`` occasionally spikes to
``p_c + p_r``.  An :class:`UncertainPowerModel` derives both numbers from
trace history — the nominal from a high percentile of the observed trace
(robust to single-sample glitches), the radius from the gap between the
observed maximum and that nominal — and exposes them as vectors aligned
with the instance ids, ready for the Γ-sum accounting in
:mod:`repro.robust.headroom`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..traces.instance import InstanceRecord
from ..traces.traceset import TraceSet

#: Default percentile of the trace history taken as the nominal draw.  The
#: top 5% of samples are treated as spike territory, matching the StatProf
#: convention of provisioning against a high-but-not-max percentile.
DEFAULT_NOMINAL_PERCENTILE = 95.0


class UncertainPowerModel:
    """Per-instance power intervals ``[p_c - p_r, p_c + p_r]``.

    ``nominal`` (``p_c``) and ``radius`` (``p_r``) are parallel float
    vectors keyed by ``ids``.  Only the upward deviation matters for
    budget safety — the Γ-robust load of a node is ``Σ p_c`` plus the sum
    of its top-Γ radii — but the symmetric interval is kept so the model
    can also bound how far a node's draw may *undershoot* its plan.
    """

    __slots__ = ("ids", "nominal", "radius", "_index")

    def __init__(
        self,
        ids: Sequence[str],
        nominal: Iterable[float],
        radius: Iterable[float],
    ) -> None:
        nominal = np.asarray(nominal, dtype=np.float64)
        radius = np.asarray(radius, dtype=np.float64)
        if nominal.ndim != 1 or radius.ndim != 1:
            raise ValueError("nominal and radius must be 1-D vectors")
        if len(ids) != nominal.shape[0] or len(ids) != radius.shape[0]:
            raise ValueError(
                f"{len(ids)} ids inconsistent with nominal shape "
                f"{nominal.shape} / radius shape {radius.shape}"
            )
        if not (np.all(np.isfinite(nominal)) and np.all(np.isfinite(radius))):
            raise ValueError("nominal and radius must be finite")
        if np.any(nominal < 0):
            raise ValueError("nominal power cannot be negative")
        if np.any(radius < 0):
            raise ValueError("spike radius cannot be negative")
        self.ids = list(ids)
        if len(set(self.ids)) != len(self.ids):
            raise ValueError("instance ids must be unique")
        self.nominal = nominal
        self.radius = radius
        self._index: Dict[str, int] = {iid: i for i, iid in enumerate(self.ids)}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_traceset(
        cls,
        traces: TraceSet,
        *,
        nominal_percentile: float = DEFAULT_NOMINAL_PERCENTILE,
        radius_scale: float = 1.0,
    ) -> "UncertainPowerModel":
        """Derive nominal + radius from a fleet's trace history.

        ``p_c`` is the per-trace ``nominal_percentile``-th percentile;
        ``p_r`` is ``radius_scale × (max - p_c)`` — how far beyond its
        nominal the instance has actually been observed to spike.
        ``radius_scale > 1`` hardens the model against spikes worse than
        history; ``radius_scale = 0`` degenerates to point estimates.
        """
        if not 0 <= nominal_percentile <= 100:
            raise ValueError("nominal_percentile must be in [0, 100]")
        if radius_scale < 0:
            raise ValueError("radius_scale cannot be negative")
        nominal = np.percentile(traces.matrix, nominal_percentile, axis=1)
        peaks = traces.matrix.max(axis=1)
        radius = np.maximum(peaks - nominal, 0.0) * radius_scale
        return cls(traces.ids, nominal, radius)

    @classmethod
    def from_records(
        cls,
        records: Sequence[InstanceRecord],
        *,
        nominal_percentile: float = DEFAULT_NOMINAL_PERCENTILE,
        radius_scale: float = 1.0,
    ) -> "UncertainPowerModel":
        """Derive the model from the records' *training* traces.

        Placement must never peek at the held-out test week; the spike
        radii come from the same history the placer sees.
        """
        traces = TraceSet.from_traces(
            {record.instance_id: record.training_trace for record in records}
        )
        return cls.from_traceset(
            traces,
            nominal_percentile=nominal_percentile,
            radius_scale=radius_scale,
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._index

    def index_of(self, instance_id: str) -> int:
        try:
            return self._index[instance_id]
        except KeyError:
            raise KeyError(f"no uncertainty model for instance {instance_id!r}")

    def nominal_of(self, instance_id: str) -> float:
        return float(self.nominal[self.index_of(instance_id)])

    def radius_of(self, instance_id: str) -> float:
        return float(self.radius[self.index_of(instance_id)])

    def upper(self, instance_id: str) -> float:
        """The instance's worst-case draw ``p_c + p_r``."""
        i = self.index_of(instance_id)
        return float(self.nominal[i] + self.radius[i])

    def interval(self, instance_id: str) -> Tuple[float, float]:
        """The interval ``[max(0, p_c - p_r), p_c + p_r]``.

        The lower end is floored at zero: power draw cannot be negative
        however large the modelled deviation.
        """
        i = self.index_of(instance_id)
        centre = float(self.nominal[i])
        spread = float(self.radius[i])
        return (max(0.0, centre - spread), centre + spread)

    def subset(self, instance_ids: Sequence[str]) -> "UncertainPowerModel":
        """The model restricted to ``instance_ids`` (order preserved)."""
        rows = [self.index_of(iid) for iid in instance_ids]
        return UncertainPowerModel(
            list(instance_ids), self.nominal[rows], self.radius[rows]
        )

    def with_spike_minority(
        self, fraction: float, spike_watts: float, *, seed: int = 0
    ) -> "UncertainPowerModel":
        """A copy where a seeded random minority gets radius ``spike_watts``.

        Trace history on this fleet yields small, homogeneous radii; real
        fleets have a heavy tail — a minority of deploy-wave / cache-flush
        prone services whose spikes dwarf the rest.  This models that tail
        explicitly: ``fraction`` of the instances (chosen by ``seed``, so
        scenarios are reproducible and placement-independent) have their
        radius replaced by the fixed amplitude ``spike_watts``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if spike_watts < 0:
            raise ValueError("spike_watts cannot be negative")
        radius = self.radius.copy()
        count = min(int(round(fraction * len(self.ids))), len(self.ids))
        if count:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(len(self.ids), size=count, replace=False)
            radius[chosen] = spike_watts
        return UncertainPowerModel(list(self.ids), self.nominal.copy(), radius)

    # ------------------------------------------------------------------
    # bulk views
    # ------------------------------------------------------------------
    def rows(self, instance_ids: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """``(nominal, radius)`` vectors for a member list, in list order."""
        rows = [self.index_of(iid) for iid in instance_ids]
        return self.nominal[rows], self.radius[rows]

    def total_upper(self) -> float:
        """Fleet-wide worst case: every instance at ``p_c + p_r`` at once."""
        return float((self.nominal + self.radius).sum())
