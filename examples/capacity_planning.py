"""Capacity planning: how many servers fit, and what must be provisioned?

An operator's two dual questions, answered with the library:

1. **Given the infrastructure, how many more servers fit?**  Peak-provision
   every node from the original placement, apply SmoothOperator, and run
   the hierarchy-aware expansion plan (the paper's "13% more machines").
2. **Given the fleet, how much budget must be provisioned?**  Compare
   SmoothOperator's time-aligned aggregation against StatProf's
   placement-blind statistical multiplexing (Figure 11).

Run:  python examples/capacity_planning.py
"""

from repro.analysis import experiments as E
from repro.analysis import format_percent, format_table
from repro.baselines import FIGURE11_CONFIGS
from repro.infra import Level, NodePowerView, node_headroom


def expansion_question(name: str, scale) -> None:
    dc = E.get_datacenter(name, **scale)
    study = E.run_placement_study(dc)
    plan = study.report.expansion

    # Where did the headroom appear?
    view = NodePowerView(dc.topology, study.optimized.assignment, dc.test_traces())
    headroom = node_headroom(view)
    rpp_headroom = [
        headroom[n.name] for n in dc.topology.nodes_at_level(Level.RPP)
    ]
    print(
        f"{name}: {plan.total_extra} extra servers fit "
        f"({format_percent(plan.expansion_fraction)} of the fleet); "
        f"mean RPP headroom {sum(rpp_headroom) / len(rpp_headroom):.0f} W"
    )


def provisioning_question(name: str, scale) -> None:
    grid = E.run_figure11(name, **scale)
    labels = []
    for u, d in FIGURE11_CONFIGS:
        labels += [f"StatProf({u:g}, {d:g})", f"SmoOp({u:g}, {d:g})"]
    rows = [
        [level] + [f"{grid[level][label]:.3f}" for label in labels]
        for level in (Level.DATACENTER, Level.SB, Level.RPP)
    ]
    print()
    print(
        format_table(
            ["level"] + labels,
            rows,
            title=f"{name} — normalised required budget (1.0 = per-instance peak provisioning)",
        )
    )


def main() -> None:
    scale = dict(n_instances=480, step_minutes=10)
    print("Question 1 — how many more servers fit under the existing tree?\n")
    for name in E.DATACENTER_NAMES:
        expansion_question(name, scale)
    print("\nQuestion 2 — how much budget must be provisioned for the fleet?")
    provisioning_question("DC3", scale)


if __name__ == "__main__":
    main()
