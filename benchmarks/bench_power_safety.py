"""Power safety under bursty traffic (Sec. 3.2's claim, quantified).

Paper (Sec. 3.2): "When bursty traffic arrives, the sudden load change is
now shared among all the power nodes.  Such load sharing ... decreases the
likelihood of tripping the circuit breakers inside certain heavily-loaded
power nodes."  The paper states this; it does not plot it.  This benchmark
measures it: a daily LC traffic surge is injected into the held-out week
and the Dynamo-style capping loop is run under both placements.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table


def _run(full_scale):
    return E.run_power_safety("DC3", surge_factor=1.25, **full_scale)


@pytest.mark.benchmark(group="power-safety")
def test_power_safety(benchmark, emit_report, full_scale):
    study = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = []
    for label in ("oblivious", "smoothoperator"):
        report = study.reports[label]
        rows.append(
            [
                label,
                report.total_event_steps,
                f"{report.lc_energy_shed / 1e3:.0f}",
                f"{report.batch_energy_shed / 1e3:.0f}",
                report.residual_overload_steps,
            ]
        )
    table = format_table(
        [
            "placement",
            "capping events (node-steps)",
            "LC energy shed (kW-min)",
            "batch energy shed (kW-min)",
            "residual overload steps",
        ],
        rows,
        title=(
            f"Power safety — {study.surge_factor:.2f}x LC surge, 12:00-16:00 "
            f"daily ({study.datacenter.name}, test week)"
        ),
    )
    emit_report("power_safety", table)

    oblivious = study.reports["oblivious"]
    smoop = study.reports["smoothoperator"]
    # The claim: the workload-aware placement needs much less LC capping
    # (QoS damage) and fewer capping events overall.
    assert smoop.lc_energy_shed < oblivious.lc_energy_shed * 0.5
    assert smoop.total_event_steps < oblivious.total_event_steps
