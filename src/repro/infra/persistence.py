"""Persistence for topologies and assignments.

Placements are operational artifacts — they must survive process restarts,
be diffable, and be auditable.  Both the power tree and instance→leaf
assignments round-trip through JSON.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from .assignment import Assignment
from .topology import PowerNode, PowerTopology

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def topology_to_dict(topology: PowerTopology) -> Dict:
    """Serialise a power tree (structure, budgets, capacities) to a dict."""

    def node_to_dict(node: PowerNode) -> Dict:
        payload: Dict = {"name": node.name, "level": node.level}
        if node.budget_watts is not None:
            payload["budget_watts"] = node.budget_watts
        if node.capacity is not None:
            payload["capacity"] = node.capacity
        if node.children:
            payload["children"] = [node_to_dict(child) for child in node.children]
        return payload

    return {"version": _FORMAT_VERSION, "root": node_to_dict(topology.root)}


def topology_from_dict(payload: Dict) -> PowerTopology:
    """Rebuild a power tree serialised by :func:`topology_to_dict`."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version {payload.get('version')}")

    def build(node_payload: Dict) -> PowerNode:
        node = PowerNode(
            node_payload["name"],
            node_payload["level"],
            budget_watts=node_payload.get("budget_watts"),
            capacity=node_payload.get("capacity"),
        )
        for child_payload in node_payload.get("children", []):
            node.add_child(build(child_payload))
        return node

    return PowerTopology(build(payload["root"]))


def save_topology(topology: PowerTopology, path: PathLike) -> None:
    pathlib.Path(path).write_text(json.dumps(topology_to_dict(topology), indent=2))


def load_topology(path: PathLike) -> PowerTopology:
    return topology_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_assignment(assignment: Assignment, path: PathLike) -> None:
    """Write an assignment (and its topology) to one JSON document."""
    payload = {
        "version": _FORMAT_VERSION,
        "topology": topology_to_dict(assignment.topology),
        "mapping": assignment.as_mapping(),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_assignment(
    path: PathLike, *, topology: Optional[PowerTopology] = None
) -> Assignment:
    """Load an assignment; optionally bind it to an existing topology.

    When ``topology`` is given, its node names must match the serialised
    tree's (the embedded topology is then ignored) — useful for attaching a
    stored placement to the live tree object budgets are written on.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported assignment format version {payload.get('version')}")
    embedded = topology_from_dict(payload["topology"])
    target = topology if topology is not None else embedded
    if topology is not None:
        theirs = {n.name for n in embedded.nodes()}
        ours = {n.name for n in topology.nodes()}
        if theirs != ours:
            raise ValueError("provided topology does not match the stored placement")
    return Assignment(target, payload["mapping"])
