"""Unit tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.traces import test_trace_set as heldout_trace_set
from repro.traces import (
    InstancePersonality,
    ServiceKind,
    TraceSynthesizer,
    db_profile,
    draw_personality,
    hadoop_profile,
    training_trace_set,
    web_profile,
)


@pytest.fixture
def synth():
    return TraceSynthesizer(weeks=3, step_minutes=30, seed=1)


class TestSynthesizer:
    def test_rejects_zero_weeks(self):
        with pytest.raises(ValueError):
            TraceSynthesizer(weeks=0)

    def test_trace_covers_weeks(self, synth):
        trace = synth.instance_trace(web_profile())
        assert trace.grid.covers_whole_weeks()
        assert trace.grid.n_weeks == 3

    def test_trace_nonnegative(self, synth):
        trace = synth.instance_trace(web_profile())
        assert trace.valley() >= 0

    def test_web_peaks_daytime(self, synth):
        personality = InstancePersonality(0.0, 1.0, 1.0)
        trace = synth.instance_trace(web_profile(), personality)
        assert 10 <= trace.peak_hour() <= 18

    def test_db_peaks_nighttime(self, synth):
        personality = InstancePersonality(0.0, 1.0, 1.0)
        trace = synth.instance_trace(db_profile(), personality)
        peak_hour = trace.peak_hour()
        assert peak_hour <= 6 or peak_hour >= 22

    def test_hadoop_flat(self, synth):
        personality = InstancePersonality(0.0, 1.0, 1.0)
        trace = synth.instance_trace(hadoop_profile(), personality)
        assert trace.peak_to_mean() < 1.5

    def test_web_swings_harder_than_hadoop(self, synth):
        personality = InstancePersonality(0.0, 1.0, 1.0)
        web = synth.instance_trace(web_profile(), personality)
        hadoop = synth.instance_trace(hadoop_profile(), personality)
        assert web.peak_to_mean() > hadoop.peak_to_mean()

    def test_determinism(self):
        a = TraceSynthesizer(weeks=2, step_minutes=30, seed=9).instance_trace(
            web_profile()
        )
        b = TraceSynthesizer(weeks=2, step_minutes=30, seed=9).instance_trace(
            web_profile()
        )
        assert a == b

    def test_different_seeds_differ(self):
        a = TraceSynthesizer(weeks=2, step_minutes=30, seed=1).instance_trace(
            web_profile()
        )
        b = TraceSynthesizer(weeks=2, step_minutes=30, seed=2).instance_trace(
            web_profile()
        )
        assert a != b

    def test_phase_offset_shifts_peak(self, synth):
        early = synth.instance_trace(
            web_profile(), InstancePersonality(-3.0, 1.0, 1.0)
        )
        late = synth.instance_trace(
            web_profile(), InstancePersonality(3.0, 1.0, 1.0)
        )
        assert early.peak_hour() < late.peak_hour()

    def test_amplitude_scale_raises_peak(self, synth):
        small = synth.instance_trace(
            web_profile(), InstancePersonality(0.0, 0.5, 1.0)
        )
        big = synth.instance_trace(
            web_profile(), InstancePersonality(0.0, 1.5, 1.0)
        )
        assert big.peak() > small.peak()


class TestPersonality:
    def test_draw_within_bounds(self, rng):
        for _ in range(50):
            p = draw_personality(web_profile(), rng)
            assert 0.2 <= p.amplitude_scale <= 3.0
            assert 0.2 <= p.baseline_scale <= 3.0

    def test_negative_scales_rejected(self):
        with pytest.raises(ValueError):
            InstancePersonality(0.0, -1.0, 1.0)

    def test_zero_jitter_profile_gives_unit_scales(self, rng):
        profile = web_profile().with_heterogeneity(0.0)
        p = draw_personality(profile, rng)
        assert p.phase_offset_hours == 0.0
        assert p.amplitude_scale == pytest.approx(1.0)
        assert p.baseline_scale == pytest.approx(1.0)


class TestFleetGeneration:
    def test_service_instances_metadata(self, synth):
        records = synth.service_instances(web_profile(), 5)
        assert len(records) == 5
        assert all(r.service == "web" for r in records)
        assert all(r.kind == ServiceKind.LATENCY_CRITICAL for r in records)
        assert len({r.instance_id for r in records}) == 5

    def test_service_instances_train_test_split(self, synth):
        records = synth.service_instances(web_profile(), 2, test_weeks=1)
        for record in records:
            assert record.training_trace.grid.n_weeks == 1
            assert record.test_trace is not None

    def test_count_must_be_positive(self, synth):
        with pytest.raises(ValueError):
            synth.service_instances(web_profile(), 0)

    def test_fleet_concatenates(self, synth):
        records = synth.fleet([(web_profile(), 3), (db_profile(), 2)])
        assert len(records) == 5
        assert {r.service for r in records} == {"web", "db"}

    def test_training_trace_set(self, synth):
        records = synth.fleet([(web_profile(), 3)])
        ts = training_trace_set(records)
        assert len(ts) == 3
        assert ts.grid.n_weeks == 1

    def test_test_trace_set(self, synth):
        records = synth.fleet([(web_profile(), 3)])
        ts = heldout_trace_set(records)
        assert len(ts) == 3

    def test_test_trace_set_requires_test_weeks(self, synth):
        records = synth.service_instances(web_profile(), 2, test_weeks=0)
        with pytest.raises(ValueError):
            heldout_trace_set(records)

    def test_instance_heterogeneity_visible(self):
        """Instances of the same service should not be identical."""
        synth = TraceSynthesizer(weeks=2, step_minutes=30, seed=3)
        records = synth.service_instances(web_profile(), 6)
        peaks = [r.training_trace.peak() for r in records]
        assert np.std(peaks) > 0

    def test_averaging_suppresses_noise(self):
        """The averaged I-trace should be smoother than any single week."""
        synth = TraceSynthesizer(weeks=3, step_minutes=30, seed=4)
        raw = synth.instance_trace(web_profile(), InstancePersonality(0, 1, 1))
        averaged = raw.average_weeks()
        weekly_stds = [w.values.std() for w in raw.split_weeks()]
        # Averaging cannot increase time-of-week variance beyond a single
        # week's (noise cancels; only the shared diurnal signal remains).
        assert averaged.values.std() <= max(weekly_stds) * 1.05
