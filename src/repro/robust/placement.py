"""Γ-robust service placement: sorted first-fit over robust headroom.

The workload-aware placer in :mod:`repro.core.placement` minimises the
*nominal* aggregate peak by spreading asynchronous instances; it is blind
to spikes.  :class:`RobustPlacer` instead guarantees a budget property:
after placement, every budgeted power node can absorb any ``Γ`` of its
instances spiking to ``p_c + p_r`` simultaneously without breaching its
budget (when a Γ-feasible placement exists for the heuristic to find).

Two strategies share the incremental Γ-sum machinery of
:class:`~repro.robust.headroom.RobustHeadroomIndex` (each membership
change costs ``O(depth × log n)``):

* ``"swap"`` (default) — start from the nominal workload-aware placement
  and run a swap loop: repeatedly trade the largest radius on the most
  protection-burdened leaf against a smaller radius of similar nominal
  draw elsewhere.  Swapping (instead of moving) spreads spike risk while
  preserving the balanced clean peaks the seed placement earned.
* ``"first_fit"`` — first-fit decreasing, the classic bin-packing
  workhorse: instances sorted by worst-case draw ``p_c + p_r`` (largest
  first), each assigned to the leaf whose budgeted root path keeps the
  leximin-best Γ-robust slack after the add.

At ``Γ = 0`` there is nothing robust to protect, so both fall back to
the nominal workload-aware placement and its asynchrony-aware peak
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..core.placement import PlacementConfig, PlacementResult, WorkloadAwarePlacer
from ..infra.assignment import Assignment, AssignmentError
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord
from .headroom import GammaAccountant, RobustHeadroomIndex
from .uncertainty import DEFAULT_NOMINAL_PERCENTILE, UncertainPowerModel

__all__ = [
    "STRATEGIES",
    "RobustPlacementConfig",
    "RobustPlacementResult",
    "RobustPlacer",
]


#: Placement strategies the robust placer knows.
STRATEGIES = ("swap", "first_fit")


@dataclass(frozen=True)
class RobustPlacementConfig:
    """Tuning knobs for the Γ-robust placer.

    Attributes
    ----------
    gamma:
        Protection level: how many co-located instances may spike to their
        maximum simultaneously without breaching any budget.  ``0`` falls
        back to the nominal workload-aware placement.
    strategy:
        ``"swap"`` (default) seeds from the nominal workload-aware
        placement and spreads spike radii by swapping similar-nominal
        instances, keeping the nominal peaks the asynchrony-aware placer
        earned; ``"first_fit"`` is the classic sorted first-fit-decreasing
        pass over robust headroom.
    nominal_percentile / radius_scale:
        Forwarded to :meth:`UncertainPowerModel.from_records` when no
        model is supplied explicitly.
    swap_nominal_tolerance_watts:
        Maximum nominal-draw mismatch the swap strategy accepts between
        exchanged instances (large values spread radii faster but perturb
        the clean peaks more).
    max_swaps:
        Hard cap on swap-strategy iterations.
    nominal:
        Configuration for the underlying workload-aware placer (the Γ=0
        fallback, and the seed placement of the swap strategy).
    """

    gamma: int = 0
    strategy: str = "swap"
    nominal_percentile: float = DEFAULT_NOMINAL_PERCENTILE
    radius_scale: float = 1.0
    swap_nominal_tolerance_watts: float = 100.0
    max_swaps: int = 1000
    nominal: PlacementConfig = field(default_factory=PlacementConfig)

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: {STRATEGIES}"
            )
        if self.swap_nominal_tolerance_watts < 0:
            raise ValueError("swap tolerance cannot be negative")
        if self.max_swaps < 0:
            raise ValueError("max_swaps cannot be negative")


@dataclass
class RobustPlacementResult:
    """A placement plus the uncertainty bookkeeping that produced it."""

    assignment: Assignment
    model: UncertainPowerModel
    gamma: int
    #: Live Γ-accountants for every node under the final assignment.
    index: RobustHeadroomIndex
    #: node name → budget − Γ-robust load, for every budgeted node.
    robust_headroom: Dict[str, float]
    #: Instances for which no leaf kept every budgeted ancestor Γ-feasible
    #: (they were placed on the least-bad leaf instead; first-fit strategy
    #: only — the swap strategy always places everything).
    infeasible: List[str] = field(default_factory=list)
    #: Diagnostics of the nominal fallback run, present only at Γ = 0.
    fallback: Optional[PlacementResult] = None
    #: Swap-strategy iterations actually performed.
    n_swaps: int = 0

    @property
    def is_feasible(self) -> bool:
        return not self.infeasible

    def min_headroom(self) -> float:
        """Scarcest budgeted robust headroom (inf if nothing is budgeted)."""
        if not self.robust_headroom:
            return float("inf")
        return min(self.robust_headroom.values())


class RobustPlacer:
    """First-fit-decreasing placement over Γ-robust headroom."""

    def __init__(self, config: Optional[RobustPlacementConfig] = None) -> None:
        self.config = config if config is not None else RobustPlacementConfig()

    # ------------------------------------------------------------------
    def place(
        self,
        records: Sequence[InstanceRecord],
        topology: PowerTopology,
        *,
        model: Optional[UncertainPowerModel] = None,
    ) -> RobustPlacementResult:
        """Derive a Γ-robust assignment of ``records`` onto ``topology``.

        ``model`` overrides the trace-derived uncertainty model — useful
        for what-if studies with hardened radii.
        """
        if not records:
            raise ValueError("nothing to place")
        if model is None:
            model = UncertainPowerModel.from_records(
                records,
                nominal_percentile=self.config.nominal_percentile,
                radius_scale=self.config.radius_scale,
            )
        gamma = self.config.gamma
        if gamma == 0:
            return self._place_nominal(records, topology, model)
        if self.config.strategy == "swap":
            return self._place_swap(records, topology, model)
        return self._place_first_fit(records, topology, model)

    # ------------------------------------------------------------------
    def _place_first_fit(
        self,
        records: Sequence[InstanceRecord],
        topology: PowerTopology,
        model: UncertainPowerModel,
    ) -> RobustPlacementResult:
        gamma = self.config.gamma
        capacity = topology.total_leaf_capacity()
        if capacity is not None and len(records) > capacity:
            raise AssignmentError(
                f"{len(records)} instances exceed total leaf capacity {capacity}"
            )
        with obs.span("robust_place", instances=len(records), gamma=gamma):
            index = RobustHeadroomIndex(topology, model, gamma)
            budgets = {
                node.name: node.budget_watts
                for node in topology.nodes()
                if node.budget_watts is not None
            }
            leaves = topology.leaves()
            occupancy = {leaf.name: 0 for leaf in leaves}
            infeasible: List[str] = []

            # First-fit decreasing: the fattest worst-case draws claim
            # headroom first, while every leaf still has slack to offer.
            order = sorted(
                records,
                key=lambda r: (-model.upper(r.instance_id), r.instance_id),
            )
            for record in order:
                iid = record.instance_id
                open_leaves = [
                    leaf
                    for leaf in leaves
                    if leaf.capacity is None or occupancy[leaf.name] < leaf.capacity
                ]
                if not open_leaves:
                    raise AssignmentError(
                        f"no leaf has capacity left for instance {iid!r}"
                    )
                fitting = [
                    leaf for leaf in open_leaves if index.fits(iid, leaf.name, budgets)
                ]
                if not fitting:
                    # Γ-infeasible: record it and take the least-bad leaf so
                    # the rest of the fleet still gets placed sensibly.
                    infeasible.append(iid)
                    fitting = open_leaves
                # Leximin over the path's post-add headrooms: maximise the
                # scarcest level first, then the next-scarcest, and so on.
                # A plain max-min key goes blind once a shared ancestor is
                # the bottleneck for every candidate; the deeper vector
                # entries keep ranking leaves by their local slack.
                best = min(
                    fitting,
                    key=lambda leaf: (
                        tuple(
                            -s
                            for s in index.slack_vector_if_added(
                                iid, leaf.name, budgets
                            )
                        ),
                        occupancy[leaf.name],
                        leaf.name,
                    ),
                )
                index.place(iid, best.name)
                occupancy[best.name] += 1

            assignment = Assignment(topology, index.as_mapping())
            obs.count("robust_place.instances_placed", len(records))
            if infeasible:
                obs.count("robust_place.infeasible", len(infeasible))
            headroom = {
                name: index.accountants[name].headroom(budget)
                for name, budget in budgets.items()
            }
            return RobustPlacementResult(
                assignment=assignment,
                model=model,
                gamma=gamma,
                index=index,
                robust_headroom=headroom,
                infeasible=infeasible,
            )

    # ------------------------------------------------------------------
    def _place_swap(
        self,
        records: Sequence[InstanceRecord],
        topology: PowerTopology,
        model: UncertainPowerModel,
    ) -> RobustPlacementResult:
        """Seed from the nominal placement, then spread radii by swapping.

        Moving an instance between leaves would shift its whole nominal
        draw and unbalance the clean peaks the workload-aware seed earned;
        *swapping* two instances of similar nominal draw moves spike risk
        while leaving both leaves' nominal profiles nearly untouched.  Each
        round takes the leaf with the heaviest protection burden and trades
        its largest radius against a smaller one elsewhere.

        The burden is ranked lexicographically by ``(top-Γ sum, Σ radii)``.
        The second term matters: a leaf holding Γ+1 large radii has the same
        top-Γ sum before and after shedding one of them, so a pure top-Γ
        objective would call that swap worthless and strand the surplus
        spike where it sits.
        """
        gamma = self.config.gamma
        tolerance = self.config.swap_nominal_tolerance_watts
        nominal_result = WorkloadAwarePlacer(self.config.nominal).place(
            records, topology
        )
        mapping = dict(nominal_result.assignment.as_mapping())
        with obs.span(
            "robust_place", instances=len(records), gamma=gamma, strategy="swap"
        ):
            accountants: Dict[str, GammaAccountant] = {}
            for iid, leaf_name in mapping.items():
                accountants.setdefault(leaf_name, GammaAccountant(gamma)).add(
                    iid, model.nominal_of(iid), model.radius_of(iid)
                )

            def burden(leaf_name: str) -> tuple:
                acc = accountants[leaf_name]
                return (acc.top_sum, acc.radius_sum)

            n_swaps = 0
            frozen: set = set()
            while n_swaps < self.config.max_swaps:
                live = [name for name in accountants if name not in frozen]
                if not live:
                    break
                worst_name = max(live, key=burden)
                worst = accountants[worst_name]
                movers = sorted(
                    worst.members, key=lambda m: -model.radius_of(m)
                )[: gamma + 1]
                best = None
                for i in movers:
                    radius_i = model.radius_of(i)
                    nominal_i = model.nominal_of(i)
                    for other_name, other in accountants.items():
                        if other_name == worst_name:
                            continue
                        for j in other.members:
                            radius_j = model.radius_of(j)
                            if radius_j >= radius_i:
                                continue
                            nominal_j = model.nominal_of(j)
                            if abs(nominal_j - nominal_i) > tolerance:
                                continue
                            before = max(burden(worst_name), burden(other_name))
                            worst.remove(i)
                            other.remove(j)
                            worst.add(j, nominal_j, radius_j)
                            other.add(i, nominal_i, radius_i)
                            after = max(burden(worst_name), burden(other_name))
                            worst.remove(j)
                            other.remove(i)
                            worst.add(i, nominal_i, radius_i)
                            other.add(j, nominal_j, radius_j)
                            if after < before:
                                gain = (
                                    before[0] - after[0],
                                    before[1] - after[1],
                                )
                                if best is None or gain > best[0]:
                                    best = (gain, i, other_name, j)
                if best is None:
                    frozen.add(worst_name)
                    continue
                _, i, other_name, j = best
                other = accountants[other_name]
                radius_i, nominal_i = model.radius_of(i), model.nominal_of(i)
                radius_j, nominal_j = model.radius_of(j), model.nominal_of(j)
                worst.remove(i)
                other.remove(j)
                worst.add(j, nominal_j, radius_j)
                other.add(i, nominal_i, radius_i)
                mapping[i] = other_name
                mapping[j] = worst_name
                n_swaps += 1

            index = RobustHeadroomIndex(topology, model, gamma)
            for iid, leaf_name in mapping.items():
                index.place(iid, leaf_name)
            obs.count("robust_place.instances_placed", len(records))
            obs.count("robust_place.swaps", n_swaps)
            headroom = {
                node.name: index.accountants[node.name].headroom(
                    node.budget_watts
                )
                for node in topology.nodes()
                if node.budget_watts is not None
            }
            return RobustPlacementResult(
                assignment=Assignment(topology, mapping),
                model=model,
                gamma=gamma,
                index=index,
                robust_headroom=headroom,
                infeasible=[],
                n_swaps=n_swaps,
            )

    # ------------------------------------------------------------------
    def _place_nominal(
        self,
        records: Sequence[InstanceRecord],
        topology: PowerTopology,
        model: UncertainPowerModel,
    ) -> RobustPlacementResult:
        """Γ = 0: delegate to the workload-aware placer, keep the robust
        bookkeeping so callers see one result shape at every Γ."""
        nominal_result = WorkloadAwarePlacer(self.config.nominal).place(
            records, topology
        )
        index = RobustHeadroomIndex(topology, model, 0)
        for iid, leaf_name in nominal_result.assignment.as_mapping().items():
            index.place(iid, leaf_name)
        headroom = {
            node.name: index.accountants[node.name].headroom(node.budget_watts)
            for node in topology.nodes()
            if node.budget_watts is not None
        }
        return RobustPlacementResult(
            assignment=nominal_result.assignment,
            model=model,
            gamma=0,
            index=index,
            robust_headroom=headroom,
            infeasible=[],
            fallback=nominal_result,
        )
