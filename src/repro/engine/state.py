"""Shared simulation state: fleet description, per-run state, artifacts.

:class:`FleetDescription` and :class:`ScenarioResult` are the canonical
homes of the dataclasses that historically lived in
``repro.reshaping.runtime`` (which still re-exports them for backward
compatibility).  :class:`FleetState` is the mutable value object the
engine's policy pipeline edits in place of the parallel bookkeeping each
legacy runtime kept by hand, and :class:`RunArtifacts` is the uniform
return type of :meth:`repro.engine.Engine.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..sim.demand import DemandTrace
from ..sim.power_model import ServerPowerModel
from ..traces.grid import TimeGrid
from ..traces.series import PowerTrace

# The placement-side state owner lives in repro.engine.delta (with the
# FleetDelta value objects it fans out); re-exported here because it is
# the placement counterpart of the scenario-run FleetState below.
from .delta import FleetDelta, Move, PlacementState  # noqa: F401


@dataclass(frozen=True)
class FleetDescription:
    """The original fleet the reshaping runtime operates on.

    ``other_power`` carries the exogenous draw of servers that are neither
    LC nor Batch (storage, dev, ...) straight from their test traces.
    """

    n_lc: int
    n_batch: int
    lc_model: ServerPowerModel
    batch_model: ServerPowerModel
    budget_watts: float
    other_power: Optional[PowerTrace] = None

    def __post_init__(self) -> None:
        if self.n_lc <= 0:
            raise ValueError("fleet needs at least one LC server")
        if self.n_batch < 0:
            raise ValueError("n_batch cannot be negative")
        if self.budget_watts <= 0:
            raise ValueError("budget must be positive")


@dataclass
class ScenarioResult:
    """Time series and summaries for one simulated scenario."""

    name: str
    grid: TimeGrid
    budget_watts: float
    demand: np.ndarray
    lc_served: np.ndarray
    lc_dropped: np.ndarray
    load_on_original: np.ndarray
    per_server_load: np.ndarray
    n_lc_active: np.ndarray
    n_batch_active: np.ndarray
    batch_throughput: np.ndarray
    batch_freq: np.ndarray
    total_power: np.ndarray
    #: Conversion servers idling between modes (OS up, no work), per step.
    parked: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def lc_total(self) -> float:
        return float(self.lc_served.sum())

    def batch_total(self) -> float:
        return float(self.batch_throughput.sum())

    def dropped_fraction(self) -> float:
        total = float(self.demand.sum())
        if total == 0:
            return 0.0
        return float(self.lc_dropped.sum()) / total

    def power_slack(self) -> np.ndarray:
        """Instantaneous slack (Eq. 1); negative values mean overload."""
        return self.budget_watts - self.total_power

    def mean_slack(self) -> float:
        return float(self.power_slack().mean())

    def energy_slack(self) -> float:
        """Eq. 2 over the whole scenario, in watt-minutes."""
        return float(self.power_slack().sum()) * self.grid.step_minutes

    def overload_steps(self) -> int:
        return int(np.sum(self.total_power > self.budget_watts + 1e-9))

    def peak_power(self) -> float:
        return float(self.total_power.max())


@dataclass
class FleetState:
    """The per-run mutable state the policy pipeline edits.

    One instance per :meth:`Engine.run`: policies mutate the plan arrays
    (active server counts, batch frequency, parked extras) and record what
    faults removed (lost-server masks); the engine assembles the final
    :class:`ScenarioResult` from whatever the pipeline left here.
    """

    fleet: FleetDescription
    demand: DemandTrace
    #: Per-step planned LC / batch server counts and batch DVFS frequency.
    n_lc_active: np.ndarray
    n_batch_active: np.ndarray
    batch_freq: np.ndarray
    #: Conversion servers idling between modes, per step (``None`` = none).
    parked: Optional[np.ndarray] = None
    #: Per-step servers taken offline by failures (``None`` until a
    #: failure policy runs).
    lost_lc: Optional[np.ndarray] = None
    lost_batch: Optional[np.ndarray] = None
    #: Per-step exogenous extra draw injected by fault policies (correlated
    #: power-spike bursts); ``None`` until a spike policy runs.
    extra_power: Optional[np.ndarray] = None

    @classmethod
    def initial(cls, fleet: FleetDescription, demand: DemandTrace) -> "FleetState":
        """The pre-reshaping plan: whole fleet on, nominal frequency."""
        n = demand.grid.n_samples
        return cls(
            fleet=fleet,
            demand=demand,
            n_lc_active=np.full(n, float(fleet.n_lc)),
            n_batch_active=np.full(n, float(fleet.n_batch)),
            batch_freq=np.ones(n),
        )

    @property
    def n_samples(self) -> int:
        return self.demand.grid.n_samples


@dataclass
class RunArtifacts:
    """Everything one :meth:`Engine.run` produced.

    ``result`` is the scenario outcome (a :class:`ScenarioResult`, a
    :class:`~repro.engine.faults.ChaosRunResult`, or a chaos-harness
    outcome, depending on the spec).  ``events`` is the structured event
    log active during the run (``None`` when no recording was installed),
    ``telemetry`` the flight-recorder summary, and ``metrics`` a snapshot
    of the process-global counters.
    """

    spec: Any
    result: Any
    events: Optional[Any] = None
    telemetry: Optional[Dict[str, Any]] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def scenario(self) -> Optional[ScenarioResult]:
        """The final :class:`ScenarioResult`, unwrapped from chaos results."""
        result = self.result
        if hasattr(result, "reshaping"):  # chaos-harness outcome
            result = result.reshaping
        if hasattr(result, "scenario"):  # ChaosRunResult
            result = result.scenario
        return result if isinstance(result, ScenarioResult) else None
