"""Oblivious (service-grouped) placement — the paper's baseline.

"In such a datacenter, instances of the same services are typically placed
together" (Sec. 1): service teams rack their machines contiguously, so
synchronous instances share sub-trees and fragment the power budget.

A ``mixing`` knob interpolates toward a random placement: the paper observes
that DC1's original placement was already fairly balanced while DC3's was
strongly service-grouped (Sec. 5.2.1), which is why DC3 gains most.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..infra.assignment import Assignment, AssignmentError
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord


def oblivious_placement(
    records: Sequence[InstanceRecord],
    topology: PowerTopology,
    *,
    mixing: float = 0.0,
    seed: int = 0,
) -> Assignment:
    """Fill leaves depth-first with instances grouped by service.

    Parameters
    ----------
    mixing:
        Fraction of instances whose positions are randomly permuted after
        the service-sort; 0.0 = pure service grouping, 1.0 = fully random.
    seed:
        RNG seed for the mixing permutation.
    """
    if not 0.0 <= mixing <= 1.0:
        raise ValueError(f"mixing must be in [0, 1], got {mixing}")
    if not records:
        raise ValueError("nothing to place")

    ordered = sorted(records, key=lambda r: (r.service, r.instance_id))
    if mixing > 0.0:
        rng = np.random.default_rng(seed)
        n = len(ordered)
        k = int(round(mixing * n))
        if k >= 2:
            chosen = rng.choice(n, size=k, replace=False)
            shuffled = chosen.copy()
            rng.shuffle(shuffled)
            items = list(ordered)
            for src, dst in zip(chosen, shuffled):
                items[dst] = ordered[src]
            ordered = items

    return fill_leaves_in_order(ordered, topology)


def fill_leaves_in_order(
    records: Sequence[InstanceRecord], topology: PowerTopology
) -> Assignment:
    """Lay instances across leaves contiguously, every leaf populated.

    Leaves are visited in tree order and each receives an (almost) equal
    share, so consecutive instances land in the same sub-tree — the "racked
    together" behaviour — while no rack sits dark.  Real datacenters do not
    leave entire racks unpowered; they rack service rows side by side.
    """
    leaves = topology.leaves()
    capacity = topology.total_leaf_capacity()
    if capacity is not None and len(records) > capacity:
        raise AssignmentError(
            f"{len(records)} instances exceed total capacity {capacity}"
        )
    shares = _balanced_shares(len(records), leaves)
    mapping: Dict[str, str] = {}
    cursor = 0
    used = 0
    for record in records:
        while used >= shares[cursor]:
            cursor += 1
            used = 0
            if cursor >= len(leaves):
                raise AssignmentError("ran out of leaf capacity during fill")
        mapping[record.instance_id] = leaves[cursor].name
        used += 1
    return Assignment(topology, mapping)


def _balanced_shares(n: int, leaves) -> List[int]:
    """Near-equal per-leaf shares, honouring capacities via waterfill."""
    count = len(leaves)
    shares = [n // count + (1 if i < n % count else 0) for i in range(count)]
    for _ in range(count):
        overflow = 0
        for i, leaf in enumerate(leaves):
            if leaf.capacity is not None and shares[i] > leaf.capacity:
                overflow += shares[i] - leaf.capacity
                shares[i] = leaf.capacity
        if overflow == 0:
            break
        for i, leaf in enumerate(leaves):
            if overflow == 0:
                break
            room = float("inf") if leaf.capacity is None else leaf.capacity - shares[i]
            take = int(min(room, overflow))
            shares[i] += take
            overflow -= take
    return shares
