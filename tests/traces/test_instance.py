"""Unit tests for service instances and I-trace construction (Eq. 3-4)."""

import numpy as np
import pytest

from repro.traces import (
    InstanceRecord,
    PowerTrace,
    ServiceInstance,
    ServiceKind,
    TimeGrid,
    average_instance_trace,
    group_by_service,
)


@pytest.fixture
def week():
    return TimeGrid.for_weeks(1, step_minutes=6 * 60)


def make_instance(name="web-0", service="web"):
    return ServiceInstance(name, service, ServiceKind.LATENCY_CRITICAL)


class TestServiceInstance:
    def test_valid(self):
        inst = make_instance()
        assert inst.instance_id == "web-0"
        assert inst.kind == ServiceKind.LATENCY_CRITICAL

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            ServiceInstance("", "web")

    def test_empty_service_rejected(self):
        with pytest.raises(ValueError):
            ServiceInstance("x", "")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServiceInstance("x", "web", kind="mystery")

    def test_frozen(self):
        inst = make_instance()
        with pytest.raises(Exception):
            inst.service = "other"


class TestAveraging:
    def test_average_of_two_weeks(self, week):
        w1 = PowerTrace.constant(week, 10)
        w2 = PowerTrace.constant(week, 20)
        averaged = average_instance_trace([w1, w2])
        assert averaged.mean() == pytest.approx(15.0)

    def test_average_elementwise(self, week):
        n = week.n_samples
        w1 = PowerTrace(week, np.arange(n, dtype=float))
        w2 = PowerTrace(week, np.arange(n, dtype=float) * 3)
        averaged = average_instance_trace([w1, w2])
        assert averaged.values[5] == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_instance_trace([])

    def test_shape_mismatch_rejected(self, week):
        other = TimeGrid.for_weeks(1, step_minutes=12 * 60)
        with pytest.raises(ValueError):
            average_instance_trace(
                [PowerTrace.constant(week, 1), PowerTrace.constant(other, 1)]
            )


class TestInstanceRecord:
    def test_from_weeks_splits_train_test(self, week):
        weeks = [PowerTrace.constant(week, v) for v in (10, 20, 60)]
        record = InstanceRecord.from_weeks(make_instance(), weeks, test_weeks=1)
        assert record.training_trace.mean() == pytest.approx(15.0)
        assert record.test_trace.mean() == pytest.approx(60.0)

    def test_from_weeks_no_test(self, week):
        weeks = [PowerTrace.constant(week, v) for v in (10, 20)]
        record = InstanceRecord.from_weeks(make_instance(), weeks, test_weeks=0)
        assert record.test_trace is None
        assert record.training_trace.mean() == pytest.approx(15.0)

    def test_from_weeks_needs_enough_weeks(self, week):
        with pytest.raises(ValueError):
            InstanceRecord.from_weeks(
                make_instance(), [PowerTrace.constant(week, 1)], test_weeks=1
            )

    def test_negative_test_weeks_rejected(self, week):
        with pytest.raises(ValueError):
            InstanceRecord.from_weeks(
                make_instance(), [PowerTrace.constant(week, 1)], test_weeks=-1
            )

    def test_delegated_properties(self, week):
        record = InstanceRecord.from_weeks(
            make_instance("db-3", "db"),
            [PowerTrace.constant(week, 1)] * 2,
        )
        assert record.instance_id == "db-3"
        assert record.service == "db"
        assert record.kind == ServiceKind.LATENCY_CRITICAL


class TestGrouping:
    def test_group_by_service(self, week):
        records = [
            InstanceRecord.from_weeks(
                ServiceInstance(f"{svc}-{i}", svc),
                [PowerTrace.constant(week, 1)] * 2,
            )
            for svc in ("web", "db")
            for i in range(2)
        ]
        grouped = group_by_service(records)
        assert set(grouped) == {"web", "db"}
        assert len(grouped["web"]) == 2
