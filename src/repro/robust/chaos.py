"""Spike-burst chaos scenarios: robust vs. nominal placement, head to head.

Each :class:`SpikeScenario` pits two placements of the same fleet against
the adversary the Γ-robust accounting models.  The uncertainty model is
hardened with a *spike minority* — a seeded fraction of instances whose
radius is a fixed burst amplitude, the heavy tail (deploy waves, cache
flushes) that trace history on a well-behaved fleet underestimates.  Both
the placer and the injector see the same model: the adversary never steps
outside what the robust placement budgeted for.

At burst times, the ``burst_group`` largest-radius instances under every
target node simultaneously jump from their trace to ``trace + p_r`` — a
correlated spike at the protection boundary.  One burst per node is aimed
at that node's own aggregate peak (the worst possible moment for *that*
placement); the rest land at per-node seeded random times shared by both
placements.

Budgets are provisioned the way breakers are actually rated: each target
node gets ``(1 + budget_margin) ×`` its own clean aggregate peak, so any
violation the audit sees is spike-induced by construction, and the cost of
robustness is the extra capacity the robust placement needs to reach the
same margin (near zero for the swap strategy, which preserves the nominal
peaks).  The safety outcome is measured through the existing observability
stack — :func:`repro.obs.telemetry.record_view` emits one ``violation``
event per contiguous over-budget run and
:func:`repro.infra.breaker.audit_view` one ``breaker_trip`` per persistent
overload — never recomputed on the side.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..obs import telemetry as obs_telemetry
from ..analysis import experiments
from ..analysis.report import format_percent, format_table
from ..core.placement import PlacementConfig, WorkloadAwarePlacer
from ..infra.aggregation import NodePowerView
from ..infra.breaker import BreakerModel, audit_view
from ..infra.topology import Level
from ..traces.traceset import TraceSet
from .placement import RobustPlacementConfig, RobustPlacer
from .uncertainty import UncertainPowerModel

__all__ = [
    "SPIKE_SUITE",
    "PlacementUnderSpikes",
    "RobustScenarioOutcome",
    "SpikeScenario",
    "format_robust_table",
    "run_robust_scenario",
    "run_robust_suite",
    "spike_scenario_by_name",
]


@dataclass(frozen=True)
class SpikeScenario:
    """One named robust-vs-nominal comparison under correlated spikes."""

    name: str
    description: str
    #: Protection level of the robust placement under test (0 = control:
    #: the robust placer falls back to the nominal placement).
    gamma: int
    #: How many top-radius instances per target node spike simultaneously.
    burst_group: int
    n_bursts: int = 3
    burst_duration_samples: int = 3
    #: Level whose budgeted nodes are attacked (and whose headroom is
    #: reported).
    target_level: str = Level.RPP
    #: Heavy-tail model: this fraction of instances (seeded draw) gets a
    #: spike radius of ``spike_watts`` — both in the model the placer sees
    #: and in the injected bursts.
    spiky_fraction: float = 0.10
    spike_watts: float = 230.0
    #: Breaker rating margin over each node's clean aggregate peak.
    budget_margin: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")
        if self.burst_group <= 0:
            raise ValueError("burst_group must be positive")
        if self.n_bursts <= 0:
            raise ValueError("n_bursts must be positive")
        if self.burst_duration_samples <= 0:
            raise ValueError("burst_duration_samples must be positive")
        if not 0.0 <= self.spiky_fraction <= 1.0:
            raise ValueError("spiky_fraction must be in [0, 1]")
        if self.spike_watts < 0:
            raise ValueError("spike_watts cannot be negative")
        if self.budget_margin < 0:
            raise ValueError("budget_margin cannot be negative")


@dataclass
class PlacementUnderSpikes:
    """Safety + provisioning readout for one placement under the bursts."""

    label: str
    #: Over-budget samples summed over VIOLATION events at budgeted nodes.
    violation_steps: int
    violation_events: int
    breaker_trips: int
    #: Breaker capacity provisioned over the target nodes (Σ budgets).
    provisioned_watts: float
    #: Clean-week headroom (budget − aggregate peak) over target nodes.
    mean_headroom_watts: float
    min_headroom_watts: float
    event_counts: Dict[str, int] = field(default_factory=dict)


@dataclass
class RobustScenarioOutcome:
    """Everything one spike scenario measured."""

    scenario: SpikeScenario
    dc_name: str
    nominal: PlacementUnderSpikes
    robust: PlacementUnderSpikes
    #: Instances the robust placer could not place Γ-feasibly (first-fit
    #: strategy only; the swap strategy always places everything).
    n_infeasible: int
    #: Swap-strategy iterations the robust placement needed.
    n_swaps: int = 0

    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        return self.scenario.gamma

    @property
    def avoided_violation_fraction(self) -> float:
        """Share of the nominal placement's violation steps the robust one
        avoided (vacuously 1.0 when the nominal placement never violated)."""
        if self.nominal.violation_steps == 0:
            return 1.0
        return 1.0 - self.robust.violation_steps / self.nominal.violation_steps

    @property
    def avoided_trip_fraction(self) -> float:
        if self.nominal.breaker_trips == 0:
            return 1.0
        return 1.0 - self.robust.breaker_trips / self.nominal.breaker_trips

    @property
    def headroom_sacrifice_fraction(self) -> float:
        """Extra breaker capacity the robust placement must provision to
        reach the same margin, relative to the nominal placement (can be
        negative when the robust placement happens to smooth better)."""
        if self.nominal.provisioned_watts <= 0:
            return 0.0
        return (
            self.robust.provisioned_watts / self.nominal.provisioned_watts
            - 1.0
        )

    @property
    def headroom_per_violation_avoided(self) -> float:
        """Watts of extra provisioned capacity per violation step avoided."""
        avoided = self.nominal.violation_steps - self.robust.violation_steps
        if avoided <= 0:
            return 0.0
        extra = max(
            self.robust.provisioned_watts - self.nominal.provisioned_watts,
            0.0,
        )
        return extra / avoided


# ----------------------------------------------------------------------
# the named suite
# ----------------------------------------------------------------------
SPIKE_SUITE: Tuple[SpikeScenario, ...] = (
    SpikeScenario(
        name="gamma_zero_control",
        description="Γ=0 control — robust placement degenerates to nominal",
        gamma=0,
        burst_group=2,
        seed=41,
    ),
    SpikeScenario(
        name="pair_spike",
        description="two top-radius instances per RPP spike at once (Γ=2)",
        gamma=2,
        burst_group=2,
        seed=42,
    ),
    SpikeScenario(
        name="quad_spike",
        description="four-way correlated bursts per RPP (Γ=4)",
        gamma=4,
        burst_group=4,
        seed=43,
    ),
    SpikeScenario(
        name="hardened_spikes",
        description="300 W spike tail under a 30% breaker margin (Γ=2)",
        gamma=2,
        burst_group=2,
        spike_watts=300.0,
        budget_margin=0.30,
        seed=44,
    ),
)


def spike_scenario_by_name(name: str) -> SpikeScenario:
    for scenario in SPIKE_SUITE:
        if scenario.name == name:
            return scenario
    raise KeyError(
        f"unknown spike scenario {name!r}; "
        f"known: {[s.name for s in SPIKE_SUITE]}"
    )


# ----------------------------------------------------------------------
# the head-to-head run
# ----------------------------------------------------------------------
def run_robust_scenario(
    scenario: SpikeScenario,
    *,
    dc_name: str = "DC1",
    n_instances: int = experiments.DEFAULT_N_INSTANCES,
    step_minutes: int = experiments.DEFAULT_STEP_MINUTES,
    weeks: int = experiments.DEFAULT_WEEKS,
) -> RobustScenarioOutcome:
    """Place twice (nominal / Γ-robust), spike both, compare the damage."""
    with obs.span("robust.scenario", scenario=scenario.name):
        obs.count("robust.scenarios_run")
        dc = experiments.get_datacenter(
            dc_name, n_instances=n_instances, step_minutes=step_minutes, weeks=weeks
        )
        test = dc.test_traces()
        model = UncertainPowerModel.from_records(dc.records).with_spike_minority(
            scenario.spiky_fraction, scenario.spike_watts, seed=scenario.seed
        )

        nominal_assignment = (
            WorkloadAwarePlacer(PlacementConfig(seed=0))
            .place(dc.records, dc.topology)
            .assignment
        )
        robust_result = RobustPlacer(
            RobustPlacementConfig(gamma=scenario.gamma)
        ).place(dc.records, dc.topology, model=model)

        # The audit mutates node budgets (breaker ratings per placement);
        # the datacenter object is cached across scenarios, so restore.
        saved_budgets = {
            node.name: node.budget_watts for node in dc.topology.nodes()
        }
        try:
            nominal = _evaluate_placement(
                "nominal", scenario, dc, nominal_assignment, model, test
            )
            robust = _evaluate_placement(
                "robust", scenario, dc, robust_result.assignment, model, test
            )
        finally:
            for node in dc.topology.nodes():
                node.budget_watts = saved_budgets[node.name]
    return RobustScenarioOutcome(
        scenario=scenario,
        dc_name=dc_name,
        nominal=nominal,
        robust=robust,
        n_infeasible=len(robust_result.infeasible),
        n_swaps=robust_result.n_swaps,
    )


def run_robust_suite(
    scenarios: Optional[Sequence[SpikeScenario]] = None,
    *,
    dc_name: str = "DC1",
    **kwargs,
) -> List[RobustScenarioOutcome]:
    """Run every scenario of the suite serially (they share the cached DC)."""
    scenarios = scenarios if scenarios is not None else SPIKE_SUITE
    return [
        run_robust_scenario(scenario, dc_name=dc_name, **kwargs)
        for scenario in scenarios
    ]


def format_robust_table(outcomes: Sequence[RobustScenarioOutcome]) -> str:
    """The suite's safety-vs-headroom trade as one aligned table."""
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.scenario.name,
                outcome.gamma,
                outcome.nominal.violation_steps,
                outcome.robust.violation_steps,
                format_percent(outcome.avoided_violation_fraction, 1),
                outcome.nominal.breaker_trips,
                outcome.robust.breaker_trips,
                format_percent(outcome.headroom_sacrifice_fraction, 2),
                outcome.n_swaps,
            ]
        )
    return format_table(
        [
            "scenario",
            "gamma",
            "viol (nom)",
            "viol (rob)",
            "avoided",
            "trips (nom)",
            "trips (rob)",
            "capacity cost",
            "swaps",
        ],
        rows,
        title=(
            f"Spike chaos — {outcomes[0].dc_name}" if outcomes else "Spike chaos"
        ),
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _burst_windows(
    scenario: SpikeScenario,
    node_name: str,
    clean_values: np.ndarray,
) -> List[Tuple[int, int]]:
    """Burst windows for one node: its own peak, then seeded random times.

    The random times depend only on the scenario seed and the node name, so
    both placements face the same background bursts; the peak-aimed burst
    tracks each placement's own worst moment, which is the *stronger* test.
    """
    n = len(clean_values)
    duration = min(scenario.burst_duration_samples, n)
    windows: List[Tuple[int, int]] = []
    peak_start = int(np.argmax(clean_values))
    peak_start = min(peak_start, n - duration)
    windows.append((peak_start, peak_start + duration))
    rng = np.random.default_rng(
        [scenario.seed, zlib.crc32(node_name.encode()) & 0x7FFFFFFF]
    )
    for _ in range(scenario.n_bursts - 1):
        start = int(rng.integers(0, n - duration + 1))
        windows.append((start, start + duration))
    return windows


def _spiked_traces(
    scenario: SpikeScenario,
    assignment,
    model: UncertainPowerModel,
    test: TraceSet,
    view: NodePowerView,
    target_nodes,
) -> TraceSet:
    """Test traces with the correlated bursts injected for one placement."""
    matrix = test.matrix.copy()
    for node in target_nodes:
        members = assignment.instances_under(node.name)
        if not members:
            continue
        spikers = sorted(members, key=lambda i: (-model.radius_of(i), i))[
            : scenario.burst_group
        ]
        windows = _burst_windows(
            scenario, node.name, view._node_values[node.name]
        )
        for instance_id in spikers:
            row = test.index_of(instance_id)
            radius = model.radius_of(instance_id)
            for start, stop in windows:
                matrix[row, start:stop] += radius
    return TraceSet(test.grid, list(test.ids), matrix)


def _evaluate_placement(
    label: str,
    scenario: SpikeScenario,
    dc,
    assignment,
    model: UncertainPowerModel,
    test: TraceSet,
) -> PlacementUnderSpikes:
    """Spike one placement and read the damage off the event log.

    Budgets are the breaker ratings this placement would be provisioned
    with: ``(1 + margin) ×`` each target node's clean aggregate peak.  Only
    the target nodes carry budgets during the audit, so every event the
    log sees is a target-level, spike-induced excursion.
    """
    target_nodes = list(dc.topology.nodes_at_level(scenario.target_level))
    clean_view = NodePowerView(dc.topology, assignment, test)
    budgets = {
        node.name: (1.0 + scenario.budget_margin)
        * clean_view.node_peak(node.name)
        for node in target_nodes
    }
    for node in dc.topology.nodes():
        node.budget_watts = budgets.get(node.name)
    headrooms = np.array(
        [
            budgets[node.name] - clean_view.node_peak(node.name)
            for node in target_nodes
        ]
    )
    spiked = _spiked_traces(
        scenario, assignment, model, test, clean_view, target_nodes
    )
    spiked_view = NodePowerView(dc.topology, assignment, spiked)
    with obs_events.recording() as log:
        obs_telemetry.record_view(spiked_view, prefix=f"{label}/")
        trips = audit_view(spiked_view, BreakerModel())
    violations = log.by_kind(obs_events.VIOLATION)
    return PlacementUnderSpikes(
        label=label,
        violation_steps=sum(
            int(event.fields.get("duration_samples", 0)) for event in violations
        ),
        violation_events=len(violations),
        breaker_trips=sum(len(t) for t in trips.values()),
        provisioned_watts=float(sum(budgets.values())),
        mean_headroom_watts=float(headrooms.mean()) if len(headrooms) else 0.0,
        min_headroom_watts=float(headrooms.min()) if len(headrooms) else 0.0,
        event_counts=log.counts_by_kind(),
    )
