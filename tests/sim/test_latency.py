"""Unit tests for the M/M/1 latency model and SLO-derived thresholds."""

import numpy as np
import pytest

from repro.reshaping import threshold_from_slo
from repro.sim import LatencyModel


class TestLatencyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(service_time_ms=0)
        with pytest.raises(ValueError):
            LatencyModel(max_load=1.0)

    def test_idle_latency_is_service_time(self):
        model = LatencyModel(service_time_ms=5.0)
        assert model.mean_latency_ms(0.0) == pytest.approx(5.0)

    def test_latency_monotone_in_load(self):
        model = LatencyModel(service_time_ms=5.0)
        loads = np.linspace(0, 0.95, 20)
        latencies = model.mean_latency_ms(loads)
        assert np.all(np.diff(latencies) > 0)

    def test_halfway_doubles(self):
        model = LatencyModel(service_time_ms=4.0)
        assert model.mean_latency_ms(0.5) == pytest.approx(8.0)

    def test_load_clipped(self):
        model = LatencyModel(service_time_ms=5.0, max_load=0.99)
        assert np.isfinite(model.mean_latency_ms(1.5))

    def test_percentile_factor(self):
        model = LatencyModel(service_time_ms=5.0)
        p50 = model.percentile_latency_ms(0.0, percentile=50.0)
        # Exponential median = ln(2) x mean.
        assert p50 == pytest.approx(5.0 * np.log(2))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyModel().percentile_latency_ms(0.5, percentile=100)

    def test_array_input(self):
        model = LatencyModel()
        out = model.percentile_latency_ms(np.array([0.1, 0.5]), 99.0)
        assert out.shape == (2,)


class TestSLOInversion:
    def test_roundtrip(self):
        model = LatencyModel(service_time_ms=5.0)
        load = model.load_for_slo(100.0, percentile=99.0)
        assert model.percentile_latency_ms(load, 99.0) == pytest.approx(100.0, rel=1e-6)

    def test_tighter_slo_lower_load(self):
        model = LatencyModel(service_time_ms=5.0)
        assert model.load_for_slo(50.0) < model.load_for_slo(200.0)

    def test_unachievable_slo(self):
        model = LatencyModel(service_time_ms=5.0)
        with pytest.raises(ValueError):
            model.load_for_slo(1.0, percentile=99.0)

    def test_slo_satisfied(self):
        model = LatencyModel(service_time_ms=5.0)
        load = model.load_for_slo(100.0)
        assert model.slo_satisfied(load - 0.01, 100.0)
        assert not model.slo_satisfied(min(load + 0.05, 0.99), 100.0)

    def test_threshold_from_slo(self):
        model = LatencyModel(service_time_ms=5.0)
        threshold = threshold_from_slo(model, 100.0)
        assert 0 < threshold <= 1.0
        assert threshold == pytest.approx(model.load_for_slo(100.0))

    def test_threshold_ceiling(self):
        model = LatencyModel(service_time_ms=0.001)
        threshold = threshold_from_slo(model, 1000.0, ceiling=0.9)
        assert threshold == 0.9

    def test_threshold_ceiling_validation(self):
        with pytest.raises(ValueError):
            threshold_from_slo(LatencyModel(), 100.0, ceiling=0.0)
