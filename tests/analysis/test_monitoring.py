"""Unit tests for the fragmentation monitor."""

import numpy as np
import pytest

from repro.analysis import FragmentationMonitor, MonitorConfig
from repro.infra import Assignment, Level, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet, inject_surge


@pytest.fixture
def setting():
    grid = TimeGrid(0, 60, 24)
    up = np.linspace(5, 10, 24)
    down = np.linspace(10, 5, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    traces = TraceSet(grid, ["u1", "d1", "u2", "d2"], np.vstack([up, down, up, down]))
    assignment = Assignment(
        topo, {"u1": "dc/rpp0", "d1": "dc/rpp0", "u2": "dc/rpp1", "d2": "dc/rpp1"}
    )
    return topo, assignment, traces


class TestMonitorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(level=Level.RPP, sum_of_peaks_tolerance=-0.1)
        with pytest.raises(ValueError):
            MonitorConfig(level=Level.RPP, min_asynchrony=0.5)


class TestMonitor:
    def test_requires_calibration(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        with pytest.raises(RuntimeError):
            monitor.observe("week1", traces)

    def test_healthy_when_stable(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        monitor.calibrate(traces)
        snapshot = monitor.observe("week1", traces)
        assert snapshot.healthy
        assert not monitor.needs_remapping()

    def test_flags_sum_of_peaks_drift(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(
            assignment,
            MonitorConfig(level=Level.RPP, sum_of_peaks_tolerance=0.05, min_asynchrony=1.0),
        )
        monitor.calibrate(traces)
        surged = inject_surge(
            traces, ["u1", "u2"], factor=3.0, start_hour=0, end_hour=24
        )
        snapshot = monitor.observe("surge-week", surged)
        assert not snapshot.healthy
        assert any(a.kind == "sum_of_peaks" for a in snapshot.advisories)
        assert monitor.needs_remapping()

    def test_flags_low_asynchrony_node(self, setting):
        topo, _, traces = setting
        # All synchronous instances on one node: its score is ~1.0.
        grouped = Assignment(
            topo, {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp1"}
        )
        monitor = FragmentationMonitor(
            grouped, MonitorConfig(level=Level.RPP, min_asynchrony=1.05)
        )
        monitor.calibrate(traces)
        snapshot = monitor.observe("week1", traces)
        flagged = [a for a in snapshot.advisories if a.kind == "node_asynchrony"]
        assert flagged
        assert all(a.node_name is not None for a in flagged)

    def test_worst_node_identified(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        snapshot = monitor.calibrate(traces)
        assert snapshot.worst_node in ("dc/rpp0", "dc/rpp1")

    def test_history_accumulates(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        monitor.calibrate(traces)
        monitor.observe("w1", traces)
        monitor.observe("w2", traces)
        assert [s.label for s in monitor.history] == ["calibration", "w1", "w2"]

    def test_advisory_severity(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(
            assignment, MonitorConfig(level=Level.RPP, sum_of_peaks_tolerance=0.0)
        )
        monitor.calibrate(traces)
        surged = inject_surge(traces, ["u1"], factor=2.0, start_hour=0, end_hour=24)
        snapshot = monitor.observe("surge", surged)
        drift = [a for a in snapshot.advisories if a.kind == "sum_of_peaks"]
        assert drift and drift[0].severity > 0


class TestEventLogMirroring:
    def test_advisories_mirrored_into_event_log(self, setting):
        from repro.obs import events

        _, assignment, traces = setting
        monitor = FragmentationMonitor(
            assignment,
            MonitorConfig(level=Level.RPP, sum_of_peaks_tolerance=0.05, min_asynchrony=1.0),
        )
        monitor.calibrate(traces)
        surged = inject_surge(
            traces, ["u1", "u2"], factor=3.0, start_hour=0, end_hour=24
        )
        with events.recording() as log:
            snapshot = monitor.observe("surge-week", surged)
        mirrored = log.by_kind(events.ADVISORY)
        assert len(mirrored) == len(snapshot.advisories)
        (event,) = [e for e in mirrored if e.fields["drift"] == "sum_of_peaks"]
        assert event.source == "analysis.monitoring"
        assert event.fields["label"] == "surge-week"
        assert event.fields["observed"] == snapshot.advisories[0].observed

    def test_decision_identical_with_and_without_recording(self, setting):
        """Mirroring is observation only: needs_remapping() is unchanged."""
        from repro.obs import events

        _, assignment, traces = setting
        surged = inject_surge(
            traces, ["u1", "u2"], factor=3.0, start_hour=0, end_hour=24
        )

        def run(recorded):
            monitor = FragmentationMonitor(
                assignment,
                MonitorConfig(
                    level=Level.RPP, sum_of_peaks_tolerance=0.05, min_asynchrony=1.0
                ),
            )
            monitor.calibrate(traces)
            if recorded:
                with events.recording():
                    healthy_first = monitor.observe("w1", traces)
                    drifted = monitor.observe("w2", surged)
            else:
                healthy_first = monitor.observe("w1", traces)
                drifted = monitor.observe("w2", surged)
            return healthy_first, drifted, monitor.needs_remapping()

        plain_healthy, plain_drifted, plain_decision = run(recorded=False)
        logged_healthy, logged_drifted, logged_decision = run(recorded=True)
        assert plain_decision == logged_decision is True
        assert logged_healthy.healthy == plain_healthy.healthy is True
        assert [a.kind for a in logged_drifted.advisories] == [
            a.kind for a in plain_drifted.advisories
        ]
        assert logged_drifted.sum_of_peaks == plain_drifted.sum_of_peaks

    def test_healthy_observation_emits_nothing(self, setting):
        from repro.obs import events

        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        monitor.calibrate(traces)
        with events.recording() as log:
            snapshot = monitor.observe("quiet-week", traces)
        assert snapshot.healthy
        assert len(log) == 0


class TestMonitorDeltaFeed:
    def _delta(self):
        from repro.engine.delta import FleetDelta

        return FleetDelta

    def test_requires_calibration(self, setting):
        _, assignment, traces = setting
        monitor = FragmentationMonitor(assignment, MonitorConfig(level=Level.RPP))
        with pytest.raises(RuntimeError):
            monitor.observe_delta("d0", self._delta().swap("u1", "dc/rpp0", "u2", "dc/rpp1"))

    def test_delta_observation_matches_full_snapshot(self, setting):
        """Consuming the swap as a delta yields the same snapshot numbers as
        re-measuring the swapped placement from scratch."""
        _, assignment, traces = setting
        config = MonitorConfig(level=Level.RPP, min_asynchrony=1.0)
        incremental = FragmentationMonitor(assignment, config)
        incremental.calibrate(traces)
        swap = self._delta().swap("d1", "dc/rpp0", "u2", "dc/rpp1")
        from_delta = incremental.observe_delta("after-swap", swap)

        swapped = assignment.with_swap("d1", "u2")
        full = FragmentationMonitor(swapped, config)
        reference = full.calibrate(traces)
        assert from_delta.sum_of_peaks == reference.sum_of_peaks
        assert from_delta.min_asynchrony == reference.min_asynchrony
        assert from_delta.worst_node == reference.worst_node

    def test_bad_swap_raises_advisory_and_needs_remapping(self, setting):
        """Pairing the synchronous instances via a delta drops both nodes'
        asynchrony to 1.0 — the monitor must flag it without a re-score."""
        _, assignment, traces = setting
        monitor = FragmentationMonitor(
            assignment, MonitorConfig(level=Level.RPP, min_asynchrony=1.05)
        )
        monitor.calibrate(traces)
        assert not monitor.needs_remapping()
        # u1+d1 / u2+d2 are anti-phase (healthy); swapping d1 and u2 pairs
        # u1+u2 and d1+d2 — perfectly synchronous nodes.
        monitor.observe_delta("bad-swap", self._delta().swap("d1", "dc/rpp0", "u2", "dc/rpp1"))
        assert monitor.needs_remapping()
        kinds = {a.kind for a in monitor.history[-1].advisories}
        assert "node_asynchrony" in kinds

    def test_snapshot_after_deltas_carries_placement_forward(self, setting):
        """A whole-trace observe() after deltas re-measures the *moved*
        placement, not the calibrated one."""
        _, assignment, traces = setting
        config = MonitorConfig(level=Level.RPP, min_asynchrony=1.05)
        monitor = FragmentationMonitor(assignment, config)
        monitor.calibrate(traces)
        monitor.observe_delta("bad-swap", self._delta().swap("d1", "dc/rpp0", "u2", "dc/rpp1"))
        snapshot = monitor.observe("same-traces", traces)
        assert not snapshot.healthy
        assert monitor.assignment.as_mapping() == assignment.with_swap("d1", "u2").as_mapping()

    def test_registers_as_placement_state_subscriber(self, setting):
        from repro.engine.delta import PlacementState

        topo, assignment, traces = setting
        monitor = FragmentationMonitor(
            assignment, MonitorConfig(level=Level.RPP, min_asynchrony=1.05)
        )
        monitor.calibrate(traces)
        state = PlacementState(topo, traces, assignment)
        state.register(monitor)
        state.swap("d1", "u2")
        assert monitor.needs_remapping()
