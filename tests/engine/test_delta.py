"""Unit tests for the delta-driven fleet-state core (repro.engine.delta)."""

import numpy as np
import pytest

from repro import obs
from repro.core.metrics import AsynchronyIndex, node_asynchrony_scores
from repro.engine.delta import FleetDelta, Move, PlacementState, dirty_nodes
from repro.infra import (
    Assignment,
    HeadroomIndex,
    Level,
    NodePowerView,
    build_topology,
    ocp_spec,
    two_level_spec,
)
from repro.infra.budget import provision_from_view
from repro.infra.headroom import node_headroom
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 30, 48)


def small_fleet(per_leaf=3, leaves=4, seed=0):
    rng = np.random.default_rng(seed)
    topo = build_topology(
        two_level_spec("dc", leaves=leaves, leaf_capacity=per_leaf + 2)
    )
    n = per_leaf * leaves
    ids = [f"i{k}" for k in range(n)]
    traces = TraceSet(GRID, ids, rng.uniform(5, 50, size=(n, GRID.n_samples)))
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k % leaves] for k in range(n)}
    return topo, Assignment(topo, mapping), traces


class TestFleetDelta:
    def test_move_validation(self):
        with pytest.raises(ValueError):
            Move("a", None, None)
        with pytest.raises(ValueError):
            Move("a", "leaf", "leaf")

    def test_duplicate_instance_rejected(self):
        with pytest.raises(ValueError, match="multiple moves"):
            FleetDelta(moves=(Move("a", "x", "y"), Move("a", "y", "z")))

    def test_constructors(self):
        swap = FleetDelta.swap("a", "la", "b", "lb")
        assert swap.moves == (Move("a", "la", "lb"), Move("b", "lb", "la"))
        assert FleetDelta.place("a", "l").moves == (Move("a", None, "l"),)
        assert FleetDelta.remove("a", "l").moves == (Move("a", "l", None),)
        assert FleetDelta.trace_update("a", "b").trace_updates == ("a", "b")
        assert not FleetDelta()
        assert FleetDelta.trace_update("a")

    def test_touched_leaves_order_and_dedup(self):
        delta = FleetDelta.swap("a", "la", "b", "lb")
        assert delta.touched_leaves() == ["la", "lb"]
        delta = FleetDelta.trace_update("a", "b")
        assert delta.touched_leaves() == []
        assert delta.touched_leaves({"a": "lx", "b": "lx"}) == ["lx"]


class TestDirtyNodes:
    def test_union_of_root_paths(self):
        topo = build_topology(
            ocp_spec("dc", suites=2, msbs_per_suite=1, sbs_per_msb=1,
                     rpps_per_sb=1, racks_per_rpp=2, servers_per_rack=4)
        )
        leaves = topo.leaf_names()
        dirty = dirty_nodes(topo, [leaves[0], leaves[-1]])
        # Root appears once, both full paths covered, root-first.
        assert dirty[0] == topo.root.name
        assert dirty.count(topo.root.name) == 1
        for name in dirty:
            topo.node(name)
        path0 = {n.name for n in topo.node(leaves[0]).path_from_root()}
        path1 = {n.name for n in topo.node(leaves[-1]).path_from_root()}
        assert set(dirty) == path0 | path1


class TestPlacementState:
    def test_mapping_round_trip(self):
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        rebuilt = state.assignment()
        assert rebuilt.as_mapping() == assignment.as_mapping()
        for leaf in topo.leaves():
            assert rebuilt.instances_on_leaf(leaf.name) == state.members(leaf.name)

    def test_swap_move_place_remove(self):
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        a = state.members("dc/rpp0")[0]
        b = state.members("dc/rpp1")[0]
        state.swap(a, b)
        assert state.leaf_of(a) == "dc/rpp1"
        assert state.leaf_of(b) == "dc/rpp0"
        state.move(a, "dc/rpp2")
        assert state.leaf_of(a) == "dc/rpp2"
        state.remove(a)
        assert a not in state
        state.place(a, "dc/rpp0")
        assert state.leaf_of(a) == "dc/rpp0"
        assert len(state) == len(assignment)

    def test_validation(self):
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        with pytest.raises(ValueError, match="not"):
            state.apply(FleetDelta.move("i0", "dc/rpp3", "dc/rpp1"))
        with pytest.raises(KeyError):
            state.apply(FleetDelta.place("i0", "nope"))
        with pytest.raises(ValueError, match="already placed"):
            state.apply(FleetDelta.place("i0", "dc/rpp1"))
        with pytest.raises(ValueError, match="no trace"):
            state.apply(FleetDelta.place("ghost", "dc/rpp1"))
        with pytest.raises(KeyError):
            state.update_traces("ghost")

    def test_capacity_enforced(self):
        topo, assignment, traces = small_fleet(per_leaf=3)
        state = PlacementState(topo, traces, assignment)
        movers = [i for i in traces.ids if state.leaf_of(i) != "dc/rpp0"]
        state.move(movers[0], "dc/rpp0")
        state.move(movers[1], "dc/rpp0")  # leaf now at capacity 5
        with pytest.raises(ValueError, match="capacity"):
            state.move(movers[2], "dc/rpp0")

    def test_swap_into_full_leaf_allowed(self):
        """Capacity is judged on net post-delta occupancy: a swap's paired
        departure frees the slot its arrival needs."""
        topo, assignment, traces = small_fleet(per_leaf=3)
        state = PlacementState(topo, traces, assignment)
        movers = [i for i in traces.ids if state.leaf_of(i) != "dc/rpp0"]
        state.move(movers[0], "dc/rpp0")
        state.move(movers[1], "dc/rpp0")  # rpp0 now at capacity 5
        resident = state.members("dc/rpp0")[0]
        outsider = [i for i in traces.ids if state.leaf_of(i) == "dc/rpp1"][0]
        state.swap(resident, outsider)
        assert state.leaf_of(outsider) == "dc/rpp0"
        assert len(state.members("dc/rpp0")) == 5

    def test_rejected_delta_leaves_state_untouched(self):
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        before = state.mapping()
        bad = FleetDelta(
            moves=(
                Move("i0", state.leaf_of("i0"), "dc/rpp3"),
                Move("i1", "dc/rpp3", "dc/rpp0"),  # wrong src leaf
            )
        )
        with pytest.raises(ValueError):
            state.apply(bad)
        assert state.mapping() == before
        assert state.version == 0

    def test_counters_and_histogram(self):
        from repro.obs import metrics as obs_metrics

        topo, assignment, traces = small_fleet()
        with obs_metrics.capturing() as registry:
            state = PlacementState(topo, traces, assignment)
            a = state.members("dc/rpp0")[0]
            b = state.members("dc/rpp1")[0]
            dirty = state.swap(a, b)
        metrics = registry.snapshot()
        assert metrics["counters"]["delta.applied"] == 1
        assert metrics["counters"]["delta.moves"] == 2
        assert metrics["counters"]["delta.nodes_dirtied"] == len(dirty)
        assert "delta.apply_s" in metrics["histograms"]

    def test_subscriber_fan_out_order(self):
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        calls = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def apply_delta(self, delta):
                calls.append((self.tag, delta))

        state.register(Probe("first"))
        state.register(Probe("second"))
        a = state.members("dc/rpp0")[0]
        b = state.members("dc/rpp1")[0]
        state.swap(a, b)
        assert [tag for tag, _ in calls] == ["first", "second"]
        assert calls[0][1] is calls[1][1]


class TestSharedViewGuard:
    def test_indices_sharing_a_view_apply_each_delta_once(self):
        """Two indices over one view: the view advances once per delta."""
        topo, assignment, traces = small_fleet()
        state = PlacementState(topo, traces, assignment)
        view = NodePowerView(topo, state.assignment(), traces)
        provision_from_view(view, margin=1.5)
        state.register(view)
        score_index = state.register(AsynchronyIndex(view, Level.RPP))
        head_index = state.register(HeadroomIndex(view))
        a = state.members("dc/rpp0")[0]
        b = state.members("dc/rpp1")[0]
        state.swap(a, b)
        assert view.version == 1

        fresh_view = NodePowerView(topo, state.assignment(), traces)
        assert score_index.scores() == node_asynchrony_scores(
            state.assignment(), traces, Level.RPP, view=fresh_view
        )
        assert head_index.headroom() == node_headroom(fresh_view)

    def test_index_drives_view_when_standalone(self):
        topo, assignment, traces = small_fleet()
        view = NodePowerView(topo, assignment, traces)
        index = AsynchronyIndex(view, Level.RPP)
        delta = FleetDelta.swap(
            assignment.instances_on_leaf("dc/rpp0")[0],
            "dc/rpp0",
            assignment.instances_on_leaf("dc/rpp1")[0],
            "dc/rpp1",
        )
        index.apply_delta(delta)
        assert view.version == 1
        fresh = NodePowerView(topo, view.materialized_assignment(), traces)
        assert index.scores() == node_asynchrony_scores(
            view.materialized_assignment(), traces, Level.RPP, view=fresh
        )
