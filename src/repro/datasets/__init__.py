"""Synthetic datasets standing in for the paper's production datacenters."""

from .facebook import (
    Datacenter,
    DatacenterSpec,
    all_datacenter_specs,
    build_datacenter,
    dc1_spec,
    dc2_spec,
    dc3_spec,
    small_demo_spec,
)

__all__ = [
    "Datacenter",
    "DatacenterSpec",
    "build_datacenter",
    "dc1_spec",
    "dc2_spec",
    "dc3_spec",
    "small_demo_spec",
    "all_datacenter_specs",
]
