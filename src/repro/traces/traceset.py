"""Vectorised collections of power traces.

A datacenter has tens of thousands of instance traces; iterating Python-level
:class:`PowerTrace` objects for every aggregate would be slow.  A
:class:`TraceSet` stores a whole fleet's traces as one ``(n_traces,
n_samples)`` matrix, keyed by trace id, and provides the bulk operations the
placement framework needs (row peaks, group aggregates, sub-setting).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from .grid import TimeGrid
from .series import PowerTrace


class TraceSet:
    """An immutable matrix of power traces sharing one :class:`TimeGrid`.

    Storage is float64 by default (bit-exact with every historical code
    path).  Passing ``dtype=np.float32`` keeps a float32 matrix as-is —
    the fleet-scale fast path, where a million-instance block at half the
    bytes doubles effective memory bandwidth — and ``np.asarray`` makes
    both cases zero-copy when the input already matches (e.g. a shared
    -memory view published by :class:`repro.engine.sharedmem.SharedTraceSet`).
    """

    __slots__ = ("grid", "ids", "matrix", "_index")

    def __init__(
        self,
        grid: TimeGrid,
        ids: Sequence[str],
        matrix: np.ndarray,
        *,
        dtype: object = np.float64,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.dtype(dtype))
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape != (len(ids), grid.n_samples):
            raise ValueError(
                f"matrix shape {matrix.shape} inconsistent with "
                f"{len(ids)} ids x {grid.n_samples} samples"
            )
        if np.any(matrix < 0):
            raise ValueError("power readings cannot be negative")
        self.grid = grid
        self.ids = list(ids)
        if len(set(self.ids)) != len(self.ids):
            raise ValueError("trace ids must be unique")
        self.matrix = matrix
        self._index: Dict[str, int] = {tid: i for i, tid in enumerate(self.ids)}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_traces(cls, traces: Mapping[str, PowerTrace]) -> "TraceSet":
        """Build a set from an id → trace mapping (insertion order kept)."""
        if not traces:
            raise ValueError("cannot build an empty TraceSet")
        ids = list(traces.keys())
        grid = traces[ids[0]].grid
        matrix = np.empty((len(ids), grid.n_samples))
        for row, tid in enumerate(ids):
            grid.require_same(traces[tid].grid)
            matrix[row] = traces[tid].values
        return cls(grid, ids, matrix)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._index

    def __getitem__(self, trace_id: str) -> PowerTrace:
        return PowerTrace(self.grid, self.matrix[self._index[trace_id]].copy())

    def row(self, trace_id: str) -> np.ndarray:
        """The raw value row for ``trace_id`` (a view; do not mutate)."""
        return self.matrix[self._index[trace_id]]

    def index_of(self, trace_id: str) -> int:
        return self._index[trace_id]

    # ------------------------------------------------------------------
    # bulk statistics
    # ------------------------------------------------------------------
    def peaks(self) -> np.ndarray:
        """Per-trace peak power, shape ``(n_traces,)``."""
        return self.matrix.max(axis=1)

    def means(self) -> np.ndarray:
        return self.matrix.mean(axis=1)

    def total(self) -> PowerTrace:
        """The aggregate trace of every member (column sums)."""
        return PowerTrace(self.grid, self.matrix.sum(axis=0))

    def sum_of_peaks(self) -> float:
        """Σ_j peak(P_j) — the numerator of the asynchrony score (Eq. 6)."""
        return float(self.peaks().sum())

    def aggregate_peak(self) -> float:
        """peak(Σ_j P_j) — the denominator of the asynchrony score (Eq. 6)."""
        return float(self.matrix.sum(axis=0).max())

    def aggregate_of(self, trace_ids: Sequence[str]) -> PowerTrace:
        """Aggregate trace of the named subset."""
        if len(trace_ids) == 0:
            raise ValueError("cannot aggregate an empty subset")
        rows = [self._index[tid] for tid in trace_ids]
        return PowerTrace(self.grid, self.matrix[rows].sum(axis=0))

    def subset(self, trace_ids: Sequence[str]) -> "TraceSet":
        """A new TraceSet restricted to ``trace_ids`` (order preserved)."""
        rows = [self._index[tid] for tid in trace_ids]
        return TraceSet(
            self.grid,
            list(trace_ids),
            self.matrix[rows].copy(),
            dtype=self.matrix.dtype,
        )

    def mean_trace(self) -> PowerTrace:
        """The element-wise mean trace across members (Eq. 5 denominator)."""
        return PowerTrace(self.grid, self.matrix.mean(axis=0))

    # ------------------------------------------------------------------
    # time restructuring
    # ------------------------------------------------------------------
    def average_weeks(self) -> "TraceSet":
        """Average every member's weeks into one 7-day trace (vectorised Eq. 4)."""
        if not self.grid.covers_whole_weeks():
            raise ValueError("grid does not cover whole weeks")
        weeks, per_week = self.grid.week_view_shape()
        stacked = self.matrix.reshape(len(self.ids), weeks, per_week)
        return TraceSet(
            self.grid.one_week(),
            self.ids,
            stacked.mean(axis=1),
            dtype=self.matrix.dtype,
        )

    def week(self, week_index: int) -> "TraceSet":
        """Restrict every member to one whole week."""
        per_week = self.grid.samples_per_week
        n_weeks = self.grid.n_samples // per_week
        if not 0 <= week_index < n_weeks:
            raise IndexError(f"week {week_index} outside trace ({n_weeks} weeks)")
        start = week_index * per_week
        sub_grid = TimeGrid(
            self.grid.start_minute + start * self.grid.step_minutes,
            self.grid.step_minutes,
            per_week,
        )
        return TraceSet(
            sub_grid,
            self.ids,
            self.matrix[:, start : start + per_week].copy(),
            dtype=self.matrix.dtype,
        )

    def traces(self) -> Dict[str, PowerTrace]:
        """Materialise the set as an id → PowerTrace dict."""
        return {tid: self[tid] for tid in self.ids}

    def merged_with(self, other: "TraceSet") -> "TraceSet":
        """Union of two disjoint trace sets on the same grid."""
        self.grid.require_same(other.grid)
        overlap = set(self.ids) & set(other.ids)
        if overlap:
            raise ValueError(f"trace sets overlap on ids: {sorted(overlap)[:5]}")
        return TraceSet(
            self.grid,
            self.ids + other.ids,
            np.vstack([self.matrix, other.matrix]),
            dtype=np.result_type(self.matrix, other.matrix),
        )
