"""Unit tests for server power and DVFS models."""

import numpy as np
import pytest

from repro.sim import DVFSModel, ServerPowerModel


class TestServerPowerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerPowerModel(idle_watts=-1, peak_watts=100)
        with pytest.raises(ValueError):
            ServerPowerModel(idle_watts=200, peak_watts=100)
        with pytest.raises(ValueError):
            ServerPowerModel(100, 200, alpha=0)
        with pytest.raises(ValueError):
            ServerPowerModel(100, 200, gamma=-1)

    def test_idle_and_peak(self):
        model = ServerPowerModel(100, 250)
        assert model.power(0.0) == pytest.approx(100.0)
        assert model.power(1.0) == pytest.approx(250.0)
        assert model.swing_watts == pytest.approx(150.0)

    def test_linear_midpoint(self):
        model = ServerPowerModel(100, 200, alpha=1.0)
        assert model.power(0.5) == pytest.approx(150.0)

    def test_alpha_curvature(self):
        model = ServerPowerModel(100, 200, alpha=2.0)
        assert model.power(0.5) == pytest.approx(125.0)

    def test_load_clipped(self):
        model = ServerPowerModel(100, 200)
        assert model.power(1.5) == model.power(1.0)
        assert model.power(-0.5) == model.power(0.0)

    def test_freq_scaling_cubic(self):
        model = ServerPowerModel(100, 200, gamma=3.0)
        assert model.power(1.0, 2.0) == pytest.approx(100 + 100 * 8.0)

    def test_freq_must_be_positive(self):
        with pytest.raises(ValueError):
            ServerPowerModel(100, 200).power(1.0, 0.0)

    def test_array_inputs(self):
        model = ServerPowerModel(100, 200)
        loads = np.array([0.0, 0.5, 1.0])
        powers = model.power(loads)
        assert powers.shape == (3,)
        assert powers[0] == pytest.approx(100.0)

    def test_max_power(self):
        model = ServerPowerModel(100, 200, gamma=3.0)
        assert model.max_power() == pytest.approx(200.0)
        assert model.max_power(0.5) == pytest.approx(100 + 100 * 0.125)


class TestDVFSModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DVFSModel(min_freq=1.2, max_freq=1.4)
        with pytest.raises(ValueError):
            DVFSModel(min_freq=0.5, max_freq=0.9)
        with pytest.raises(ValueError):
            DVFSModel(boost_efficiency=2.0)

    def test_clamp(self):
        dvfs = DVFSModel(min_freq=0.6, max_freq=1.2)
        assert dvfs.clamp(0.1) == pytest.approx(0.6)
        assert dvfs.clamp(2.0) == pytest.approx(1.2)
        assert dvfs.clamp(1.0) == pytest.approx(1.0)

    def test_throughput_linear_below_nominal(self):
        dvfs = DVFSModel(min_freq=0.6, max_freq=1.4, boost_efficiency=0.5)
        assert dvfs.throughput_factor(0.8) == pytest.approx(0.8)

    def test_throughput_sublinear_above_nominal(self):
        dvfs = DVFSModel(min_freq=0.6, max_freq=1.4, boost_efficiency=0.5)
        assert dvfs.throughput_factor(1.4) == pytest.approx(1.2)

    def test_throughput_continuous_at_nominal(self):
        dvfs = DVFSModel()
        assert dvfs.throughput_factor(1.0) == pytest.approx(1.0)

    def test_array_input(self):
        dvfs = DVFSModel(boost_efficiency=0.5)
        freqs = np.array([0.8, 1.0, 1.2])
        factors = dvfs.throughput_factor(freqs)
        assert factors.shape == (3,)
        assert factors[2] == pytest.approx(1.1)
