"""Unit tests for the zero-dependency span tracer."""

import threading
import time

import pytest

from repro import obs
from repro.obs import Span, Tracer, tracing


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestNoopPath:
    def test_span_without_tracer_is_noop(self):
        assert obs.get_tracer() is None
        with obs.span("anything", foo=1) as span:
            span.add("counter", 5)  # must not raise
        assert obs.get_tracer() is None
        assert obs.current_span() is None

    def test_noop_context_is_reused(self):
        first = obs.span("a")
        second = obs.span("b")
        assert first is second  # singleton: no allocation on the fast path


class TestTracing:
    def test_install_and_restore(self):
        assert obs.get_tracer() is None
        with tracing() as outer:
            assert obs.get_tracer() is outer
            with tracing() as inner:
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer
        assert obs.get_tracer() is None

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert obs.get_tracer() is None

    def test_span_recorded_on_exception(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("inner")
        assert tracer.find("failing") is not None
        assert tracer.find("failing").wall_s >= 0.0


class TestSpanTree:
    def test_nesting_structure(self):
        with tracing() as tracer:
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
                with obs.span("middle"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["middle", "middle"]
        assert outer.find("inner") is not None

    def test_timing_monotonicity(self):
        """A parent's wall time bounds the sum of its children's."""
        with tracing() as tracer:
            with obs.span("parent"):
                with obs.span("child_a"):
                    _busy(0.01)
                with obs.span("child_b"):
                    _busy(0.01)
        parent = tracer.roots[0]
        child_sum = sum(c.wall_s for c in parent.children)
        assert parent.wall_s >= child_sum
        assert parent.wall_s >= 0.02
        assert parent.self_wall_s() == pytest.approx(parent.wall_s - child_sum)
        # CPU time is busy-wait here, so it is also non-trivial.
        assert parent.cpu_s > 0.0

    def test_meta_captured(self):
        with tracing() as tracer:
            with obs.span("stage", instances=42, kind="demo"):
                pass
        span = tracer.find("stage")
        assert span.meta == {"instances": 42, "kind": "demo"}

    def test_current_span(self):
        with tracing() as tracer:
            assert tracer.current() is None
            with obs.span("open") as span:
                assert obs.current_span() is span
            assert tracer.current() is None


class TestCounters:
    def test_span_counters(self):
        with tracing() as tracer:
            with obs.span("stage") as span:
                span.add("items", 3)
                span.add("items", 2)
        assert tracer.find("stage").counters == {"items": 5.0}

    def test_subtree_counter_aggregation(self):
        """Counters aggregate across stages of a subtree."""
        with tracing() as tracer:
            with obs.span("run"):
                with obs.span("stage_a") as a:
                    a.add("work", 2)
                with obs.span("stage_b") as b:
                    b.add("work", 3)
                    b.add("errors", 1)
        totals = tracer.roots[0].subtree_counters()
        assert totals == {"work": 5.0, "errors": 1.0}

    def test_tracer_add_targets_innermost(self):
        with tracing() as tracer:
            with obs.span("outer"):
                with obs.span("inner"):
                    tracer.add("hits")
        assert tracer.find("inner").counters == {"hits": 1.0}
        assert tracer.find("outer").counters == {}


class TestMergingAndRendering:
    def test_merged_children(self):
        with tracing() as tracer:
            with obs.span("parent"):
                for _ in range(3):
                    with obs.span("loop") as span:
                        span.add("n", 2)
        merged = tracer.roots[0].merged_children()
        assert len(merged) == 1
        assert merged[0].calls == 3
        assert merged[0].counters == {"n": 6.0}

    def test_merge_recurses_into_grandchildren(self):
        with tracing() as tracer:
            with obs.span("parent"):
                for _ in range(2):
                    with obs.span("loop"):
                        with obs.span("step") as step:
                            step.add("k")
        merged = tracer.roots[0].merged_children()
        assert merged[0].children[0].name == "step"
        assert merged[0].children[0].calls == 2
        assert merged[0].children[0].counters == {"k": 2.0}

    def test_render_mentions_stages_and_counts(self):
        with tracing() as tracer:
            with obs.span("place", instances=7):
                for _ in range(2):
                    with obs.span("cluster"):
                        pass
        text = tracer.render()
        assert "place" in text
        assert "cluster" in text
        assert "x2" in text
        assert "instances=7" in text

    def test_to_dict_round_trips_structure(self):
        with tracing() as tracer:
            with obs.span("a", size=1):
                with obs.span("b") as b:
                    b.add("c", 4)
        payload = tracer.to_dict()
        (root,) = payload["spans"]
        assert root["name"] == "a"
        assert root["meta"] == {"size": 1}
        assert root["children"][0]["counters"] == {"c": 4.0}
        assert root["wall_s"] >= root["children"][0]["wall_s"]


class TestThreadSafety:
    def test_independent_tracers_per_thread(self):
        """Two threads with their own tracing() contexts never interleave."""
        n_spans = 200
        barrier = threading.Barrier(2)
        results = {}
        errors = []

        def worker(name):
            try:
                with tracing() as tracer:
                    barrier.wait(timeout=10)
                    with obs.span(f"{name}.outer"):
                        for index in range(n_spans):
                            with obs.span(f"{name}.step") as span:
                                span.add("index", index)
                    results[name] = tracer
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        # The main thread never saw either tracer installed.
        assert obs.get_tracer() is None
        for name, tracer in results.items():
            (root,) = tracer.roots
            assert root.name == f"{name}.outer"
            # Every child belongs to this thread's run; none leaked across.
            assert len(root.children) == n_spans
            assert {child.name for child in root.children} == {f"{name}.step"}

    def test_shared_tracer_stack_is_thread_local(self):
        """Spans opened on one thread are invisible to another's stack."""
        tracer = Tracer()
        observed = {}

        def worker():
            # This thread sees an empty stack even while the main thread
            # holds a span open on the same tracer.
            observed["current"] = tracer.current()
            with tracer.span("worker.root"):
                observed["depth"] = len(tracer.stack_names())

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=10)
        assert observed["current"] is None
        assert observed["depth"] == 1
        # Both threads' top-level spans land in the shared roots list.
        assert sorted(root.name for root in tracer.roots) == [
            "main.root",
            "worker.root",
        ]


class TestStandaloneTracer:
    def test_direct_use_without_install(self):
        tracer = Tracer()
        with tracer.span("manual") as span:
            span.add("x")
        assert tracer.roots[0].name == "manual"
        # The global hook is untouched.
        assert obs.get_tracer() is None

    def test_span_repr_smoke(self):
        span = Span("demo")
        assert "demo" in repr(span)
