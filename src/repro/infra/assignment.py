"""Instance → leaf-node assignments (service placements).

An :class:`Assignment` records which leaf power node supplies each service
instance.  It is the output of every placement policy (oblivious, random,
SmoothOperator) and the input to power aggregation, headroom analysis, and
the reshaping runtime.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .topology import PowerTopology


class AssignmentError(ValueError):
    """Raised for invalid placements (unknown nodes, over-capacity, ...)."""


class Assignment:
    """An immutable mapping of instance ids to leaf power-node names."""

    def __init__(self, topology: PowerTopology, mapping: Mapping[str, str]) -> None:
        self.topology = topology
        self._leaf_of: Dict[str, str] = dict(mapping)
        self._members: Dict[str, List[str]] = {}
        leaf_names = set(topology.leaf_names())
        for instance_id, leaf_name in self._leaf_of.items():
            if leaf_name not in leaf_names:
                raise AssignmentError(
                    f"instance {instance_id} assigned to non-leaf or unknown "
                    f"node {leaf_name!r}"
                )
            self._members.setdefault(leaf_name, []).append(instance_id)
        for leaf in topology.leaves():
            count = len(self._members.get(leaf.name, []))
            if leaf.capacity is not None and count > leaf.capacity:
                raise AssignmentError(
                    f"leaf {leaf.name} holds {count} instances, "
                    f"capacity is {leaf.capacity}"
                )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaf_of)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._leaf_of

    def leaf_of(self, instance_id: str) -> str:
        try:
            return self._leaf_of[instance_id]
        except KeyError:
            raise AssignmentError(f"unplaced instance: {instance_id}") from None

    def instance_ids(self) -> List[str]:
        return list(self._leaf_of.keys())

    def instances_on_leaf(self, leaf_name: str) -> List[str]:
        """Instances directly supplied by ``leaf_name`` (placement order)."""
        if leaf_name not in set(self.topology.leaf_names()):
            raise AssignmentError(f"{leaf_name!r} is not a leaf node")
        return list(self._members.get(leaf_name, []))

    def instances_under(self, node_name: str) -> List[str]:
        """All instances supplied by the subtree rooted at ``node_name``."""
        node = self.topology.node(node_name)
        result: List[str] = []
        for leaf in node.leaves():
            result.extend(self._members.get(leaf.name, []))
        return result

    def occupancy(self) -> Dict[str, int]:
        """Instances per leaf (zero-filled for empty leaves)."""
        return {
            leaf.name: len(self._members.get(leaf.name, []))
            for leaf in self.topology.leaves()
        }

    def free_capacity(self) -> Dict[str, Optional[int]]:
        """Remaining instance slots per leaf (None = unbounded)."""
        result: Dict[str, Optional[int]] = {}
        for leaf in self.topology.leaves():
            used = len(self._members.get(leaf.name, []))
            result[leaf.name] = None if leaf.capacity is None else leaf.capacity - used
        return result

    # ------------------------------------------------------------------
    def with_swap(self, instance_a: str, instance_b: str) -> "Assignment":
        """A new assignment with two instances' leaves exchanged.

        This is the primitive of the Sec. 3.6 remapping loop.
        """
        leaf_a = self.leaf_of(instance_a)
        leaf_b = self.leaf_of(instance_b)
        if leaf_a == leaf_b:
            raise AssignmentError(
                f"{instance_a} and {instance_b} share leaf {leaf_a}; swap is a no-op"
            )
        mapping = dict(self._leaf_of)
        mapping[instance_a] = leaf_b
        mapping[instance_b] = leaf_a
        return Assignment(self.topology, mapping)

    def with_added(self, additions: Mapping[str, str]) -> "Assignment":
        """A new assignment with extra instances placed (capacity-checked)."""
        overlap = set(additions) & set(self._leaf_of)
        if overlap:
            raise AssignmentError(f"instances already placed: {sorted(overlap)[:5]}")
        mapping = dict(self._leaf_of)
        mapping.update(additions)
        return Assignment(self.topology, mapping)

    def as_mapping(self) -> Dict[str, str]:
        return dict(self._leaf_of)
