"""Table 1: qualitative comparison with prior approaches.

The paper's Table 1 contrasts SmoothOperator with Power Routing (Pelley et
al.), Statistical Multiplexing (Govindan et al.) and Distributed UPS
(Kontorinis et al.) along five capabilities.  Encoded as data so the
benchmark harness can regenerate the table and tests can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

CAPABILITIES: Tuple[str, ...] = (
    "Using temporal information",
    "Using existing power infra.",
    "Automated process",
    "Balancing local peaks",
    "Proactive planning",
)


@dataclass(frozen=True)
class ApproachProfile:
    """One column of Table 1."""

    name: str
    capabilities: Dict[str, bool]

    def supports(self, capability: str) -> bool:
        if capability not in CAPABILITIES:
            raise KeyError(f"unknown capability: {capability!r}")
        return self.capabilities.get(capability, False)


TABLE1: Tuple[ApproachProfile, ...] = (
    ApproachProfile(
        "Power Routing",
        {
            "Using temporal information": False,
            "Using existing power infra.": False,
            "Automated process": True,
            "Balancing local peaks": True,
            "Proactive planning": False,
        },
    ),
    ApproachProfile(
        "Stat. Multiplexing",
        {
            "Using temporal information": False,
            "Using existing power infra.": True,
            "Automated process": True,
            "Balancing local peaks": False,
            "Proactive planning": False,
        },
    ),
    ApproachProfile(
        "DistributedUPS",
        {
            "Using temporal information": True,
            "Using existing power infra.": False,
            "Automated process": True,
            "Balancing local peaks": False,
            "Proactive planning": False,
        },
    ),
    ApproachProfile(
        "SmoothOperator",
        {capability: True for capability in CAPABILITIES},
    ),
)


def table1_rows() -> List[List[str]]:
    """Table 1 as printable rows: capability × approach checkmarks."""
    rows: List[List[str]] = []
    for capability in CAPABILITIES:
        row = [capability]
        for approach in TABLE1:
            row.append("yes" if approach.supports(capability) else "-")
        rows.append(row)
    return rows


def table1_headers() -> List[str]:
    return ["Capability"] + [approach.name for approach in TABLE1]
