"""Unit tests for the DC1/DC2/DC3 dataset definitions."""

import pytest

from repro.datasets import (
    DatacenterSpec,
    all_datacenter_specs,
    build_datacenter,
    dc1_spec,
    dc2_spec,
    dc3_spec,
    small_demo_spec,
)
from repro.traces import ServiceKind


class TestSpecs:
    def test_three_datacenters(self):
        specs = all_datacenter_specs()
        assert [s.name for s in specs] == ["DC1", "DC2", "DC3"]

    def test_heterogeneity_ordering(self):
        """DC1 < DC2 < DC3 per Sec. 5.2.1."""
        assert dc1_spec().heterogeneity < dc2_spec().heterogeneity < dc3_spec().heterogeneity

    def test_baseline_mixing_ordering(self):
        """DC1's original placement is the most balanced; DC3 fully grouped."""
        assert dc1_spec().baseline_mixing > dc2_spec().baseline_mixing
        assert dc3_spec().baseline_mixing == 0.0

    def test_instance_counts_sum(self):
        spec = dc1_spec(n_instances=500)
        counts = spec.instance_counts()
        assert sum(c for _, c in counts) == 500

    def test_largest_remainder_apportionment(self):
        spec = small_demo_spec(n_instances=7)
        counts = spec.instance_counts()
        assert sum(c for _, c in counts) == 7
        assert all(c > 0 for _, c in counts)

    def test_capacity_validated(self):
        base = dc1_spec(n_instances=100)
        with pytest.raises(ValueError):
            DatacenterSpec(
                name="x",
                composition=base.composition,
                heterogeneity=1.0,
                baseline_mixing=0.0,
                topology=base.topology,
                n_instances=base.topology.total_capacity() + 1,
            )

    def test_factories_scale_topology_with_fleet(self):
        small = dc1_spec(n_instances=96)
        big = dc1_spec(n_instances=1440)
        assert small.topology.total_capacity() < big.topology.total_capacity()
        # Occupancy stays high at every scale.
        for spec in (small, big):
            assert spec.n_instances / spec.topology.total_capacity() > 0.6

    def test_invalid_heterogeneity(self):
        spec = dc1_spec()
        with pytest.raises(ValueError):
            DatacenterSpec(
                name="x",
                composition=spec.composition,
                heterogeneity=-1,
                baseline_mixing=0.0,
                topology=spec.topology,
                n_instances=100,
            )


class TestBuild:
    def test_demo_builds(self, demo_datacenter):
        assert len(demo_datacenter.records) == 120
        assert demo_datacenter.name == "demo"
        assert len(demo_datacenter.baseline) == 120

    def test_demo_traces(self, demo_datacenter):
        train = demo_datacenter.training_traces()
        test = demo_datacenter.test_traces()
        assert len(train) == len(test) == 120
        assert train.grid.covers_whole_weeks()

    def test_counts_by_kind(self, demo_datacenter):
        counts = demo_datacenter.counts_by_kind()
        assert counts[ServiceKind.LATENCY_CRITICAL] > 0
        assert counts[ServiceKind.BATCH] > 0

    def test_build_determinism(self):
        a = build_datacenter(small_demo_spec(), weeks=2, step_minutes=60)
        b = build_datacenter(small_demo_spec(), weeks=2, step_minutes=60)
        assert a.baseline.as_mapping() == b.baseline.as_mapping()
        assert a.records[0].training_trace == b.records[0].training_trace

    def test_dc3_baseline_is_service_grouped(self):
        dc = build_datacenter(dc3_spec(n_instances=96), weeks=2, step_minutes=120)
        by_id = {r.instance_id: r.service for r in dc.records}
        monocultures = 0
        used_leaves = 0
        for leaf in dc.topology.leaves():
            members = dc.baseline.instances_on_leaf(leaf.name)
            if not members:
                continue
            used_leaves += 1
            if len({by_id[m] for m in members}) == 1:
                monocultures += 1
        assert monocultures > used_leaves / 2
