"""Process-global metrics registry: counters, gauges, histograms.

Counters are always on (a dict increment costs nanoseconds next to the
numpy work they sit beside), so every run accumulates hot-path statistics —
swaps attempted, candidates evaluated, chunks scored — whether or not a
span tracer is installed.  :func:`count` additionally attributes the
increment to the innermost open span when one exists, which is how the
span-tree report shows per-stage counter breakdowns.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from . import spans as _spans

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "capturing",
    "count",
    "counter_value",
    "global_registry",
    "observe",
    "reset_metrics",
    "set_gauge",
    "snapshot_metrics",
]


class Histogram:
    """Streaming value distribution: exact moments, reservoir percentiles.

    Keeps exact ``count``/``total``/``min``/``max`` plus a bounded
    reservoir (deterministically seeded) from which percentiles are
    estimated, so memory stays O(1) however many values are observed.
    """

    RESERVOIR_SIZE = 2048

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._rng = random.Random(0)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) estimated from the reservoir.

        The extremes are exact: ``q=0`` returns the true minimum and
        ``q=100`` the true maximum (both tracked outside the reservoir),
        and interior estimates are clamped into ``[min, max]`` so sampling
        noise can never report an impossible value.  With no observations
        the percentile is undefined and ``nan`` is returned.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        ordered = sorted(self._reservoir)
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        estimate = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return min(max(estimate, self.min), self.max)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (in place; returns ``self``).

        Exact moments (count, total, min, max) combine exactly; the
        reservoirs combine by deterministic weighted resampling, each
        retained value weighted by how many observed samples it stands
        for, so percentile estimates of the merge track the pooled
        distribution.  Combining per-scenario histograms into a suite-wide
        one is the intended use.
        """
        if other is self:
            raise ValueError("cannot merge a histogram into itself")
        if other.count == 0:
            return self
        if self.count == 0:
            self._reservoir = list(other._reservoir)
        else:
            pool = self._reservoir + other._reservoir
            if len(pool) > self.RESERVOIR_SIZE:
                weights = [self.count / len(self._reservoir)] * len(self._reservoir) + [
                    other.count / len(other._reservoir)
                ] * len(other._reservoir)
                rng = random.Random(self.count * 2654435761 + other.count)
                pool = rng.choices(pool, weights=weights, k=self.RESERVOIR_SIZE)
            self._reservoir = pool
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """The full mergeable state (exact moments + reservoir).

        Unlike :meth:`summary` this loses nothing: a histogram rebuilt via
        :meth:`from_state` merges exactly like the original would.  This is
        what worker telemetry bundles ship across process boundaries.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "reservoir": list(self._reservoir),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_state` output."""
        histogram = cls()
        histogram.count = int(state["count"])
        histogram.total = float(state["total"])
        histogram.min = float(state["min"])
        histogram.max = float(state["max"])
        histogram._reservoir = [float(v) for v in state["reservoir"]]
        return histogram


class MetricsRegistry:
    """Named counters, gauges, and histograms for one process (or test)."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> float:
        """Increment (and return) the named counter."""
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        return total

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready snapshot of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# ----------------------------------------------------------------------
# the process-global registry and convenience accessors
#
# ``_ACTIVE`` is the registry every module-level accessor writes to.  It is
# the process-global ``_GLOBAL`` registry except inside a ``capturing()``
# context, which temporarily swaps in a private registry — that is how
# worker processes isolate one task's metric deltas into a shippable
# telemetry bundle (see :mod:`repro.obs.remote`).
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()
_ACTIVE = _GLOBAL


def global_registry() -> MetricsRegistry:
    """The registry instrumentation currently writes to.

    Normally the process-global one; inside a :class:`capturing` context it
    is the capture registry, so instrumented code needs no awareness of
    whether its deltas are being captured for another process.
    """
    return _ACTIVE


def count(name: str, value: float = 1.0) -> None:
    """Increment a global counter, attributing it to the open span too."""
    _ACTIVE.inc(name, value)
    tracer = _spans.get_tracer()
    if tracer is not None:
        tracer.add(name, value)


def counter_value(name: str, default: float = 0.0) -> float:
    return _ACTIVE.counter(name, default)


def set_gauge(name: str, value: float) -> None:
    _ACTIVE.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    _ACTIVE.observe(name, value)


def snapshot_metrics() -> Dict[str, object]:
    return _ACTIVE.snapshot()


def reset_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Clear the given registry (default: the currently active one)."""
    (registry if registry is not None else _ACTIVE).reset()


class capturing:
    """Route module-level metric writes into a private registry.

    Worker-side primitive of the cross-process capture layer: a pool task
    runs under ``with metrics.capturing() as registry:``, so every
    :func:`count` / :func:`observe` / :func:`set_gauge` it triggers lands in
    ``registry`` instead of the worker's process-global one.  The deltas are
    then serialized into the task's telemetry bundle and merged into the
    *coordinator's* registry, restoring parity with a serial run.  Nesting
    restores the previously active registry on exit.
    """

    __slots__ = ("registry", "_previous")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.registry
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False
