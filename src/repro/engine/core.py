"""The simulation core: one run loop for every scenario runtime.

:class:`Engine` owns the fleet models, the trace assembly step, the
conversion planner, and the emergency capping fallback that the legacy
``ReshapingRuntime`` / ``ChaosReshapingRuntime`` / ``CappingSimulator``
stacks each re-implemented.  :meth:`Engine.run` executes one declarative
:class:`~repro.engine.spec.ScenarioSpec` through its policy/actuator
pipeline and returns :class:`~repro.engine.state.RunArtifacts`.

The legacy entry points survive as thin shims
(:class:`repro.reshaping.runtime.ReshapingRuntime`,
:class:`repro.faults.runtime.ChaosReshapingRuntime`) and produce
bit-identical results — the golden parity suite in ``tests/engine/``
pins that.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..obs import telemetry as obs_telemetry
from ..infra.assignment import Assignment
from ..infra.breaker import BreakerModel
from ..infra.topology import PowerNode, PowerTopology
from ..reshaping.throttling import ThrottleBoostPolicy
from ..sim.batch import batch_throughput
from ..sim.demand import DemandTrace
from ..sim.loadbalancer import dispatch
from ..sim.power_model import DVFSModel
from ..traces.instance import ServiceKind
from ..traces.series import PowerTrace
from ..traces.traceset import TraceSet
from .capping import CappingPolicy, CappingReport, CappingSimulator
from .faults import (
    ChaosRunResult,
    ConversionFaultModel,
    RecoveryReport,
    ServerFailureSchedule,
)
from .spec import ScenarioSpec, build_pipeline
from .state import FleetDescription, FleetState, RunArtifacts, ScenarioResult


class Engine:
    """Runs declarative scenarios for one datacenter fleet."""

    def __init__(
        self,
        fleet: FleetDescription,
        conversion,
        *,
        throttle: Optional[ThrottleBoostPolicy] = None,
        dvfs: Optional[DVFSModel] = None,
        failures: Optional[ServerFailureSchedule] = None,
        conversion_faults: Optional[ConversionFaultModel] = None,
        breaker: Optional[BreakerModel] = None,
        capping_policy: Optional[CappingPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.fleet = fleet
        self.conversion = conversion
        self.throttle = throttle if throttle is not None else ThrottleBoostPolicy()
        self.dvfs = dvfs if dvfs is not None else DVFSModel()
        self.failures = failures if failures is not None else ServerFailureSchedule()
        self.conversion_faults = (
            conversion_faults if conversion_faults is not None else ConversionFaultModel()
        )
        self.breaker = breaker if breaker is not None else BreakerModel()
        self.capping_policy = (
            capping_policy if capping_policy is not None else CappingPolicy()
        )
        self.seed = seed

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Engine":
        if spec.conversion is None:
            raise ValueError("spec needs a conversion policy")
        return cls(
            spec.fleet,
            spec.conversion,
            throttle=spec.throttle,
            dvfs=spec.dvfs,
            failures=spec.failures,
            conversion_faults=spec.conversion_faults,
            breaker=spec.breaker,
            capping_policy=spec.capping_policy,
            seed=spec.seed,
        )

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self, spec: ScenarioSpec) -> RunArtifacts:
        """Execute one spec through its policy/actuator pipeline."""
        from .policy import RunContext  # local import keeps module DAG flat

        state = FleetState.initial(self.fleet, spec.demand)
        ctx = RunContext(engine=self, spec=spec, state=state)
        policies, actuators = build_pipeline(spec)
        for policy in policies:
            policy.apply(ctx)
        result = ctx.result
        if result is None:
            result = self.assemble(
                spec.scenario_name,
                spec.demand,
                n_lc_active=state.n_lc_active,
                n_batch_active=state.n_batch_active,
                batch_freq=state.batch_freq,
                parked=state.parked,
                extra_power=state.extra_power,
            )
        for actuator in actuators:
            result = actuator.actuate(ctx, result)
        return RunArtifacts(
            spec=spec,
            result=result,
            events=obs_events.get_event_log(),
            telemetry=None,
            metrics={},
        )

    # ------------------------------------------------------------------
    # conversion planning (Sec. 4.2)
    # ------------------------------------------------------------------
    def conversion_plan(
        self, demand: DemandTrace, total_extra: int
    ) -> "tuple":
        """Per-step fleet plan for ``total_extra`` conversion servers.

        Returns ``(lc_heavy, n_lc_active, n_batch_active, parked)``: during
        LC-heavy Phase every extra runs LC; during Batch-heavy Phase at most
        ``batch_convertible`` extras run batch and the remainder sit parked
        at idle, OS up, ready to convert (Sec. 4.2).
        """
        lc_heavy = self.conversion.lc_heavy_mask(demand, self.fleet.n_lc)
        convertible = self.conversion.batch_convertible(
            total_extra, self.fleet.n_batch
        )
        batch_heavy_f = (~lc_heavy).astype(np.float64)
        n_lc_active = self.fleet.n_lc + total_extra * lc_heavy.astype(np.float64)
        n_batch_active = self.fleet.n_batch + convertible * batch_heavy_f
        parked = (total_extra - convertible) * batch_heavy_f
        obs_events.emit(
            obs_events.CONVERSION,
            source="reshaping.conversion_plan",
            phase_changes=int(np.count_nonzero(np.diff(lc_heavy))),
            total_extra=int(total_extra),
            batch_convertible=int(convertible),
            parked_peak=float(parked.max()) if len(parked) else 0.0,
        )
        return lc_heavy, n_lc_active, n_batch_active, parked

    def fit_freq_to_budget(
        self, result: ScenarioResult, freq: np.ndarray
    ) -> np.ndarray:
        """Lower the batch frequency wherever ``result`` exceeds its budget.

        Solves ``n x (idle + swing x f^gamma) <= budget - non_batch_power``
        per step and clamps into the DVFS range; steps already within budget
        keep their schedule.  Overload that batch throttling alone cannot
        cure (non-batch draw above budget even at ``min_freq``) is left for
        the emergency capping fallback (:meth:`recover`).
        """
        over = result.total_power > result.budget_watts + 1e-9
        if not np.any(over):
            return freq
        model = self.fleet.batch_model
        n_batch = result.n_batch_active
        batch_power = n_batch * model.power(1.0, result.batch_freq)
        non_batch = result.total_power - batch_power
        allowed = result.budget_watts - non_batch - 1e-6
        with np.errstate(divide="ignore", invalid="ignore"):
            per_server = np.where(
                n_batch > 0, allowed / np.maximum(n_batch, 1e-12), np.inf
            )
        ratio = np.maximum((per_server - model.idle_watts) / model.swing_watts, 0.0)
        safe = np.power(ratio, 1.0 / model.gamma)
        safe = np.clip(safe, self.dvfs.min_freq, self.dvfs.max_freq)
        return np.where(over, np.minimum(freq, safe), freq)

    # ------------------------------------------------------------------
    # trace assembly
    # ------------------------------------------------------------------
    def assemble(
        self,
        name: str,
        demand: DemandTrace,
        *,
        n_lc_active: np.ndarray,
        n_batch_active: np.ndarray,
        batch_freq: np.ndarray,
        parked: Optional[np.ndarray] = None,
        extra_power: Optional[np.ndarray] = None,
    ) -> ScenarioResult:
        """Assemble a :class:`ScenarioResult` from one per-step fleet plan."""
        with obs.span("reshape.assemble", scenario=name):
            return self._assemble_traced(
                name,
                demand,
                n_lc_active=n_lc_active,
                n_batch_active=n_batch_active,
                batch_freq=batch_freq,
                parked=parked,
                extra_power=extra_power,
            )

    def _assemble_traced(
        self,
        name: str,
        demand: DemandTrace,
        *,
        n_lc_active: np.ndarray,
        n_batch_active: np.ndarray,
        batch_freq: np.ndarray,
        parked: Optional[np.ndarray] = None,
        extra_power: Optional[np.ndarray] = None,
    ) -> ScenarioResult:
        obs.count("reshape.scenarios_assembled")
        obs.count("reshape.steps_simulated", demand.grid.n_samples)
        outcome = dispatch(
            demand.values, n_lc_active, self.conversion.conversion_threshold
        )
        batch = batch_throughput(n_batch_active, batch_freq, self.dvfs)

        lc_power = n_lc_active * self.fleet.lc_model.power(outcome.per_server_load)
        batch_power = n_batch_active * self.fleet.batch_model.power(1.0, batch.freq)
        total = lc_power + batch_power
        if parked is not None:
            # Parked conversion servers idle with the OS up (no reboot on
            # conversion, Sec. 4.2), drawing the LC idle floor.
            total = total + np.asarray(parked, dtype=np.float64) * self.fleet.lc_model.power(0.0)
        if extra_power is not None:
            # Injected correlated spike bursts (PowerSpikePolicy): exogenous
            # extra draw on top of the planned fleet.
            total = total + np.asarray(extra_power, dtype=np.float64)
        if self.fleet.other_power is not None:
            demand.grid.require_same(self.fleet.other_power.grid)
            total = total + self.fleet.other_power.values

        # Flight-recorder hook: per-step utilization/slack/headroom against
        # the scenario budget, plus violation/advisory events.  No-op unless
        # a recorder or event log is installed.
        obs_telemetry.record_power(
            f"reshape/{name}",
            total,
            self.fleet.budget_watts,
            step_minutes=demand.grid.step_minutes,
            source=f"reshaping.{name}",
        )

        load_on_original = demand.values / self.fleet.n_lc
        return ScenarioResult(
            name=name,
            grid=demand.grid,
            budget_watts=self.fleet.budget_watts,
            demand=demand.values.copy(),
            lc_served=outcome.served,
            lc_dropped=outcome.dropped,
            load_on_original=load_on_original,
            per_server_load=outcome.per_server_load,
            n_lc_active=np.asarray(n_lc_active, dtype=np.float64).copy(),
            n_batch_active=np.asarray(n_batch_active, dtype=np.float64).copy(),
            batch_throughput=batch.throughput,
            batch_freq=batch.freq,
            total_power=total,
            parked=(
                np.asarray(parked, dtype=np.float64).copy()
                if parked is not None
                else np.zeros(demand.grid.n_samples)
            ),
        )

    # ------------------------------------------------------------------
    # emergency fallback
    # ------------------------------------------------------------------
    def recover(self, scenario: ScenarioResult) -> ChaosRunResult:
        """Route an over-budget scenario through the capping fallback.

        Decomposes ``total_power`` into LC / batch / other components,
        invokes the hierarchical capping loop on a one-node tree carrying
        the scenario budget, and rebuilds the scenario from the capped
        components.  Any residual the class floors cannot shed is removed
        by forced shutdown (recorded, never silent), so the recovered
        scenario satisfies ``overload_steps() == 0`` by construction.
        """
        trace = PowerTrace(scenario.grid, np.maximum(scenario.total_power, 0.0))
        trips_before = self.breaker.trips(trace, scenario.budget_watts, "dc")
        overload_before = scenario.overload_steps()
        if overload_before == 0:
            return ChaosRunResult(
                scenario=scenario,
                raw=scenario,
                recovery=RecoveryReport(
                    engaged=False,
                    trips_before=trips_before,
                    overload_steps_before=0,
                ),
            )

        for trip in trips_before:
            obs_events.emit(
                obs_events.BREAKER_TRIP,
                severity="critical",
                source="faults.recover",
                node=trip.node_name,
                scenario=scenario.name,
                start_index=trip.start_index,
                duration_samples=trip.duration_samples,
                peak_overload_watts=trip.peak_overload_watts,
            )
        lc_power, batch_power, other_power = self._components(scenario)
        report, capped = self._run_capping(
            scenario, lc_power, batch_power, other_power
        )
        capped_lc = capped.row("lc").copy()
        capped_batch = capped.row("batch").copy()
        capped_other = capped.row("other").copy()

        total = capped_lc + capped_batch + capped_other
        # Forced shutdown: whatever the floors protect beyond the budget is
        # powered off outright (the breaker would take it anyway).
        forced = np.maximum(total - scenario.budget_watts, 0.0)
        if np.any(forced > 0):
            for component in (capped_batch, capped_other, capped_lc):
                shed = np.minimum(component, forced)
                component -= shed
                forced -= shed
            total = capped_lc + capped_batch + capped_other
        forced_total = float(
            np.maximum(
                capped.row("lc") + capped.row("batch") + capped.row("other")
                - scenario.budget_watts,
                0.0,
            ).sum()
        ) * scenario.grid.step_minutes
        if forced_total < 1e-6:  # numerical crumbs, not real shutdowns
            forced_total = 0.0

        recovered = self._rebuild(
            scenario, lc_power, batch_power, capped_lc, capped_batch, total
        )
        trips_after = self.breaker.trips(
            PowerTrace(scenario.grid, np.maximum(recovered.total_power, 0.0)),
            scenario.budget_watts,
            "dc",
        )
        obs_events.emit(
            obs_events.CAPPING,
            severity="warning",
            source="faults.recover",
            scenario=scenario.name,
            overload_steps_before=overload_before,
            overload_steps_after=recovered.overload_steps(),
            trips_before=len(trips_before),
            trips_after=len(trips_after),
            lc_energy_shed=report.lc_energy_shed,
            forced_shutdown_watt_minutes=forced_total,
        )
        return ChaosRunResult(
            scenario=recovered,
            raw=scenario,
            recovery=RecoveryReport(
                engaged=True,
                trips_before=trips_before,
                trips_after=trips_after,
                overload_steps_before=overload_before,
                overload_steps_after=recovered.overload_steps(),
                capping=report,
                forced_shutdown_watt_minutes=forced_total,
            ),
        )

    # ------------------------------------------------------------------
    def _components(
        self, scenario: ScenarioResult
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a scenario's total power into LC / batch / other draw."""
        lc_power = scenario.n_lc_active * self.fleet.lc_model.power(
            scenario.per_server_load
        )
        batch_power = scenario.n_batch_active * self.fleet.batch_model.power(
            1.0, scenario.batch_freq
        )
        other_power = scenario.total_power - lc_power - batch_power
        return lc_power, batch_power, np.maximum(other_power, 0.0)

    def _run_capping(
        self,
        scenario: ScenarioResult,
        lc_power: np.ndarray,
        batch_power: np.ndarray,
        other_power: np.ndarray,
    ) -> Tuple[CappingReport, TraceSet]:
        root = PowerNode(
            "dc", level="datacenter", budget_watts=scenario.budget_watts
        )
        topology = PowerTopology(root)
        assignment = Assignment(
            topology, {"lc": "dc", "batch": "dc", "other": "dc"}
        )
        traces = TraceSet(
            scenario.grid,
            ["lc", "batch", "other"],
            np.vstack(
                [
                    np.maximum(lc_power, 0.0),
                    np.maximum(batch_power, 0.0),
                    other_power,
                ]
            ),
        )
        kinds = {
            "lc": ServiceKind.LATENCY_CRITICAL,
            "batch": ServiceKind.BATCH,
            "other": ServiceKind.OTHER,
        }
        simulator = CappingSimulator(
            topology, assignment, traces, kinds, policy=self.capping_policy
        )
        return simulator.run_capped()

    def _rebuild(
        self,
        scenario: ScenarioResult,
        lc_before: np.ndarray,
        batch_before: np.ndarray,
        lc_after: np.ndarray,
        batch_after: np.ndarray,
        total: np.ndarray,
    ) -> ScenarioResult:
        """A copy of ``scenario`` with throughput scaled to the capped power."""
        with np.errstate(divide="ignore", invalid="ignore"):
            lc_ratio = np.where(lc_before > 0, lc_after / lc_before, 1.0)
            batch_ratio = np.where(
                batch_before > 0, batch_after / batch_before, 1.0
            )
        lc_served = scenario.lc_served * lc_ratio
        return ScenarioResult(
            name=scenario.name,
            grid=scenario.grid,
            budget_watts=scenario.budget_watts,
            demand=scenario.demand.copy(),
            lc_served=lc_served,
            lc_dropped=np.maximum(scenario.demand - lc_served, 0.0),
            load_on_original=scenario.load_on_original.copy(),
            per_server_load=scenario.per_server_load * lc_ratio,
            n_lc_active=scenario.n_lc_active.copy(),
            n_batch_active=scenario.n_batch_active.copy(),
            batch_throughput=scenario.batch_throughput * batch_ratio,
            batch_freq=scenario.batch_freq.copy(),
            total_power=total,
            parked=(
                scenario.parked.copy() if scenario.parked is not None else None
            ),
        )
