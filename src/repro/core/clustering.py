"""K-means clustering over asynchrony-score vectors (Sec. 3.5).

The paper embeds every instance as a point in the |B|-dimensional space
spanned by its I-to-S asynchrony scores and applies k-means to group
*synchronous* instances together (so the placer can then spread each group
across power nodes).  Two requirements shape this implementation:

* **determinism** — placements must be reproducible, so all randomness flows
  from an explicit seed;
* **equal-size clusters** — Sec. 3.5: "Each of these clusters have the same
  number of instances", which makes the round-robin distribution exact.
  :func:`balanced_kmeans` enforces that with a capacity-constrained
  assignment step on top of Lloyd iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import obs


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of a clustering run.

    Attributes
    ----------
    labels:
        Cluster index per point, shape ``(n_points,)``.
    centroids:
        Cluster centres, shape ``(k, n_dims)``.
    inertia:
        Sum of squared distances of points to their assigned centroid.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        if not 0 <= cluster < self.k:
            raise IndexError(f"cluster {cluster} out of range (k={self.k})")
        return np.flatnonzero(self.labels == cluster)

    def sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids.
            centroids[i] = points[int(rng.integers(n))]
            continue
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[i] = points[choice]
        distance_sq = ((points - centroids[i]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> ClusteringResult:
    """Standard Lloyd's k-means with k-means++ seeding and restarts."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)

    best: Optional[ClusteringResult] = None
    for _ in range(max(1, n_init)):
        obs.count("cluster.restarts")
        centroids = _kmeans_pp_init(points, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(max_iter):
            obs.count("cluster.lloyd_iterations")
            distances = _pairwise_sq_distances(points, centroids)
            labels = distances.argmin(axis=1)
            new_centroids = _recompute_centroids(points, labels, centroids, rng)
            shift = float(((new_centroids - centroids) ** 2).sum())
            centroids = new_centroids
            if shift <= tol:
                break
        distances = _pairwise_sq_distances(points, centroids)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(n), labels].sum())
        candidate = ClusteringResult(labels=labels, centroids=centroids, inertia=inertia)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def balanced_kmeans(
    points: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    balance_rounds: int = 4,
) -> ClusteringResult:
    """K-means with (near-)equal cluster sizes.

    Cluster sizes differ by at most one: ``n mod k`` clusters receive
    ``ceil(n/k)`` points, the rest ``floor(n/k)``.  Assignment is a greedy
    capacity-constrained fill: (point, cluster) pairs are taken in order of
    ascending distance, each point landing in the nearest cluster that still
    has room.  Centroids are then recomputed and the fill repeated for
    ``balance_rounds`` rounds.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    with obs.span("cluster", points=n, k=k):
        unbalanced = kmeans(points, k, seed=seed, n_init=n_init, max_iter=max_iter)
        centroids = unbalanced.centroids
        labels = unbalanced.labels
        for _ in range(max(1, balance_rounds)):
            obs.count("cluster.balance_rounds")
            labels = _capacity_assign(points, centroids, k)
            rng = np.random.default_rng(seed)
            centroids = _recompute_centroids(points, labels, centroids, rng)
        distances = _pairwise_sq_distances(points, centroids)
        inertia = float(distances[np.arange(n), labels].sum())
        return ClusteringResult(labels=labels, centroids=centroids, inertia=inertia)


def _capacity_assign(points: np.ndarray, centroids: np.ndarray, k: int) -> np.ndarray:
    """Greedy balanced assignment of points to capacity-limited clusters."""
    n = points.shape[0]
    base, remainder = divmod(n, k)
    capacities = np.full(k, base, dtype=np.int64)
    capacities[:remainder] += 1

    distances = _pairwise_sq_distances(points, centroids)
    # Process points hardest-to-place first: those with the largest gap
    # between their best and worst option have the most to lose.
    spread = distances.max(axis=1) - distances.min(axis=1)
    order = np.argsort(-spread, kind="stable")

    labels = np.full(n, -1, dtype=np.int64)
    remaining = capacities.copy()
    for point in order:
        ranked = np.argsort(distances[point], kind="stable")
        for cluster in ranked:
            if remaining[cluster] > 0:
                labels[point] = cluster
                remaining[cluster] -= 1
                break
    assert (labels >= 0).all()
    return labels


def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_points, k)``."""
    diff = points[:, np.newaxis, :] - centroids[np.newaxis, :, :]
    return (diff * diff).sum(axis=2)


def _recompute_centroids(
    points: np.ndarray,
    labels: np.ndarray,
    previous: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mean of each cluster; empty clusters re-seeded from a random point."""
    k = previous.shape[0]
    centroids = previous.copy()
    for cluster in range(k):
        members = labels == cluster
        if members.any():
            centroids[cluster] = points[members].mean(axis=0)
        else:
            centroids[cluster] = points[int(rng.integers(points.shape[0]))]
    return centroids
