"""Baseline placements and prior-work comparators.

Oblivious (service-grouped) and random placements bracket the placement
space; StatProf reimplements the statistical-multiplexing provisioning prior
work compared against in Figure 11.
"""

from .esd import (
    BatterySpec,
    ShavingResult,
    overload_episode_durations,
    required_battery_energy,
    shave_peaks,
)
from .oblivious import fill_leaves_in_order, oblivious_placement
from .random_placement import random_placement, round_robin_placement
from .statprof import (
    FIGURE11_CONFIGS,
    StatProfConfig,
    instance_provisions,
    provisioning_comparison,
    smoothoperator_required_budget,
    statprof_node_budget,
    statprof_required_budget,
)

__all__ = [
    "BatterySpec",
    "ShavingResult",
    "shave_peaks",
    "required_battery_energy",
    "overload_episode_durations",
    "oblivious_placement",
    "fill_leaves_in_order",
    "random_placement",
    "round_robin_placement",
    "StatProfConfig",
    "FIGURE11_CONFIGS",
    "instance_provisions",
    "statprof_node_budget",
    "statprof_required_budget",
    "smoothoperator_required_budget",
    "provisioning_comparison",
]
