"""Unit tests for budget provisioning policies."""

import numpy as np
import pytest

from repro.infra import (
    Assignment,
    NodePowerView,
    PeakProvisioningPolicy,
    PercentileProvisioningPolicy,
    apply_budgets,
    build_topology,
    compute_budgets,
    provision_from_view,
    provision_hierarchical,
    two_level_spec,
)
from repro.traces import TimeGrid, TraceSet


@pytest.fixture
def setup():
    grid = TimeGrid(0, 60, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    traces = TraceSet(grid, ["u", "d"], np.vstack([up, down]))
    assignment = Assignment(topo, {"u": "dc/rpp0", "d": "dc/rpp1"})
    view = NodePowerView(topo, assignment, traces)
    return topo, view


class TestPolicies:
    def test_peak_policy(self, setup):
        _, view = setup
        policy = PeakProvisioningPolicy(margin=0.1)
        assert policy.budget_for(view, "dc/rpp0") == pytest.approx(11.0)

    def test_peak_policy_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            PeakProvisioningPolicy(margin=-0.1)

    def test_percentile_policy(self, setup):
        _, view = setup
        policy = PercentileProvisioningPolicy(under_provision=50.0)
        assert policy.budget_for(view, "dc/rpp0") == pytest.approx(5.0)

    def test_percentile_policy_validation(self):
        with pytest.raises(ValueError):
            PercentileProvisioningPolicy(under_provision=100)


class TestApplication:
    def test_compute_budgets_covers_all_nodes(self, setup):
        topo, view = setup
        budgets = compute_budgets(view, PeakProvisioningPolicy())
        assert set(budgets) == {n.name for n in topo.nodes()}

    def test_apply_budgets(self, setup):
        topo, view = setup
        apply_budgets(topo, {"dc": 100.0})
        assert topo.node("dc").budget_watts == 100.0

    def test_apply_negative_rejected(self, setup):
        topo, _ = setup
        with pytest.raises(ValueError):
            apply_budgets(topo, {"dc": -1.0})

    def test_provision_from_view_writes(self, setup):
        topo, view = setup
        budgets = provision_from_view(view, margin=0.0)
        assert topo.node("dc/rpp0").budget_watts == pytest.approx(10.0)
        assert budgets["dc"] == pytest.approx(view.node_peak("dc"))


class TestHierarchical:
    def test_parents_are_sum_of_children(self, setup):
        topo, view = setup
        provision_hierarchical(view, margin=0.0)
        children_sum = (
            topo.node("dc/rpp0").budget_watts + topo.node("dc/rpp1").budget_watts
        )
        assert topo.node("dc").budget_watts == pytest.approx(children_sum)

    def test_root_exceeds_own_peak_when_children_async(self, setup):
        """The fragmentation signature: root budget > root peak."""
        topo, view = setup
        provision_hierarchical(view, margin=0.0)
        # up+down is constant 10, so root peak is 10 but budget is 20.
        assert topo.node("dc").budget_watts == pytest.approx(20.0)
        assert view.node_peak("dc") == pytest.approx(10.0)

    def test_margin_applies_at_leaves(self, setup):
        topo, view = setup
        provision_hierarchical(view, margin=0.5)
        assert topo.node("dc/rpp0").budget_watts == pytest.approx(15.0)
        assert topo.node("dc").budget_watts == pytest.approx(30.0)

    def test_negative_margin_rejected(self, setup):
        _, view = setup
        with pytest.raises(ValueError):
            provision_hierarchical(view, margin=-0.1)
