"""Exact Γ-sum headroom accounting with incremental updates.

The Γ-robust load of a power node holding instances ``S`` is::

    load_Γ(S) = Σ_{i∈S} p_c(i)  +  max_{T⊆S, |T|≤Γ} Σ_{i∈T} p_r(i)

The inner maximum is exact and cheap: it is simply the sum of the Γ
largest radii in ``S`` (Bertsimas–Sim protection for a single budget row).
Γ = 0 reduces to nominal accounting; Γ ≥ |S| to worst-case (all-max)
accounting; the node's robust headroom is monotonically non-increasing in
Γ — the property suite in ``tests/properties`` pins all three.

Two access patterns are served:

* :func:`robust_node_loads` / :func:`robust_node_headroom` — vectorised
  whole-tree sweeps (``np.partition`` per node) for one-shot audits;
* :class:`GammaAccountant` / :class:`RobustHeadroomIndex` — mutable
  per-node state for inner loops (first-fit placement, swap evaluation):
  adding or removing one instance costs O(log n) comparisons against a
  sorted radius list plus an O(1) patch of the cached top-Γ sum, so a
  placement pass over the whole fleet never re-sorts a node.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence

import numpy as np

from .uncertainty import UncertainPowerModel

__all__ = [
    "GammaAccountant",
    "RobustHeadroomIndex",
    "gamma_sum",
    "robust_load",
    "robust_node_headroom",
    "robust_node_loads",
]


def gamma_sum(radii: np.ndarray, gamma: int) -> float:
    """Sum of the ``gamma`` largest entries of ``radii`` (exact Γ-sum)."""
    if gamma < 0:
        raise ValueError("gamma cannot be negative")
    radii = np.asarray(radii, dtype=np.float64)
    n = radii.shape[0]
    if gamma == 0 or n == 0:
        return 0.0
    if gamma >= n:
        return float(radii.sum())
    # partition puts the gamma largest in the tail without a full sort.
    return float(np.partition(radii, n - gamma)[n - gamma :].sum())


def robust_load(nominal: np.ndarray, radii: np.ndarray, gamma: int) -> float:
    """Γ-robust aggregate load: ``Σ nominal + top-Γ radii``."""
    nominal = np.asarray(nominal, dtype=np.float64)
    return float(nominal.sum()) + gamma_sum(radii, gamma)


class GammaAccountant:
    """Γ-robust load of one node, maintained incrementally.

    Members are tracked as ``instance_id → (nominal, radius)``; the radii
    additionally live in an ascending sorted list so membership changes
    patch the cached top-Γ sum in O(log n):

    * **add r** — if fewer than Γ members, ``r`` joins the top set; else it
      joins only if it beats the current top-set minimum, which it evicts.
    * **remove r** — if ``r`` sat in the top set, the largest non-top
      radius is promoted in its place.

    ``bisect``'s list insertion moves memory, but the comparison work — the
    part that grows with node size — stays logarithmic, and no operation
    ever re-sorts or re-sums the whole membership.
    """

    __slots__ = ("gamma", "_members", "_radii", "_nominal_sum", "_top_sum")

    def __init__(self, gamma: int) -> None:
        if gamma < 0:
            raise ValueError("gamma cannot be negative")
        self.gamma = gamma
        self._members: Dict[str, tuple] = {}
        self._radii: List[float] = []  # ascending
        self._nominal_sum = 0.0
        self._top_sum = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._members

    @property
    def members(self) -> List[str]:
        return list(self._members)

    @property
    def nominal_sum(self) -> float:
        return self._nominal_sum

    @property
    def top_sum(self) -> float:
        """The cached sum of the Γ largest member radii."""
        return self._top_sum

    @property
    def radius_sum(self) -> float:
        """Sum of *all* member radii (the Γ→∞ protection mass)."""
        return float(sum(self._radii))

    # ------------------------------------------------------------------
    def add(self, instance_id: str, nominal: float, radius: float) -> None:
        if instance_id in self._members:
            raise ValueError(f"{instance_id!r} already accounted here")
        if nominal < 0 or radius < 0:
            raise ValueError("nominal and radius cannot be negative")
        self._members[instance_id] = (float(nominal), float(radius))
        self._nominal_sum += nominal
        self._top_sum += self._top_delta_for_add(radius)
        insort(self._radii, float(radius))

    def remove(self, instance_id: str) -> None:
        try:
            nominal, radius = self._members.pop(instance_id)
        except KeyError:
            raise KeyError(f"{instance_id!r} is not accounted here")
        self._nominal_sum -= nominal
        n = len(self._radii)
        if self.gamma > 0:
            if n <= self.gamma:
                self._top_sum -= radius
            else:
                boundary = self._radii[n - self.gamma]
                if radius >= boundary:
                    # r occupied a top slot; the best of the rest moves up.
                    self._top_sum -= radius
                    self._top_sum += self._radii[n - self.gamma - 1]
        index = bisect_left(self._radii, radius)
        self._radii.pop(index)

    def _top_delta_for_add(self, radius: float) -> float:
        """How the top-Γ sum changes if a member with ``radius`` joins."""
        if self.gamma == 0:
            return 0.0
        n = len(self._radii)
        if n < self.gamma:
            return radius
        boundary = self._radii[n - self.gamma]
        if radius > boundary:
            return radius - boundary
        return 0.0

    # ------------------------------------------------------------------
    def robust_load(self) -> float:
        return self._nominal_sum + self._top_sum

    def load_if_added(self, nominal: float, radius: float) -> float:
        """Robust load after a hypothetical add — no mutation, O(log n)."""
        return (
            self._nominal_sum
            + nominal
            + self._top_sum
            + self._top_delta_for_add(radius)
        )

    def headroom(self, budget: float) -> float:
        """Budget minus robust load (may be negative: Γ-infeasible)."""
        return budget - self.robust_load()

    def recompute(self) -> None:
        """Rebuild the cached sums exactly from the membership (drift reset)."""
        values = list(self._members.values())
        self._nominal_sum = float(sum(v[0] for v in values))
        self._radii = sorted(v[1] for v in values)
        self._top_sum = gamma_sum(np.asarray(self._radii), self.gamma)


class RobustHeadroomIndex:
    """Γ-accountants for every node of a topology, updated along root paths.

    Placing (or removing) one instance touches every ancestor of its leaf,
    so a single placement step costs ``O(depth × log n)``.  The index is
    what keeps the first-fit placement pass and swap-style loops fast: no
    per-step re-aggregation of any node.
    """

    def __init__(self, topology, model: UncertainPowerModel, gamma: int) -> None:
        self.topology = topology
        self.model = model
        self.gamma = gamma
        self.accountants: Dict[str, GammaAccountant] = {
            node.name: GammaAccountant(gamma) for node in topology.nodes()
        }
        self._leaf_of: Dict[str, str] = {}
        self._paths: Dict[str, List[str]] = {
            leaf.name: [node.name for node in leaf.path_from_root()]
            for leaf in topology.leaves()
        }

    # ------------------------------------------------------------------
    def path(self, leaf_name: str) -> List[str]:
        try:
            return self._paths[leaf_name]
        except KeyError:
            raise KeyError(f"{leaf_name!r} is not a leaf of this topology")

    def place(self, instance_id: str, leaf_name: str) -> None:
        nominal = self.model.nominal_of(instance_id)
        radius = self.model.radius_of(instance_id)
        if instance_id in self._leaf_of:
            raise ValueError(f"{instance_id!r} already placed")
        for name in self.path(leaf_name):
            self.accountants[name].add(instance_id, nominal, radius)
        self._leaf_of[instance_id] = leaf_name

    def remove(self, instance_id: str) -> str:
        """Un-place an instance; returns the leaf it occupied."""
        try:
            leaf_name = self._leaf_of.pop(instance_id)
        except KeyError:
            raise KeyError(f"{instance_id!r} is not placed")
        for name in self.path(leaf_name):
            self.accountants[name].remove(instance_id)
        return leaf_name

    def move(self, instance_id: str, leaf_name: str) -> None:
        self.remove(instance_id)
        self.place(instance_id, leaf_name)

    def leaf_of(self, instance_id: str) -> str:
        try:
            return self._leaf_of[instance_id]
        except KeyError:
            raise KeyError(f"{instance_id!r} is not placed")

    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> None:
        """Apply a :class:`~repro.engine.delta.FleetDelta` to the index.

        Moves map directly onto :meth:`place` / :meth:`remove` /
        :meth:`move` (each O(depth × log n)).  Trace updates re-read the
        uncertainty model for the named instances (remove + place), so a
        refreshed nominal/radius takes effect along the whole root path.
        """
        for mv in delta.moves:
            instance_id = mv.instance_id
            if mv.src_leaf is None:
                self.place(instance_id, mv.dst_leaf)
                continue
            current = self.leaf_of(instance_id)
            if current != mv.src_leaf:
                raise ValueError(
                    f"{instance_id!r} is on {current!r}, not {mv.src_leaf!r}"
                )
            if mv.dst_leaf is None:
                self.remove(instance_id)
            else:
                self.move(instance_id, mv.dst_leaf)
        for instance_id in delta.trace_updates:
            leaf_name = self.remove(instance_id)
            self.place(instance_id, leaf_name)

    #: :func:`repro.infra.headroom.HeadroomIndex`-style alias.
    apply = apply_delta

    def verify(self) -> None:
        """Cross-check every accountant against an exact recomputation.

        The Γ-accounting analogue of the remapping engine's
        ``verify_every`` harness: rebuilds each node's nominal sum and
        top-Γ radius sum from the membership and raises on divergence.
        """
        for name, accountant in self.accountants.items():
            values = list(accountant._members.values())
            nominal_sum = float(sum(v[0] for v in values))
            top_sum = gamma_sum(
                np.asarray(sorted(v[1] for v in values)), accountant.gamma
            )
            # The accountant's O(1) patches reorder float additions, so
            # compare within accumulation tolerance, not bit-exactly.
            scale = max(1.0, abs(nominal_sum), abs(top_sum))
            if (
                abs(accountant._nominal_sum - nominal_sum) > 1e-9 * scale
                or abs(accountant._top_sum - top_sum) > 1e-9 * scale
            ):
                raise RuntimeError(
                    f"node {name}: incremental Γ-accounting diverged "
                    "from exact recomputation"
                )

    def as_mapping(self) -> Dict[str, str]:
        """instance id → leaf name for everything currently placed."""
        return dict(self._leaf_of)

    # ------------------------------------------------------------------
    def robust_load(self, node_name: str) -> float:
        return self.accountants[node_name].robust_load()

    def headroom_along_path(
        self, leaf_name: str, budgets: Dict[str, float]
    ) -> float:
        """Scarcest budgeted headroom on the leaf's root path (inf if none)."""
        slack = float("inf")
        for name in self.path(leaf_name):
            budget = budgets.get(name)
            if budget is None:
                continue
            slack = min(slack, self.accountants[name].headroom(budget))
        return slack

    def fits(
        self, instance_id: str, leaf_name: str, budgets: Dict[str, float]
    ) -> bool:
        """Would placing the instance keep every budgeted ancestor Γ-feasible?"""
        nominal = self.model.nominal_of(instance_id)
        radius = self.model.radius_of(instance_id)
        for name in self.path(leaf_name):
            budget = budgets.get(name)
            if budget is None:
                continue
            if self.accountants[name].load_if_added(nominal, radius) > budget + 1e-9:
                return False
        return True

    def slack_if_added(
        self, instance_id: str, leaf_name: str, budgets: Dict[str, float]
    ) -> float:
        """Scarcest post-placement headroom along the path (inf if unbudgeted)."""
        nominal = self.model.nominal_of(instance_id)
        radius = self.model.radius_of(instance_id)
        slack = float("inf")
        for name in self.path(leaf_name):
            budget = budgets.get(name)
            if budget is None:
                continue
            slack = min(
                slack,
                budget - self.accountants[name].load_if_added(nominal, radius),
            )
        return slack

    def slack_vector_if_added(
        self, instance_id: str, leaf_name: str, budgets: Dict[str, float]
    ) -> tuple:
        """Post-placement headrooms along the path, sorted ascending.

        The full vector matters when budgets are tight: candidate leaves
        share their upper ancestors, so once a shared level goes negative
        the scalar min is identical for every candidate and can no longer
        rank them.  Comparing the sorted vectors lexicographically (leximin)
        lets the leaf-local terms break exactly those ties.
        """
        nominal = self.model.nominal_of(instance_id)
        radius = self.model.radius_of(instance_id)
        slacks = []
        for name in self.path(leaf_name):
            budget = budgets.get(name)
            if budget is None:
                continue
            slacks.append(
                budget - self.accountants[name].load_if_added(nominal, radius)
            )
        slacks.sort()
        return tuple(slacks)


# ----------------------------------------------------------------------
# vectorised whole-tree sweeps
# ----------------------------------------------------------------------
def robust_node_loads(
    topology,
    assignment,
    model: UncertainPowerModel,
    gamma: int,
    *,
    nodes: Optional[Sequence] = None,
) -> Dict[str, float]:
    """Γ-robust load of every node (or of ``nodes``) under a placement."""
    result: Dict[str, float] = {}
    for node in nodes if nodes is not None else topology.nodes():
        members = assignment.instances_under(node.name)
        if not members:
            result[node.name] = 0.0
            continue
        nominal, radii = model.rows(members)
        result[node.name] = robust_load(nominal, radii, gamma)
    return result


def robust_node_headroom(
    topology,
    assignment,
    model: UncertainPowerModel,
    gamma: int,
) -> Dict[str, float]:
    """Budget minus Γ-robust load for every *budgeted* node.

    Unlike the nominal :func:`repro.infra.headroom.node_headroom` this is
    deliberately **not** floored at zero: a negative value is the signal
    that the node is Γ-infeasible — Γ simultaneous spikes would breach its
    budget — which is exactly what robust placement exists to prevent.
    """
    budgeted = [n for n in topology.nodes() if n.budget_watts is not None]
    loads = robust_node_loads(topology, assignment, model, gamma, nodes=budgeted)
    return {node.name: node.budget_watts - loads[node.name] for node in budgeted}
