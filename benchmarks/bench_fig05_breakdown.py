"""Figure 5: top power-consumer breakdown per datacenter.

Paper: per-DC pie charts of the 30-day average power share of the top-10
services (DC1 led by frontend 20.8% and cache 20.1%; DC2 by hadoop 25.9%;
DC3 by frontend 21.5% and cache 19.0%).
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table


def _run(full_scale):
    return {
        name: E.run_figure5(E.get_datacenter(name, **full_scale))
        for name in E.DATACENTER_NAMES
    }


@pytest.mark.benchmark(group="figure5")
def test_fig05_breakdown(benchmark, emit_report, full_scale):
    result = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    blocks = []
    for name, breakdown in result.items():
        rows = [(service, format_percent(share)) for service, share in breakdown]
        blocks.append(format_table(["service", "share"], rows, title=f"Figure 5 — {name}"))
    emit_report("fig05_breakdown", "\n\n".join(blocks))

    # Shape: DC1/DC3 are frontend+cache led; DC2 is hadoop led.
    assert result["DC1"][0][0] in ("frontend", "cache")
    assert result["DC2"][0][0] == "hadoop"
    assert result["DC3"][0][0] in ("frontend", "cache")
    # Top consumer holds a ~20-25% share, like the paper's pies.
    for name in E.DATACENTER_NAMES:
        assert 0.10 <= result[name][0][1] <= 0.35
