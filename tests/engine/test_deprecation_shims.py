"""The legacy shims must warn loudly and delegate bit-identically.

``reshaping.runtime`` / ``faults.runtime`` / ``infra.capping`` survive
only for backward compatibility; these tests pin the contract the next
refactor needs in order to delete them safely: every shim emits a
``DeprecationWarning``, every shim produces exactly what the engine
produces, and a plain ``import repro`` stays silent.
"""

import importlib
import subprocess
import sys
import warnings

import numpy as np
import pytest

from conftest import make_demand, make_runtime_parts
from repro.engine import Engine, ScenarioSpec, execute


# ----------------------------------------------------------------------
# the warnings
# ----------------------------------------------------------------------
def test_reshaping_runtime_init_emits_deprecation_warning():
    from repro.reshaping.runtime import ReshapingRuntime

    fleet, conversion, throttle, dvfs = make_runtime_parts()
    with pytest.warns(DeprecationWarning, match="ReshapingRuntime"):
        ReshapingRuntime(fleet, conversion, throttle=throttle, dvfs=dvfs)


def test_chaos_runtime_init_emits_deprecation_warning():
    from repro.faults.runtime import ChaosReshapingRuntime

    fleet, conversion, _, _ = make_runtime_parts()
    with pytest.warns(DeprecationWarning, match="ChaosReshapingRuntime"):
        ChaosReshapingRuntime(fleet, conversion)


def test_infra_capping_module_warns_on_import():
    import repro.infra.capping as shim

    with pytest.warns(DeprecationWarning, match="repro.infra.capping"):
        shim = importlib.reload(shim)
    # The reload must keep re-exporting the canonical objects.
    from repro.engine.capping import CappingSimulator

    assert shim.CappingSimulator is CappingSimulator


def test_plain_import_of_repro_stays_silent():
    """Only *using* a shim may warn — ``import repro`` must not."""
    code = "import repro, repro.reshaping, repro.faults, repro.infra"
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


# ----------------------------------------------------------------------
# bit-identical delegation
# ----------------------------------------------------------------------
def test_reshaping_runtime_delegates_bit_identically():
    from repro.reshaping.runtime import ReshapingRuntime

    fleet, conversion, throttle, dvfs = make_runtime_parts()
    demand = make_demand()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        runtime = ReshapingRuntime(fleet, conversion, throttle=throttle, dvfs=dvfs)
    via_shim = runtime.run_conversion(demand, extra_servers=8)

    spec = ScenarioSpec(
        mode="conversion",
        fleet=fleet,
        demand=demand,
        conversion=conversion,
        throttle=throttle,
        dvfs=dvfs,
        extra_servers=8,
    )
    via_engine = Engine.from_spec(spec).run(spec).result
    assert np.array_equal(via_shim.total_power, via_engine.total_power)
    assert np.array_equal(via_shim.lc_served, via_engine.lc_served)
    assert np.array_equal(via_shim.batch_throughput, via_engine.batch_throughput)


def test_chaos_runtime_delegates_bit_identically():
    from repro.faults.runtime import ChaosReshapingRuntime
    from repro.engine import ConversionFaultModel

    fleet, conversion, _, _ = make_runtime_parts()
    demand = make_demand()
    faults = ConversionFaultModel(latency_steps=2, failure_prob=0.3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        runtime = ChaosReshapingRuntime(
            fleet, conversion, conversion_faults=faults, seed=11
        )
    via_shim = runtime.run_conversion_chaos(demand, extra_servers=8)

    spec = ScenarioSpec(
        mode="conversion_chaos",
        fleet=fleet,
        demand=demand,
        conversion=conversion,
        conversion_faults=faults,
        seed=11,
        extra_servers=8,
    )
    via_engine = execute(spec).result
    assert np.array_equal(
        via_shim.scenario.total_power, via_engine.scenario.total_power
    )
    assert via_shim.recovery.engaged == via_engine.recovery.engaged
    assert np.array_equal(via_shim.raw.total_power, via_engine.raw.total_power)


def test_infra_capping_reexports_are_the_engine_objects():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        import repro.infra.capping as shim
    import repro.engine.capping as canonical

    for name in shim.__all__:
        assert getattr(shim, name) is getattr(canonical, name)
