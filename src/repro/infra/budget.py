"""Power-budget provisioning policies.

The paper never changes the physical infrastructure; budgets are fixed.  For
experiments we must *choose* those fixed budgets, and the natural choice —
the one the paper's "host more servers" arithmetic implies — is to provision
every node for the peak it sees under the *original* (oblivious) placement,
plus a safety margin.  Figure 11 additionally compares percentile-based
provisioning (StatProf) at several levels of aggressiveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from .aggregation import NodePowerView
from .topology import PowerTopology


@dataclass(frozen=True)
class PeakProvisioningPolicy:
    """Provision each node at ``peak × (1 + margin)``.

    ``margin`` models the safety headroom operators keep between observed
    peak and breaker limit.
    """

    margin: float = 0.0

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError("margin cannot be negative")

    def budget_for(self, view: NodePowerView, node_name: str) -> float:
        return view.node_peak(node_name) * (1.0 + self.margin)


@dataclass(frozen=True)
class PercentileProvisioningPolicy:
    """Provision each node at the ``(100 - under_provision)``-th percentile
    of its aggregate trace, times ``(1 + margin)``.

    ``under_provision = u`` corresponds to the SmoOp(u, ·) configurations of
    Figure 11 (under-provisioning applied to the *aggregate* trace, unlike
    StatProf which applies it per instance before summing).
    """

    under_provision: float = 0.0
    margin: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.under_provision < 100:
            raise ValueError("under_provision must be in [0, 100)")
        if self.margin < 0:
            raise ValueError("margin cannot be negative")

    def budget_for(self, view: NodePowerView, node_name: str) -> float:
        q = 100.0 - self.under_provision
        return view.node_percentile(node_name, q) * (1.0 + self.margin)


@dataclass(frozen=True)
class GammaProvisioningPolicy:
    """Provision each node at its Γ-robust load × ``(1 + margin)``.

    The robust load is ``Σ p_c`` over the node's instances plus the sum of
    its top-Γ spike radii (Bertsimas–Sim): the budget survives any ``gamma``
    co-located instances spiking to ``p_c + p_r`` simultaneously.  ``model``
    is an :class:`repro.robust.uncertainty.UncertainPowerModel` (any object
    with a ``rows(ids) -> (nominal, radius)`` method works); at ``gamma = 0``
    this is plain Σ-nominal provisioning.
    """

    model: object
    gamma: int = 0
    margin: float = 0.0

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")
        if self.margin < 0:
            raise ValueError("margin cannot be negative")

    def budget_for(self, view: NodePowerView, node_name: str) -> float:
        # Imported lazily: repro.robust sits above repro.infra in the
        # layering (it imports the topology/assignment machinery from here).
        from ..robust.headroom import robust_load

        members = view.assignment.instances_under(node_name)
        if not members:
            return 0.0
        nominal, radius = self.model.rows(members)
        return robust_load(nominal, radius, self.gamma) * (1.0 + self.margin)


def compute_budgets(view: NodePowerView, policy) -> Dict[str, float]:
    """Budget for every node in the view's topology under ``policy``."""
    return {
        node.name: policy.budget_for(view, node.name)
        for node in view.topology.nodes()
    }


def apply_budgets(topology: PowerTopology, budgets: Mapping[str, float]) -> None:
    """Write budgets onto the topology's nodes (in place)."""
    for name, budget in budgets.items():
        if budget < 0:
            raise ValueError(f"negative budget for {name}")
        topology.node(name).budget_watts = float(budget)


def provision_from_view(view: NodePowerView, *, margin: float = 0.0) -> Dict[str, float]:
    """Convenience: peak-provision every node from ``view`` and apply.

    Returns the budget mapping; also writes it onto the topology.
    """
    budgets = compute_budgets(view, PeakProvisioningPolicy(margin=margin))
    apply_budgets(view.topology, budgets)
    return budgets


def provision_hierarchical(
    view: NodePowerView, *, margin: float = 0.0
) -> Dict[str, float]:
    """Bottom-up provisioning: leaves at peak × (1+margin), parents at the
    sum of their children — "the power budget of each node is approximately
    the sum of the budgets of its children" (Sec. 2.1).

    This is the provisioning under which fragmentation manifests: every
    internal node holds budget its children cannot jointly use whenever
    their peaks are asynchronous.  Budgets are applied to the topology and
    returned.
    """
    if margin < 0:
        raise ValueError("margin cannot be negative")
    budgets: Dict[str, float] = {}

    def visit(node) -> float:
        if node.is_leaf:
            budgets[node.name] = view.node_peak(node.name) * (1.0 + margin)
        else:
            budgets[node.name] = sum(visit(child) for child in node.children)
        return budgets[node.name]

    visit(view.topology.root)
    apply_budgets(view.topology, budgets)
    return budgets
