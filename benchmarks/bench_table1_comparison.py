"""Table 1: qualitative comparison with prior approaches."""

import pytest

from repro.analysis import CAPABILITIES, TABLE1, table1_headers, table1_rows
from repro.analysis.report import format_table


def _run():
    return table1_headers(), table1_rows()


@pytest.mark.benchmark(group="table1")
def test_table1_comparison(benchmark, emit_report):
    headers, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_report(
        "table1_comparison",
        format_table(headers, rows, title="Table 1 — comparison with prior approaches"),
    )
    # SmoothOperator is the only approach checking every box.
    full_support = [a.name for a in TABLE1 if all(a.supports(c) for c in CAPABILITIES)]
    assert full_support == ["SmoothOperator"]
