"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "table1" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SmoothOperator" in out
        assert "Power Routing" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "%" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "RPP" in out
        assert "extra servers" in out

    def test_safety_small(self, capsys):
        assert main(["safety", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Power safety" in out
        assert "smoothoperator" in out

    def test_predictability_small(self, capsys):
        assert main(["predictability", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
