"""Unit tests for instance-to-leaf assignments."""

import pytest

from repro.infra import Assignment, AssignmentError, build_topology, two_level_spec


@pytest.fixture
def topo():
    return build_topology(two_level_spec("dc", leaves=2, leaf_capacity=3))


LEAF0 = "dc/rpp0"
LEAF1 = "dc/rpp1"


@pytest.fixture
def assignment(topo):
    return Assignment(
        topo, {"a": LEAF0, "b": LEAF0, "c": LEAF1}
    )


class TestValidation:
    def test_valid(self, assignment):
        assert len(assignment) == 3

    def test_unknown_leaf_rejected(self, topo):
        with pytest.raises(AssignmentError):
            Assignment(topo, {"a": "dc/ghost"})

    def test_internal_node_rejected(self, topo):
        with pytest.raises(AssignmentError):
            Assignment(topo, {"a": "dc"})

    def test_over_capacity_rejected(self, topo):
        mapping = {f"i{k}": LEAF0 for k in range(4)}
        with pytest.raises(AssignmentError):
            Assignment(topo, mapping)


class TestQueries:
    def test_leaf_of(self, assignment):
        assert assignment.leaf_of("a") == LEAF0
        assert assignment.leaf_of("c") == LEAF1

    def test_leaf_of_unplaced(self, assignment):
        with pytest.raises(AssignmentError):
            assignment.leaf_of("zzz")

    def test_contains(self, assignment):
        assert "a" in assignment
        assert "z" not in assignment

    def test_instances_on_leaf(self, assignment):
        assert assignment.instances_on_leaf(LEAF0) == ["a", "b"]

    def test_instances_on_leaf_requires_leaf(self, assignment):
        with pytest.raises(AssignmentError):
            assignment.instances_on_leaf("dc")

    def test_instances_under_root(self, assignment):
        assert sorted(assignment.instances_under("dc")) == ["a", "b", "c"]

    def test_instances_under_leaf(self, assignment):
        assert assignment.instances_under(LEAF1) == ["c"]

    def test_occupancy(self, assignment):
        assert assignment.occupancy() == {LEAF0: 2, LEAF1: 1}

    def test_free_capacity(self, assignment):
        assert assignment.free_capacity() == {LEAF0: 1, LEAF1: 2}

    def test_as_mapping_copy(self, assignment):
        mapping = assignment.as_mapping()
        mapping["a"] = LEAF1
        assert assignment.leaf_of("a") == LEAF0


class TestMutationsReturnNew:
    def test_with_swap(self, assignment):
        swapped = assignment.with_swap("a", "c")
        assert swapped.leaf_of("a") == LEAF1
        assert swapped.leaf_of("c") == LEAF0
        # Original untouched.
        assert assignment.leaf_of("a") == LEAF0

    def test_swap_same_leaf_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assignment.with_swap("a", "b")

    def test_with_added(self, assignment):
        grown = assignment.with_added({"d": LEAF1})
        assert len(grown) == 4
        assert grown.leaf_of("d") == LEAF1

    def test_with_added_duplicate_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assignment.with_added({"a": LEAF1})

    def test_with_added_capacity_checked(self, assignment):
        with pytest.raises(AssignmentError):
            assignment.with_added({"d": LEAF0, "e": LEAF0})
