"""Energy-storage (distributed UPS) peak shaving — a related-work comparator.

The paper's related work (Sec. 1, Sec. 6) argues that battery-based
approaches (DistributedUPS, eBuff, ...) "can only handle peaks that span at
most tens of minutes, making it unsuitable for Facebook type of workloads
whose peak may last for hours".  This module implements a per-node battery
model and the greedy discharge-on-overload policy, so that claim can be
demonstrated quantitatively: how much battery capacity does it take to ride
out a diurnal peak vs what placement achieves for free?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..traces.series import PowerTrace


@dataclass(frozen=True)
class BatterySpec:
    """One node's energy storage device.

    Attributes
    ----------
    energy_wh:
        Usable stored energy in watt-hours.
    max_discharge_watts:
        Power ceiling while discharging.
    max_charge_watts:
        Power ceiling while recharging (drawn *on top of* the load).
    efficiency:
        Round-trip efficiency (energy out / energy in).
    """

    energy_wh: float
    max_discharge_watts: float
    max_charge_watts: float
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.energy_wh < 0:
            raise ValueError("energy cannot be negative")
        if self.max_discharge_watts < 0 or self.max_charge_watts < 0:
            raise ValueError("power limits cannot be negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")


@dataclass
class ShavingResult:
    """Outcome of battery peak shaving on one node's trace."""

    grid_draw: np.ndarray
    state_of_charge_wh: np.ndarray
    unshaved: np.ndarray

    def peak_after(self) -> float:
        return float(self.grid_draw.max())

    def unshaved_steps(self) -> int:
        """Steps where the battery could not keep the draw under budget."""
        return int(np.count_nonzero(self.unshaved > 1e-9))

    def unshaved_energy(self, step_minutes: int) -> float:
        """Overload energy the battery failed to absorb (watt-minutes)."""
        return float(self.unshaved.sum()) * step_minutes


def shave_peaks(
    trace: PowerTrace,
    budget_watts: float,
    battery: BatterySpec,
    *,
    initial_soc_fraction: float = 1.0,
) -> ShavingResult:
    """Greedy discharge-above-budget / recharge-below-budget policy.

    This is the canonical ESD control loop: whenever the load exceeds the
    budget, discharge (up to the power limit and remaining charge); when
    the load is below budget, recharge using the spare budget (paying the
    efficiency loss).  Sequential by nature — state of charge carries over.
    """
    if budget_watts < 0:
        raise ValueError("budget cannot be negative")
    if not 0 <= initial_soc_fraction <= 1:
        raise ValueError("initial state of charge must be in [0, 1]")

    step_hours = trace.grid.step_minutes / 60.0
    load = trace.values
    n = load.shape[0]
    grid_draw = np.empty(n)
    soc = np.empty(n)
    unshaved = np.zeros(n)
    charge = battery.energy_wh * initial_soc_fraction

    for t in range(n):
        if load[t] > budget_watts:
            needed = load[t] - budget_watts
            deliverable = min(
                needed, battery.max_discharge_watts, charge / step_hours
            )
            charge -= deliverable * step_hours
            grid_draw[t] = load[t] - deliverable
            if deliverable < needed - 1e-12:
                unshaved[t] = needed - deliverable
        else:
            spare = budget_watts - load[t]
            room_wh = battery.energy_wh - charge
            charging = min(
                battery.max_charge_watts, spare, room_wh / (step_hours * battery.efficiency)
            )
            charge += charging * step_hours * battery.efficiency
            grid_draw[t] = load[t] + charging
        soc[t] = charge
    return ShavingResult(grid_draw=grid_draw, state_of_charge_wh=soc, unshaved=unshaved)


def required_battery_energy(
    trace: PowerTrace, budget_watts: float
) -> float:
    """Watt-hours of storage needed to ride the worst overload episode.

    Lower bound assuming unlimited discharge power and full recharge
    between episodes: the largest contiguous area of the trace above the
    budget.  For diurnal peaks this is what makes ESDs impractical — the
    area spans *hours* (the paper's argument against [16, 28]).
    """
    if budget_watts < 0:
        raise ValueError("budget cannot be negative")
    over = np.maximum(trace.values - budget_watts, 0.0)
    step_hours = trace.grid.step_minutes / 60.0
    worst = 0.0
    current = 0.0
    for value in over:
        if value > 0:
            current += value * step_hours
            worst = max(worst, current)
        else:
            current = 0.0
    return worst


def overload_episode_durations(
    trace: PowerTrace, budget_watts: float
) -> List[int]:
    """Durations (in minutes) of each contiguous above-budget episode."""
    over = trace.values > budget_watts
    durations: List[int] = []
    run = 0
    for flag in over:
        if flag:
            run += 1
        elif run:
            durations.append(run * trace.grid.step_minutes)
            run = 0
    if run:
        durations.append(run * trace.grid.step_minutes)
    return durations
