"""Exporters: Prometheus text exposition and a merged JSON document.

Two ways out of the observability substrate:

* :func:`prometheus_text` renders the metrics registry (counters, gauges,
  histogram summaries) and the flight recorder's latest per-node values in
  the Prometheus text exposition format, ready to serve from a
  ``/metrics`` endpoint or push to a gateway.  :func:`parse_prometheus_text`
  is the matching line-format parser (used by tests to prove the output
  round-trips, and handy for scraping our own output).
* :func:`json_document` merges a traced run's span tree, stage timings,
  metrics snapshot, telemetry summaries, and event log into one
  machine-readable document — the superset of what ``smoothoperator
  profile --json`` emits.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import bench as _bench
from . import metrics as _metrics
from .events import EventLog
from .spans import Tracer
from .telemetry import FlightRecorder

__all__ = [
    "json_document",
    "parse_prometheus_text",
    "prometheus_text",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")

#: Histogram quantiles exposed as Prometheus summary lines.
_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _metric_name(name: str, prefix: str) -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    return repr(float(value))


def prometheus_text(
    registry: Optional[_metrics.MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
    *,
    prefix: str = "repro",
) -> str:
    """The registry (and optionally flight recorder) in exposition format.

    ``registry`` defaults to the process-global one.  Counters gain the
    conventional ``_total`` suffix; histograms render as summaries (count,
    sum, and ``quantile``-labelled lines); per-node telemetry renders as
    gauges labelled with the topology path.
    """
    registry = registry if registry is not None else _metrics.global_registry()
    lines: List[str] = []

    for name in sorted(registry.counters):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(registry.counters[name])}")

    for name in sorted(registry.gauges):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(registry.gauges[name])}")

    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile in _QUANTILES:
            value = histogram.percentile(quantile * 100.0) if histogram.count else 0.0
            lines.append(f'{metric}{{quantile="{quantile}"}} {_format_value(value)}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {_format_value(histogram.count)}")

    if recorder is not None:
        summary = recorder.summary()
        series_names = sorted({name for node in summary.values() for name in node})
        for series in series_names:
            metric = _metric_name(f"node_{series}", prefix)
            lines.append(f"# TYPE {metric} gauge")
            for path in sorted(summary):
                stats = summary[path].get(series)
                if not stats or stats.get("count", 0) == 0:
                    continue
                label = _escape_label_value(path)
                lines.append(f'{metric}{{path="{label}"}} {_format_value(stats["last"])}')

    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition-format text back into ``{(name, labels): value}``.

    Labels come out as a sorted tuple of ``(key, value)`` pairs (empty for
    unlabelled samples).  Comment/``# TYPE`` lines are skipped.  Raises
    ``ValueError`` on a malformed sample line, which is what makes this
    useful as a round-trip test of :func:`prometheus_text`.
    """
    sample = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?"
        r"\s+(?P<value>[^\s]+)\s*$"
    )
    label_pair = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = sample.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels: Tuple[Tuple[str, str], ...] = ()
        raw = match.group("labels")
        if raw:
            pairs = label_pair.findall(raw)
            labels = tuple(
                sorted(
                    (key, value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
                    for key, value in pairs
                )
            )
        out[(match.group("name"), labels)] = float(match.group("value"))
    return out


def json_document(
    *,
    tracer: Optional[Tracer] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
    events: Optional[EventLog] = None,
) -> Dict[str, object]:
    """One JSON-ready document merging every observability surface.

    Sections are only present for the surfaces supplied, so the document's
    top-level keys are stable per configuration: ``spans``/``stages`` for a
    tracer, ``metrics`` for a registry, ``telemetry`` for a recorder, and
    ``events`` (with per-kind counts) for an event log.
    """
    document: Dict[str, object] = {}
    if tracer is not None:
        document["spans"] = tracer.to_dict()["spans"]
        document["stages"] = _bench.stage_timings(tracer)
    if registry is not None:
        document["metrics"] = registry.snapshot()
    if recorder is not None:
        document["telemetry"] = recorder.to_dict()
    if events is not None:
        document["events"] = {
            "count": len(events),
            "by_kind": events.counts_by_kind(),
            "entries": [event.to_dict() for event in events],
        }
    return document
