"""Figure 13: throughput improvement breakdown (LC and Batch, per DC).

Paper: conversion alone trades the unlocked budget for up to 13% LC plus
8% Batch throughput; adding proactive throttling/boosting buys an extra
7.2/8.0/1.8 points of LC (DC3 gains least: fewest batch servers to borrow
budget from) and small extra Batch points (1.6/1.2/2.4).
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table


def _run(full_scale):
    return E.run_figure13(**full_scale)


@pytest.mark.benchmark(group="figure13")
def test_fig13_throughput(benchmark, emit_report, full_scale):
    result = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = [
        [
            name,
            format_percent(row["lc_conversion"]),
            format_percent(row["batch_conversion"]),
            format_percent(row["lc_throttle_boost"]),
            format_percent(row["batch_throttle_boost"]),
            format_percent(row["lc_throttle_boost"] - row["lc_conversion"]),
        ]
        for name, row in result.items()
    ]
    table = format_table(
        [
            "DC",
            "LC (conv)",
            "Batch (conv)",
            "LC (+thr/boost)",
            "Batch (+thr/boost)",
            "LC extra from thr/boost",
        ],
        rows,
        title="Figure 13 — throughput improvement over pre-SmoothOperator",
    )
    emit_report("fig13_throughput", table)

    for name, row in result.items():
        # Conversion improves both LC and Batch throughput.
        assert row["lc_conversion"] > 0
        assert row["batch_conversion"] > 0
        # Batch conversion gains stay single-digit (paper: up to 8%).
        assert row["batch_conversion"] < 0.12
        # Throttle/boost adds LC throughput on top of conversion.
        assert row["lc_throttle_boost"] >= row["lc_conversion"]
    # DC3 gains the least extra LC from throttling (fewest batch servers
    # per LC server) — the paper's 1.8% vs 7.2/8.0%.
    extra = {
        name: row["lc_throttle_boost"] - row["lc_conversion"]
        for name, row in result.items()
    }
    assert extra["DC3"] <= extra["DC1"] + 0.005
    assert extra["DC3"] <= extra["DC2"] + 0.005
