"""Figure 10 (+ headline): peak power reduction per level and extra servers.

Paper: workload-aware placement reduces RPP-level sum-of-peaks by 2.3%,
7.1% and 13.1% for DC1-3; reductions shrink at higher levels; RPP-level
reductions translate into up to 13% more hostable machines.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table
from repro.infra import Level

PAPER_RPP = {"DC1": 0.023, "DC2": 0.071, "DC3": 0.131}


def _run(full_scale):
    return E.run_figure10(**full_scale)


@pytest.mark.benchmark(group="figure10")
def test_fig10_peak_reduction(benchmark, emit_report, full_scale):
    result = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    levels = [Level.SUITE, Level.MSB, Level.SB, Level.RPP]
    rows = []
    for name, reductions in result.items():
        rows.append(
            [name]
            + [format_percent(reductions[level]) for level in levels]
            + [format_percent(PAPER_RPP[name]), format_percent(reductions["extra_servers"])]
        )
    table = format_table(
        ["DC", "SUITE", "MSB", "SB", "RPP", "paper RPP", "extra servers"],
        rows,
        title="Figure 10 — sum-of-peaks reduction by level (test week)",
    )
    emit_report("fig10_peak_reduction", table)

    # Shape 1: the paper's DC ordering at the RPP level (DC1 < DC2 < DC3).
    assert result["DC1"][Level.RPP] < result["DC2"][Level.RPP] < result["DC3"][Level.RPP]
    # Shape 2: reductions grow toward the leaves within each DC.
    for name, reductions in result.items():
        assert reductions[Level.SUITE] <= reductions[Level.RPP] + 0.01
    # Shape 3: rough magnitudes track the paper (within a factor of ~2).
    for name in E.DATACENTER_NAMES:
        assert result[name][Level.RPP] == pytest.approx(PAPER_RPP[name], abs=0.05)
    # Headline: DC3 hosts ~10%+ more machines, DC1 only a few percent.
    assert result["DC3"]["extra_servers"] > 0.08
    assert result["DC1"]["extra_servers"] < result["DC3"]["extra_servers"]
