"""Integration: the example scripts must run cleanly end to end."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Sum-of-peaks reduction" in out
        assert "Extra servers" in out

    def test_operations_workflow(self, tmp_path):
        out = run_example("operations_workflow.py", str(tmp_path))
        assert "round-trip verified" in out
        assert (tmp_path / "placement.json").exists()
        assert (tmp_path / "fleet" / "manifest.json").exists()
        assert (tmp_path / "suite0_power.csv").exists()

    def test_incremental_remapping(self):
        out = run_example("incremental_remapping.py")
        assert "full re-placement" in out
        assert "migration budget" in out
