"""Chaos harness: the full pipeline under named fault scenarios.

Each :class:`ChaosScenario` bundles telemetry faults, runtime faults, and a
demand surge; :func:`run_chaos_scenario` drives the end-to-end pipeline —
synthesize → inject → repair → place → reshape — and reports the safety
metrics that matter:

* breaker trips of the resulting placement (via
  :func:`repro.infra.breaker.audit_view`);
* latency-critical energy shed and dropped demand after the emergency
  capping fallback;
* placement-quality delta against the clean-input placement (mean RPP
  asynchrony score on the held-out test week).

A scenario *passes* when the repaired-input placement stays within 5% of
the clean-input placement's quality and the recovered reshaping scenario
has zero overload steps and zero breaker trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..obs import events as obs_events
from ..obs import telemetry as obs_telemetry
from ..analysis import experiments
from ..analysis.report import format_percent, format_table
from ..core.metrics import node_asynchrony_scores
from ..core.pipeline import SmoothOperator, SmoothOperatorConfig
from ..core.placement import PlacementConfig
from ..engine import Engine, ScenarioSpec, chaos_spec, run_many
from ..infra.aggregation import NodePowerView
from ..infra.breaker import BreakerModel, audit_view, power_safe
from ..infra.budget import provision_hierarchical
from ..infra.topology import Level
from ..reshaping.conversion import ConversionPolicy
from ..reshaping.fleet import derive_demand, describe_fleet
from ..reshaping.lconv import learn_conversion_threshold
from ..traces.instance import InstanceRecord
from ..traces.series import PowerTrace
from .inject import (
    FaultPlan,
    GridMisalignment,
    NegativeGlitch,
    PowerSpike,
    SensorDropout,
    StuckSensor,
    dirty_copy,
)
from .repair import RepairPolicy, RepairReport, repair_telemetry
from .runtime import (
    ChaosRunResult,
    ConversionFaultModel,
    ServerFailureSchedule,
)

#: Quality tolerance of the acceptance criterion: a repaired-input placement
#: may lose at most this fraction of the clean placement's asynchrony score.
QUALITY_TOLERANCE = 0.05


@dataclass(frozen=True)
class ChaosScenario:
    """One named bundle of faults for the end-to-end pipeline."""

    name: str
    description: str
    telemetry_faults: Tuple[object, ...] = ()
    failure_events_per_week: float = 0.0
    mean_failure_hours: float = 4.0
    conversion_faults: Optional[ConversionFaultModel] = None
    #: Multiplies LC demand beyond the planned growth — >1 stresses capacity.
    demand_surge: float = 1.0
    #: Multiplies the reshaping budget — <1 models a lost feed / brownout,
    #: forcing persistent overload so the capping fallback must engage.
    budget_squeeze: float = 1.0
    seed: int = 0

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(faults=tuple(self.telemetry_faults), seed=self.seed)


@dataclass
class ChaosScenarioOutcome:
    """Everything one chaos-scenario run measured."""

    scenario: ChaosScenario
    dc_name: str
    repair: RepairReport
    dirty_missing_fraction: float
    quality_clean: float
    quality_chaos: float
    placement_trips: int
    placement_safe: bool
    reshaping: ChaosRunResult

    @property
    def quality_delta(self) -> float:
        """Fractional quality change vs the clean placement (<0 = worse)."""
        if self.quality_clean == 0:
            return 0.0
        return self.quality_chaos / self.quality_clean - 1.0

    def checks(self) -> Dict[str, bool]:
        return {
            "quality_within_tolerance": self.quality_delta >= -QUALITY_TOLERANCE,
            "no_overload_after_recovery": (
                self.reshaping.scenario.overload_steps() == 0
            ),
            "no_trips_after_recovery": not self.reshaping.recovery.trips_after,
        }

    @property
    def passed(self) -> bool:
        return all(self.checks().values())


# ----------------------------------------------------------------------
# the named scenario suite
# ----------------------------------------------------------------------
DEFAULT_SUITE: Tuple[ChaosScenario, ...] = (
    ChaosScenario(
        name="clean",
        description="no faults — the control run",
    ),
    ChaosScenario(
        name="sensor_dropout",
        description="a quarter of the sensors drop 2-hour gaps",
        telemetry_faults=(SensorDropout(fraction_of_traces=0.25, gaps_per_trace=2),),
        seed=11,
    ),
    ChaosScenario(
        name="stuck_sensors",
        description="sensors repeat their last reading for hours",
        telemetry_faults=(StuckSensor(fraction_of_traces=0.2, stuck_samples=24),),
        seed=12,
    ),
    ChaosScenario(
        name="power_spikes",
        description="single-sample glitches at 8x the physical ceiling",
        telemetry_faults=(PowerSpike(fraction_of_traces=0.5, spikes_per_trace=3),),
        seed=13,
    ),
    ChaosScenario(
        name="clock_skew",
        description="every reading is 3 minutes off the canonical grid",
        telemetry_faults=(GridMisalignment(offset_minutes=3),),
        seed=14,
    ),
    ChaosScenario(
        name="dirty_everything",
        description="dropouts + stuck-at + spikes + negatives + skew at once",
        telemetry_faults=(
            SensorDropout(fraction_of_traces=0.2),
            StuckSensor(fraction_of_traces=0.15),
            PowerSpike(fraction_of_traces=0.3, spikes_per_trace=2),
            NegativeGlitch(fraction_of_traces=0.1),
            GridMisalignment(offset_minutes=3),
        ),
        seed=15,
    ),
    ChaosScenario(
        name="server_failures",
        description="rack-scale outages take servers offline mid-week",
        failure_events_per_week=12.0,
        mean_failure_hours=6.0,
        seed=16,
    ),
    ChaosScenario(
        name="flaky_conversions",
        description="conversions land late, fail, and sometimes abort",
        conversion_faults=ConversionFaultModel(
            latency_steps=2, failure_prob=0.3, max_retries=2
        ),
        seed=17,
    ),
    ChaosScenario(
        name="surge_overload",
        description="a demand surge under a browned-out budget",
        demand_surge=1.35,
        budget_squeeze=0.8,
        seed=18,
    ),
    ChaosScenario(
        name="perfect_storm",
        description="dirty telemetry, failures, flaky conversions, and a surge",
        telemetry_faults=(
            SensorDropout(fraction_of_traces=0.2),
            StuckSensor(fraction_of_traces=0.15),
            PowerSpike(fraction_of_traces=0.3, spikes_per_trace=2),
            GridMisalignment(offset_minutes=3),
        ),
        failure_events_per_week=12.0,
        mean_failure_hours=6.0,
        conversion_faults=ConversionFaultModel(
            latency_steps=2, failure_prob=0.3, max_retries=2
        ),
        demand_surge=1.35,
        budget_squeeze=0.8,
        seed=19,
    ),
)


def scenario_by_name(name: str) -> ChaosScenario:
    for scenario in DEFAULT_SUITE:
        if scenario.name == name:
            return scenario
    raise KeyError(
        f"unknown chaos scenario {name!r}; "
        f"known: {[s.name for s in DEFAULT_SUITE]}"
    )


# ----------------------------------------------------------------------
# the end-to-end pipeline
# ----------------------------------------------------------------------
def run_chaos_scenario(
    scenario: ChaosScenario,
    *,
    dc_name: str = "DC1",
    n_instances: int = experiments.DEFAULT_N_INSTANCES,
    step_minutes: int = experiments.DEFAULT_STEP_MINUTES,
    weeks: int = experiments.DEFAULT_WEEKS,
    repair_policy: Optional[RepairPolicy] = None,
    budget_margin: float = 0.05,
) -> ChaosScenarioOutcome:
    """Synthesize → inject → repair → place → reshape, under one scenario."""
    with obs.span("chaos.scenario", scenario=scenario.name):
        obs.count("chaos.scenarios_run")
        dc = experiments.get_datacenter(
            dc_name, n_instances=n_instances, step_minutes=step_minutes, weeks=weeks
        )
        clean_study = experiments.run_placement_study(dc, budget_margin=budget_margin)
        test = dc.test_traces()

        # -- inject + repair + place -------------------------------------
        if scenario.telemetry_faults:
            with obs.span("chaos.inject_repair"):
                for fault in scenario.telemetry_faults:
                    obs_events.emit(
                        obs_events.FAULT_INJECTION,
                        severity="warning",
                        source="faults.inject",
                        fault=type(fault).__name__,
                        scenario=scenario.name,
                    )
                dirty = dirty_copy(dc.training_traces(), scenario.fault_plan())
                dirty_missing = dirty.missing_fraction()
                outcome = repair_telemetry(
                    dirty, policy=repair_policy, target_grid=dc.training_traces().grid
                )
            repaired_records = _records_with_training(dc.records, outcome.traces)
            operator = SmoothOperator(
                SmoothOperatorConfig(placement=PlacementConfig(seed=0))
            )
            chaos_assignment = operator.optimize(
                repaired_records, dc.topology
            ).assignment
            repair_report = outcome.report
        else:
            dirty_missing = 0.0
            chaos_assignment = clean_study.optimized.assignment
            repair_report = RepairReport()

        clean_assignment = clean_study.optimized.assignment
        quality_clean = _placement_quality(clean_assignment, test)
        quality_chaos = (
            quality_clean
            if chaos_assignment is clean_assignment
            else _placement_quality(chaos_assignment, test)
        )

        # Audit the deployed (repaired-input) placement against the budgets
        # the clean plan would have provisioned: trips measure how badly the
        # dirty telemetry mis-sized the infrastructure.
        with obs.span("chaos.audit"):
            provision_hierarchical(
                NodePowerView(dc.topology, clean_assignment, test),
                margin=budget_margin,
            )
            view = NodePowerView(dc.topology, chaos_assignment, test)
            # Per-power-node flight recording: utilization/slack/headroom
            # series plus violation/advisory events for every budgeted node
            # of the deployed placement (no-op unless telemetry is on).
            obs_telemetry.record_view(view)
            trips = audit_view(view, BreakerModel())
            safe = power_safe(view, BreakerModel())

        # -- reshape under runtime faults --------------------------------
        with obs.span("chaos.reshape"):
            reshaping = _run_reshaping_chaos(dc, clean_study, scenario)

    return ChaosScenarioOutcome(
        scenario=scenario,
        dc_name=dc_name,
        repair=repair_report,
        dirty_missing_fraction=dirty_missing,
        quality_clean=quality_clean,
        quality_chaos=quality_chaos,
        placement_trips=sum(len(t) for t in trips.values()),
        placement_safe=safe,
        reshaping=reshaping,
    )


def run_chaos_suite(
    scenarios: Optional[Sequence[ChaosScenario]] = None,
    *,
    dc_name: str = "DC1",
    workers: int = 1,
    **kwargs,
) -> List[ChaosScenarioOutcome]:
    """Run every scenario of the suite; never raises for in-suite faults.

    ``workers > 1`` fans the scenarios out to a process pool via
    :func:`repro.engine.run_many`; every scenario is seeded, so the
    outcomes are identical to a serial run.
    """
    scenarios = scenarios if scenarios is not None else DEFAULT_SUITE
    if workers > 1:
        specs = [
            chaos_spec(scenario, dc_name=dc_name, **kwargs)
            for scenario in scenarios
        ]
        return [
            artifacts.result for artifacts in run_many(specs, workers=workers)
        ]
    return [
        run_chaos_scenario(scenario, dc_name=dc_name, **kwargs)
        for scenario in scenarios
    ]


def format_chaos_table(outcomes: Sequence[ChaosScenarioOutcome]) -> str:
    """Render the suite's safety metrics as one aligned table."""
    rows = []
    for outcome in outcomes:
        recovery = outcome.reshaping.recovery
        rows.append(
            [
                outcome.scenario.name,
                format_percent(outcome.repair.repaired_fraction, 2),
                format_percent(outcome.quality_delta, 2),
                outcome.placement_trips,
                "yes" if recovery.engaged else "no",
                outcome.reshaping.scenario.overload_steps(),
                len(recovery.trips_after),
                f"{recovery.lc_energy_shed / 1e3:.1f}",
                format_percent(outcome.reshaping.scenario.dropped_fraction(), 2),
                "PASS" if outcome.passed else "FAIL",
            ]
        )
    return format_table(
        [
            "scenario",
            "repaired",
            "quality d",
            "trips (place)",
            "capping",
            "overload",
            "trips (after)",
            "LC shed (kW-min)",
            "dropped",
            "verdict",
        ],
        rows,
        title=f"Chaos suite — {outcomes[0].dc_name}" if outcomes else "Chaos suite",
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _records_with_training(
    records: Sequence[InstanceRecord], repaired
) -> List[InstanceRecord]:
    """Records whose training traces are replaced by the repaired set."""
    return [
        InstanceRecord(
            instance=record.instance,
            training_trace=PowerTrace(
                repaired.grid, repaired.row(record.instance_id)
            ),
            test_trace=record.test_trace,
        )
        for record in records
    ]


def _placement_quality(assignment, traces) -> float:
    """Mean RPP-level asynchrony score on the held-out week (higher=better)."""
    scores = node_asynchrony_scores(assignment, traces, Level.RPP)
    return float(np.mean(list(scores.values()))) if scores else 0.0


def _run_reshaping_chaos(dc, clean_study, scenario: ChaosScenario) -> ChaosRunResult:
    root_budget = dc.topology.root.budget_watts
    if root_budget is None:
        raise RuntimeError("placement study did not provision budgets")
    fleet = describe_fleet(
        dc.records, budget_watts=root_budget * scenario.budget_squeeze
    )
    extra = clean_study.report.expansion.total_extra

    training_demand = derive_demand(dc.records, use_test=False)
    threshold = learn_conversion_threshold(training_demand, fleet.n_lc)
    conversion = ConversionPolicy(conversion_threshold=threshold)

    demand = derive_demand(dc.records, use_test=True).scaled(
        (1.0 + extra / fleet.n_lc) * scenario.demand_surge
    )

    failures = (
        ServerFailureSchedule.random(
            demand.grid,
            n_lc=fleet.n_lc,
            n_batch=fleet.n_batch,
            events_per_week=scenario.failure_events_per_week,
            mean_duration_hours=scenario.mean_failure_hours,
            seed=scenario.seed,
        )
        if scenario.failure_events_per_week > 0
        else ServerFailureSchedule()
    )
    spec = ScenarioSpec(
        mode="conversion_chaos",
        fleet=fleet,
        demand=demand,
        conversion=conversion,
        failures=failures,
        conversion_faults=scenario.conversion_faults,
        extra_servers=extra,
        seed=scenario.seed,
    )
    return Engine.from_spec(spec).run(spec).result
