"""Unit tests for the differential-score swap loop (Sec. 3.6)."""

import numpy as np
import pytest

from repro.baselines import oblivious_placement
from repro.core import (
    RemapConfig,
    RemappingEngine,
    node_asynchrony_scores,
)
from repro.core.remapping import RECOMPUTE_EVERY, _NodeGroup
from repro.infra import Assignment, Level, NodePowerView, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet, training_trace_set


@pytest.fixture
def fragmented():
    """Two leaves: leaf0 has two synchronous 'up' ramps, leaf1 two 'down'."""
    grid = TimeGrid(0, 60, 24)
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    traces = TraceSet(grid, ["u1", "u2", "d1", "d2"], np.vstack([up, up, down, down]))
    assignment = Assignment(
        topo, {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp1"}
    )
    return topo, assignment, traces


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, max_swaps=-1)
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, candidate_nodes=0)
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, min_improvement=-0.1)

    def test_shard_level_must_differ_from_swap_level(self):
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, shard_level=Level.RPP)


class TestSwapLoop:
    def test_fixes_fragmented_toy(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        assert result.n_swaps >= 1
        scores = node_asynchrony_scores(result.assignment, traces, Level.RPP)
        # After remapping both leaves hold one up + one down: score ~2.
        for score in scores.values():
            assert score > 1.8

    def test_reduces_sum_of_peaks(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        before = NodePowerView(topo, assignment, traces).sum_of_peaks(Level.RPP)
        after = NodePowerView(topo, result.assignment, traces).sum_of_peaks(Level.RPP)
        assert after < before

    def test_no_swaps_when_already_optimal(self, fragmented):
        topo, _, traces = fragmented
        optimal = Assignment(
            topo, {"u1": "dc/rpp0", "d1": "dc/rpp0", "u2": "dc/rpp1", "d2": "dc/rpp1"}
        )
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(optimal, traces)
        assert result.n_swaps == 0
        assert result.assignment.as_mapping() == optimal.as_mapping()

    def test_max_swaps_zero(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=0))
        result = engine.run(assignment, traces)
        assert result.n_swaps == 0

    def test_swap_records_gains(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        result = engine.run(assignment, traces)
        for swap in result.swaps:
            assert swap.gain_a > 0
            assert swap.gain_b > 0
            assert swap.node_a != swap.node_b

    def test_single_group_is_noop(self):
        grid = TimeGrid(0, 60, 24)
        topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
        traces = TraceSet(grid, ["a"], np.ones((1, 24)))
        assignment = Assignment(topo, {"a": "dc/rpp0"})
        engine = RemappingEngine(RemapConfig(level=Level.RPP))
        result = engine.run(assignment, traces)
        assert result.n_swaps == 0


@pytest.fixture
def two_suites():
    """Two suites, each fragmented the same way the toy fixture is: the
    suite's rpp0 holds two 'up' ramps and its rpp1 two 'down' ramps."""
    from repro.infra import LevelSpec, TopologySpec

    grid = TimeGrid(0, 60, 24)
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    spec = TopologySpec(
        name="dc",
        levels=(LevelSpec(Level.SUITE, 2), LevelSpec(Level.RPP, 2)),
        leaf_capacity=4,
    )
    topo = build_topology(spec)
    ids, rows, mapping = [], [], {}
    for s in range(2):
        for k, values in enumerate((up, up, down, down)):
            instance_id = f"s{s}_{'u' if k < 2 else 'd'}{k % 2}"
            ids.append(instance_id)
            rows.append(values)
            mapping[instance_id] = f"dc/suite{s}/rpp{0 if k < 2 else 1}"
    traces = TraceSet(grid, ids, np.vstack(rows))
    return topo, Assignment(topo, mapping), traces


class TestShardedRemap:
    def config(self):
        return RemapConfig(level=Level.RPP, max_swaps=4, shard_level=Level.SUITE)

    def test_each_shard_is_fixed_and_swaps_stay_inside_it(self, two_suites):
        topo, assignment, traces = two_suites
        result = RemappingEngine(self.config()).run(assignment, traces)
        assert result.n_swaps >= 2  # at least one swap per fragmented suite
        for swap in result.swaps:
            # Node names are hierarchical, so the shard is the name prefix.
            suite_a = swap.node_a.rsplit("/", 1)[0]
            suite_b = swap.node_b.rsplit("/", 1)[0]
            assert suite_a == suite_b
        scores = node_asynchrony_scores(result.assignment, traces, Level.RPP)
        for score in scores.values():
            assert score > 1.8

    def test_worker_count_never_changes_the_result(self, two_suites):
        """Shards are independent, so the pooled fan-out must reproduce the
        serial sharded run exactly: same swaps, assignment, and totals."""
        from repro.engine.parallel import shutdown_pools

        topo, assignment, traces = two_suites
        engine = RemappingEngine(self.config())
        serial = engine.run(assignment, traces)
        try:
            pooled = engine.run(assignment, traces, workers=2)
        finally:
            shutdown_pools()
        assert pooled.swaps == serial.swaps
        assert pooled.assignment.as_mapping() == serial.assignment.as_mapping()
        assert set(pooled.node_totals) == set(serial.node_totals)
        for name, total in serial.node_totals.items():
            assert np.array_equal(pooled.node_totals[name], total)

    def test_workers_ignored_without_shard_level(self, fragmented):
        topo, assignment, traces = fragmented
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=4))
        plain = engine.run(assignment, traces)
        with_workers = engine.run(assignment, traces, workers=4)
        assert with_workers.swaps == plain.swaps
        assert (
            with_workers.assignment.as_mapping() == plain.assignment.as_mapping()
        )


class TestOnRealFleet:
    def test_improves_oblivious_placement(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        engine = RemappingEngine(
            RemapConfig(level=Level.RPP, max_swaps=20, candidate_nodes=2)
        )
        result = engine.run(oblivious, traces)
        before = NodePowerView(tiny_topology, oblivious, traces).sum_of_peaks(Level.RPP)
        after = NodePowerView(tiny_topology, result.assignment, traces).sum_of_peaks(
            Level.RPP
        )
        assert after <= before


def _phased_fleet(n_instances, leaves, seed=7):
    """A fleet of phase-shifted diurnal traces round-robined over leaves."""
    rng = np.random.default_rng(seed)
    grid = TimeGrid(0, 60, 24)
    t = np.arange(24)
    ids = [f"i{k:03d}" for k in range(n_instances)]
    phases = rng.uniform(0, 2 * np.pi, n_instances)
    matrix = 5.0 + 4.0 * np.sin(2 * np.pi * t / 24 + phases[:, None])
    matrix += rng.uniform(0, 0.5, matrix.shape)
    traces = TraceSet(grid, ids, matrix)
    topo = build_topology(
        two_level_spec("dc", leaves=leaves, leaf_capacity=n_instances // leaves)
    )
    mapping = {ids[k]: f"dc/rpp{k % leaves}" for k in range(n_instances)}
    return topo, Assignment(topo, mapping), traces


class TestNodeGroupInternals:
    def test_empty_rest_differential_is_two(self):
        """A one-member group with that member excluded scores the AD limit,
        2.0 — inside the [1, 2] range, not an out-of-range sentinel."""
        grid = TimeGrid(0, 60, 24)
        traces = TraceSet(grid, ["solo", "other"], np.ones((2, 24)))
        group = _NodeGroup("n", ["solo"], traces)
        score = group.differential(traces.row("other"), exclude="solo", traces=traces)
        assert score == 2.0

    def test_empty_group_differential_is_two(self):
        grid = TimeGrid(0, 60, 24)
        traces = TraceSet(grid, ["a"], np.ones((1, 24)))
        group = _NodeGroup("n", [], traces)
        assert group.differential(traces.row("a"), exclude=None, traces=traces) == 2.0

    def test_differential_stays_in_range(self):
        """The empty-rest value must not beat a genuinely good partner: AD is
        bounded by 2, so 2.0 ties the optimum instead of dominating it."""
        grid = TimeGrid(0, 60, 24)
        up = np.linspace(0, 10, 24)
        down = np.linspace(10, 0, 24)
        traces = TraceSet(grid, ["u", "d"], np.vstack([up, down]))
        group = _NodeGroup("n", ["u"], traces)
        anti_phase = group.differential(traces.row("d"), exclude=None, traces=traces)
        empty = group.differential(traces.row("d"), exclude="u", traces=traces)
        assert 1.0 <= anti_phase <= 2.0
        assert empty <= 2.0 + 1e-12

    def test_swap_member_is_exact(self):
        """Every swap rebuilds the aggregate from member rows: after any
        number of swaps the total equals the exact sum bit-for-bit."""
        rng = np.random.default_rng(0)
        grid = TimeGrid(0, 60, 24)
        ids = [f"x{k}" for k in range(4)]
        traces = TraceSet(grid, ids, rng.random((4, 24)))
        group = _NodeGroup("n", ["x0", "x1"], traces)
        for k in range(RECOMPUTE_EVERY):
            outgoing = group.members[0]
            incoming = next(i for i in ids if i not in group.members)
            group.swap_member(outgoing, incoming, traces)
            exact = np.zeros(grid.n_samples)
            for i in group.members:
                exact += traces.row(i)
            assert np.array_equal(group.total, exact)

    def test_verify_knob_passes_on_exact_state(self):
        """The opt-in verify harness accepts exactly-maintained groups and
        rejects a tampered aggregate."""
        grid = TimeGrid(0, 60, 24)
        rng = np.random.default_rng(1)
        ids = [f"x{k}" for k in range(4)]
        traces = TraceSet(grid, ids, rng.random((4, 24)))
        group = _NodeGroup("n", ["x0", "x1"], traces)
        group.swap_member("x0", "x2", traces)
        group.verify(traces)  # exact state: no raise
        group.total[0] += 1.0
        with pytest.raises(RuntimeError, match="diverged"):
            group.verify(traces)

    def test_verify_every_runs_during_swap_loop(self, fragmented):
        """verify_every periodically cross-checks the touched groups; with
        exact swap application the loop result is unchanged."""
        topo, assignment, traces = fragmented
        baseline = RemappingEngine(RemapConfig(level=Level.RPP)).run(
            assignment, traces
        )
        verified = RemappingEngine(
            RemapConfig(level=Level.RPP, verify_every=1)
        ).run(assignment, traces)
        assert [
            (s.instance_a, s.instance_b) for s in verified.swaps
        ] == [(s.instance_a, s.instance_b) for s in baseline.swaps]
        assert verified.assignment.as_mapping() == baseline.assignment.as_mapping()

    def test_verify_every_validation(self):
        with pytest.raises(ValueError):
            RemapConfig(level=Level.RPP, verify_every=0)

    def test_swap_member_tracks_membership(self):
        grid = TimeGrid(0, 60, 24)
        traces = TraceSet(grid, ["a", "b", "c"], np.ones((3, 24)))
        group = _NodeGroup("n", ["a", "b"], traces)
        group.swap_member("a", "c", traces)
        assert sorted(group.members) == ["b", "c"]


class TestOneMemberNodeSwapPath:
    def test_one_member_worst_node_halts(self):
        """A fragmented one-member node cannot swap (needs >= 2 members) and
        must terminate the loop cleanly rather than emptying itself."""
        grid = TimeGrid(0, 60, 24)
        topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
        traces = TraceSet(grid, ["a", "b", "c"], np.ones((3, 24)))
        assignment = Assignment(
            topo, {"a": "dc/rpp0", "b": "dc/rpp1", "c": "dc/rpp1"}
        )
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=10))
        result = engine.run(assignment, traces)
        assert result.n_swaps == 0
        assert result.assignment.as_mapping() == assignment.as_mapping()

    def test_one_member_partner_is_skipped(self):
        """Partner nodes with a single member are never drained: the swap must
        come from a node that keeps >= 1 member afterwards."""
        grid = TimeGrid(0, 60, 24)
        up = np.linspace(0, 10, 24)
        down = np.linspace(10, 0, 24)
        topo = build_topology(two_level_spec("dc", leaves=3, leaf_capacity=4))
        traces = TraceSet(
            grid, ["u1", "u2", "d1", "d2", "solo"], np.vstack([up, up, down, down, up])
        )
        assignment = Assignment(
            topo,
            {
                "u1": "dc/rpp0",
                "u2": "dc/rpp0",
                "d1": "dc/rpp1",
                "d2": "dc/rpp1",
                "solo": "dc/rpp2",
            },
        )
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=10))
        result = engine.run(assignment, traces)
        for swap in result.swaps:
            assert "dc/rpp2" not in (swap.node_a, swap.node_b)
        # The lone instance never moves.
        assert result.assignment.as_mapping()["solo"] == "dc/rpp2"


class TestAggregateDrift:
    def test_final_totals_match_fresh_recompute(self):
        """Regression for incremental float drift: after max_swaps=50 on a
        500-instance fleet, the engine's final node aggregates must match a
        from-scratch recompute to ~1e-9."""
        topo, assignment, traces = _phased_fleet(500, leaves=5)
        engine = RemappingEngine(
            RemapConfig(level=Level.RPP, max_swaps=50, candidate_nodes=4)
        )
        result = engine.run(assignment, traces)
        assert result.n_swaps > 0  # the fleet is fragmented enough to swap
        assert set(result.node_totals) == {f"dc/rpp{k}" for k in range(5)}
        for name, total in result.node_totals.items():
            members = result.assignment.instances_under(name)
            fresh = np.zeros(traces.grid.n_samples)
            for instance_id in members:
                fresh += traces.row(instance_id)
            np.testing.assert_allclose(total, fresh, rtol=0, atol=1e-9)

    def test_totals_returned_even_without_swaps(self):
        topo, _, traces = _phased_fleet(20, leaves=2)
        optimal_like = Assignment(
            topo, {i: f"dc/rpp{k % 2}" for k, i in enumerate(traces.ids)}
        )
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=0))
        result = engine.run(optimal_like, traces)
        assert result.n_swaps == 0
