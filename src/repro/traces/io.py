"""Persistence for traces and fleets.

Real deployments accumulate telemetry continuously; experiments must be
replayable.  This module round-trips the substrate's objects through plain
files:

* :class:`TraceSet` ↔ compressed NPZ (matrix + grid + ids);
* fleets of :class:`InstanceRecord` ↔ an NPZ pair (training/test) plus a
  JSON manifest of instance metadata;
* per-instance CSV export for interop with external tooling.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import List, Optional, Sequence, Union

import numpy as np

from .grid import TimeGrid
from .instance import InstanceRecord, ServiceInstance
from .series import PowerTrace
from .traceset import TraceSet

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_trace_set(traces: TraceSet, path: PathLike) -> None:
    """Write a :class:`TraceSet` to a compressed ``.npz`` file."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        matrix=traces.matrix,
        ids=np.array(traces.ids, dtype=object),
        grid=np.array(
            [traces.grid.start_minute, traces.grid.step_minutes, traces.grid.n_samples]
        ),
        version=np.array([_FORMAT_VERSION]),
    )


def load_trace_set(path: PathLike) -> TraceSet:
    """Read a :class:`TraceSet` written by :func:`save_trace_set`."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=True) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace-set format version {version}")
        start, step, n = (int(v) for v in data["grid"])
        grid = TimeGrid(start, step, n)
        ids = [str(x) for x in data["ids"]]
        return TraceSet(grid, ids, data["matrix"])


def save_fleet(records: Sequence[InstanceRecord], directory: PathLike) -> None:
    """Persist a fleet: training/test trace sets + a JSON manifest.

    Layout::

        <directory>/manifest.json    instance ids, services, kinds
        <directory>/training.npz     averaged training I-traces
        <directory>/test.npz         held-out test traces (if present)
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not records:
        raise ValueError("cannot save an empty fleet")

    manifest = {
        "version": _FORMAT_VERSION,
        "instances": [
            {
                "instance_id": r.instance_id,
                "service": r.service,
                "kind": r.kind,
                "has_test": r.test_trace is not None,
            }
            for r in records
        ],
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))

    training = TraceSet.from_traces(
        {r.instance_id: r.training_trace for r in records}
    )
    save_trace_set(training, directory / "training.npz")

    with_test = [r for r in records if r.test_trace is not None]
    if with_test:
        if len(with_test) != len(records):
            raise ValueError("either all records or none must carry test traces")
        test = TraceSet.from_traces({r.instance_id: r.test_trace for r in records})
        save_trace_set(test, directory / "test.npz")


def load_fleet(directory: PathLike) -> List[InstanceRecord]:
    """Load a fleet written by :func:`save_fleet`."""
    directory = pathlib.Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported fleet format version {manifest.get('version')}")

    training = load_trace_set(directory / "training.npz")
    test_path = directory / "test.npz"
    test = load_trace_set(test_path) if test_path.exists() else None

    records: List[InstanceRecord] = []
    for entry in manifest["instances"]:
        instance = ServiceInstance(
            instance_id=entry["instance_id"],
            service=entry["service"],
            kind=entry["kind"],
        )
        test_trace: Optional[PowerTrace] = None
        if entry["has_test"]:
            if test is None:
                raise ValueError(
                    f"manifest says {instance.instance_id} has a test trace "
                    "but test.npz is missing"
                )
            test_trace = test[instance.instance_id]
        records.append(
            InstanceRecord(
                instance=instance,
                training_trace=training[instance.instance_id],
                test_trace=test_trace,
            )
        )
    return records


def export_csv(traces: TraceSet, path: PathLike) -> None:
    """Export a :class:`TraceSet` as CSV: one timestamp column + one column
    per instance (interop with pandas/spreadsheets)."""
    path = pathlib.Path(path)
    timestamps = traces.grid.timestamps()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["minute"] + traces.ids)
        for row_index in range(traces.grid.n_samples):
            writer.writerow(
                [int(timestamps[row_index])]
                + [f"{v:.6g}" for v in traces.matrix[:, row_index]]
            )


def import_csv(path: PathLike, *, step_minutes: Optional[int] = None) -> TraceSet:
    """Read a CSV written by :func:`export_csv` (or hand-authored in the
    same layout) back into a :class:`TraceSet`.

    ``step_minutes`` overrides the step inferred from the timestamp column
    (needed for single-row files).
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0] != "minute":
            raise ValueError("first column must be 'minute'")
        ids = header[1:]
        if not ids:
            raise ValueError("no instance columns found")
        minutes: List[int] = []
        rows: List[List[float]] = []
        for row in reader:
            minutes.append(int(row[0]))
            rows.append([float(v) for v in row[1:]])
    if not rows:
        raise ValueError("CSV has no samples")
    if step_minutes is None:
        if len(minutes) < 2:
            raise ValueError("cannot infer step from a single sample")
        step_minutes = minutes[1] - minutes[0]
    grid = TimeGrid(minutes[0], step_minutes, len(minutes))
    matrix = np.asarray(rows, dtype=np.float64).T
    return TraceSet(grid, ids, matrix)
