"""SVG figure rendering — regenerate the paper's figures as viewable files.

Produces self-contained HTML pages (inline SVG + a data-table view) for the
time-series and bar figures.  Styling follows a validated reference palette
(categorical slots assigned in fixed order, light/dark variants selected per
mode), thin marks (2px lines, ≤24px bars with rounded data-ends and 2px
surface gaps), recessive hairline gridlines, text in text tokens rather
than series colors, a legend whenever two or more series are plotted, and a
table view under every chart (which also satisfies the contrast-relief
obligation for the lighter categorical slots).
"""

from __future__ import annotations

import html
import math
import pathlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, pathlib.Path]

# ----------------------------------------------------------------------
# Palette roles (reference instance; light/dark selected, validated).
# ----------------------------------------------------------------------
_STYLE = """
.viz-root {
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #7a7973;
  --grid: #e8e7e3;
  --series-1: #2a78d6;
  --series-2: #1baf7a;
  --series-3: #eda100;
  --series-4: #008300;
  --series-5: #4a3aa7;
  --series-6: #e34948;
  background: var(--surface-1);
  color: var(--text-primary);
  font-family: -apple-system, "Segoe UI", Roboto, Helvetica, Arial, sans-serif;
  max-width: 900px;
  margin: 2rem auto;
  padding: 0 1rem 3rem;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #8f8e85;
    --grid: #33332f;
    --series-1: #3987e5;
    --series-2: #199e70;
    --series-3: #c98500;
    --series-4: #008300;
    --series-5: #9085e9;
    --series-6: #e66767;
  }
}
.viz-root h1 { font-size: 1.15rem; font-weight: 600; margin-bottom: 0.2rem; }
.viz-root p.subtitle { color: var(--text-secondary); font-size: 0.85rem; margin-top: 0; }
.viz-root svg { display: block; margin: 1.2rem 0; }
.viz-root table {
  border-collapse: collapse; font-size: 0.8rem; margin-top: 1rem;
  font-variant-numeric: tabular-nums;
}
.viz-root th, .viz-root td {
  text-align: right; padding: 0.25rem 0.7rem;
  border-bottom: 1px solid var(--grid);
}
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root details summary { color: var(--text-secondary); cursor: pointer; font-size: 0.85rem; }
"""

SERIES_VARS = [f"var(--series-{i})" for i in range(1, 7)]

_TEXT = 'fill="var(--text-secondary)" font-size="11"'
_TEXT_SMALL = 'fill="var(--text-muted)" font-size="10"'


def _fmt(value: float) -> str:
    """Clean human number for labels/ticks."""
    if abs(value) >= 10_000:
        return f"{value / 1000:,.0f}k"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:,.3g}"
    return f"{value:.2g}"


def _nice_ticks(lo: float, hi: float, target: int = 4) -> List[float]:
    """Round tick positions (1/2/5 ladder) covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if span / step <= target + 1:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _downsample(values: np.ndarray, max_points: int = 360) -> np.ndarray:
    if values.shape[0] <= max_points:
        return values
    stride = int(np.ceil(values.shape[0] / max_points))
    usable = (values.shape[0] // stride) * stride
    return values[:usable].reshape(-1, stride).mean(axis=1)


@dataclass
class LineSeries:
    """One line on a panel; ``band`` optionally holds (lower, upper)."""

    label: str
    values: np.ndarray
    band: Optional[Tuple[np.ndarray, np.ndarray]] = None


def _legend(series_labels: Sequence[str], x: int, y: int) -> str:
    """Swatch + label row; identity never rides on color alone."""
    parts = []
    cursor = x
    for index, label in enumerate(series_labels):
        color = SERIES_VARS[index % len(SERIES_VARS)]
        parts.append(
            f'<rect x="{cursor}" y="{y - 8}" width="10" height="10" rx="2" fill="{color}"/>'
        )
        text = html.escape(label)
        parts.append(f'<text x="{cursor + 14}" y="{y + 1}" {_TEXT}>{text}</text>')
        cursor += 14 + int(7 * len(label)) + 18
    return "".join(parts)


def line_panel(
    series: Sequence[LineSeries],
    *,
    width: int = 840,
    height: int = 190,
    x_labels: Optional[Sequence[str]] = None,
    title: str = "",
    y_unit: str = "W",
    origin_y: int = 0,
) -> Tuple[str, int]:
    """Render one line panel; returns (svg fragment, panel height used)."""
    pad_left, pad_right, pad_top, pad_bottom = 56, 16, 26, 24
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom

    sampled = [
        LineSeries(
            s.label,
            _downsample(np.asarray(s.values, dtype=float)),
            None
            if s.band is None
            else (_downsample(np.asarray(s.band[0], dtype=float)),
                  _downsample(np.asarray(s.band[1], dtype=float))),
        )
        for s in series
    ]
    lo = min(
        min(s.values.min() for s in sampled),
        min((s.band[0].min() for s in sampled if s.band), default=np.inf),
    )
    hi = max(
        max(s.values.max() for s in sampled),
        max((s.band[1].max() for s in sampled if s.band), default=-np.inf),
    )
    span = (hi - lo) or 1.0
    lo -= span * 0.05
    hi += span * 0.05

    def sx(i: int, n: int) -> float:
        return pad_left + plot_w * i / max(1, n - 1)

    def sy(v: float) -> float:
        return origin_y + pad_top + plot_h * (1.0 - (v - lo) / (hi - lo))

    parts = [
        f'<text x="{pad_left}" y="{origin_y + 14}" fill="var(--text-primary)" '
        f'font-size="12" font-weight="600">{html.escape(title)}</text>'
    ]
    # Recessive hairline gridlines + clean ticks.
    for tick in _nice_ticks(lo, hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{pad_left}" y1="{y:.1f}" x2="{width - pad_right}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_left - 6}" y="{y + 3.5:.1f}" {_TEXT_SMALL} '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    if x_labels:
        n_ticks = len(x_labels)
        n_points = len(sampled[0].values)
        for k, label in enumerate(x_labels):
            x = sx(int(k * (n_points - 1) / max(1, n_ticks - 1)), n_points)
            parts.append(
                f'<text x="{x:.1f}" y="{origin_y + pad_top + plot_h + 15}" '
                f'{_TEXT_SMALL} text-anchor="middle">{html.escape(label)}</text>'
            )

    for index, s in enumerate(sampled):
        color = SERIES_VARS[index % len(SERIES_VARS)]
        n = len(s.values)
        if s.band is not None:
            lower, upper = s.band
            points_up = " ".join(
                f"{sx(i, n):.1f},{sy(v):.1f}" for i, v in enumerate(upper)
            )
            points_down = " ".join(
                f"{sx(i, n):.1f},{sy(v):.1f}"
                for i, v in reversed(list(enumerate(lower)))
            )
            parts.append(
                f'<polygon points="{points_up} {points_down}" fill="{color}" '
                'opacity="0.10" stroke="none"/>'
            )
        points = " ".join(f"{sx(i, n):.1f},{sy(v):.1f}" for i, v in enumerate(s.values))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round" stroke-linecap="round">'
            f"<title>{html.escape(s.label)}</title></polyline>"
        )
    return "".join(parts), height


def grouped_bar_chart(
    categories: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    width: int = 840,
    height: int = 300,
    title: str = "",
    value_suffix: str = "%",
) -> str:
    """Grouped columns: ≤24px bars, 4px rounded caps, 2px surface gaps,
    values on the caps, legend above."""
    pad_left, pad_right, pad_top, pad_bottom = 56, 16, 44, 28
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom

    all_values = [v for _, vs in series for v in vs]
    hi = max(max(all_values), 0.0)
    lo = min(min(all_values), 0.0)
    hi += (hi - lo) * 0.12 or 1.0

    def sy(v: float) -> float:
        return pad_top + plot_h * (1.0 - (v - lo) / (hi - lo))

    baseline = sy(0.0)
    parts = [
        f'<text x="{pad_left}" y="16" fill="var(--text-primary)" font-size="12" '
        f'font-weight="600">{html.escape(title)}</text>',
        _legend([label for label, _ in series], pad_left, 32),
    ]
    for tick in _nice_ticks(lo, hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{pad_left}" y1="{y:.1f}" x2="{width - pad_right}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_left - 6}" y="{y + 3.5:.1f}" {_TEXT_SMALL} '
            f'text-anchor="end">{_fmt(tick)}{value_suffix}</text>'
        )

    n_groups = len(categories)
    group_w = plot_w / n_groups
    n_series = len(series)
    bar_w = min(24.0, (group_w * 0.7 - 2.0 * (n_series - 1)) / n_series)
    cluster_w = bar_w * n_series + 2.0 * (n_series - 1)

    for g, category in enumerate(categories):
        group_x = pad_left + group_w * g + (group_w - cluster_w) / 2
        for s, (label, values) in enumerate(series):
            value = float(values[g])
            color = SERIES_VARS[s % len(SERIES_VARS)]
            x = group_x + s * (bar_w + 2.0)
            top = sy(max(value, 0.0))
            bottom = sy(min(value, 0.0))
            bar_h = max(bottom - top, 0.5)
            radius = min(4.0, bar_w / 2, bar_h)
            # Rounded data-end (top), square at the baseline.
            parts.append(
                f'<path d="M{x:.1f},{bottom:.1f} L{x:.1f},{top + radius:.1f} '
                f"Q{x:.1f},{top:.1f} {x + radius:.1f},{top:.1f} "
                f"L{x + bar_w - radius:.1f},{top:.1f} "
                f"Q{x + bar_w:.1f},{top:.1f} {x + bar_w:.1f},{top + radius:.1f} "
                f'L{x + bar_w:.1f},{bottom:.1f} Z" fill="{color}">'
                f"<title>{html.escape(category)} — {html.escape(label)}: "
                f"{_fmt(value)}{value_suffix}</title></path>"
            )
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{top - 4:.1f}" {_TEXT_SMALL} '
                f'text-anchor="middle">{_fmt(value)}</text>'
            )
        parts.append(
            f'<text x="{pad_left + group_w * (g + 0.5):.1f}" '
            f'y="{pad_top + plot_h + 17}" {_TEXT} '
            f'text-anchor="middle">{html.escape(category)}</text>'
        )
    parts.append(
        f'<line x1="{pad_left}" y1="{baseline:.1f}" x2="{width - pad_right}" '
        f'y2="{baseline:.1f}" stroke="var(--text-muted)" stroke-width="1"/>'
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img">{"".join(parts)}</svg>'
    )


def multi_panel_lines(
    panels: Sequence[Tuple[str, Sequence[LineSeries]]],
    *,
    width: int = 840,
    panel_height: int = 190,
    x_labels: Optional[Sequence[str]] = None,
    legend_labels: Optional[Sequence[str]] = None,
) -> str:
    """Stack several line panels (small multiples) into one SVG."""
    legend_height = 24 if legend_labels else 0
    total_height = panel_height * len(panels) + legend_height
    parts = []
    if legend_labels:
        parts.append(_legend(legend_labels, 56, 14))
    for index, (title, series) in enumerate(panels):
        fragment, _ = line_panel(
            series,
            width=width,
            height=panel_height,
            x_labels=x_labels if index == len(panels) - 1 else None,
            title=title,
            origin_y=legend_height + index * panel_height,
        )
        # line_panel computes y from origin_y internally except the title;
        # wrap in a group translate for the title row only.
        parts.append(fragment)
    return (
        f'<svg viewBox="0 0 {width} {total_height}" width="{width}" '
        f'height="{total_height}" role="img">{"".join(parts)}</svg>'
    )


def horizontal_bar_chart(
    items: Sequence[Tuple[str, float]],
    *,
    width: int = 840,
    title: str = "",
    value_suffix: str = "%",
    color_index: int = 0,
) -> str:
    """Magnitude-ranked horizontal bars (one series: no legend; values at
    the bar tips; ≤24px thick with rounded data-ends)."""
    row_h = 30
    pad_left, pad_right, pad_top, pad_bottom = 120, 70, 30, 8
    height = pad_top + row_h * len(items) + pad_bottom
    plot_w = width - pad_left - pad_right
    hi = max((v for _, v in items), default=1.0) or 1.0
    color = SERIES_VARS[color_index % len(SERIES_VARS)]

    parts = [
        f'<text x="{pad_left}" y="16" fill="var(--text-primary)" font-size="12" '
        f'font-weight="600">{html.escape(title)}</text>'
    ]
    bar_h = min(24, row_h - 8)
    for row, (label, value) in enumerate(items):
        y = pad_top + row * row_h + (row_h - bar_h) / 2
        bar_w = max(plot_w * value / hi, 0.5)
        radius = min(4.0, bar_h / 2, bar_w)
        x = pad_left
        parts.append(
            f'<path d="M{x:.1f},{y:.1f} L{x + bar_w - radius:.1f},{y:.1f} '
            f"Q{x + bar_w:.1f},{y:.1f} {x + bar_w:.1f},{y + radius:.1f} "
            f"L{x + bar_w:.1f},{y + bar_h - radius:.1f} "
            f"Q{x + bar_w:.1f},{y + bar_h:.1f} {x + bar_w - radius:.1f},{y + bar_h:.1f} "
            f'L{x:.1f},{y + bar_h:.1f} Z" fill="{color}">'
            f"<title>{html.escape(label)}: {_fmt(value)}{value_suffix}</title></path>"
        )
        parts.append(
            f'<text x="{pad_left - 8}" y="{y + bar_h / 2 + 4:.1f}" {_TEXT} '
            f'text-anchor="end">{html.escape(label)}</text>'
        )
        parts.append(
            f'<text x="{x + bar_w + 6:.1f}" y="{y + bar_h / 2 + 4:.1f}" '
            f"{_TEXT_SMALL}>{_fmt(value)}{value_suffix}</text>"
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img">{"".join(parts)}</svg>'
    )


def scatter_chart(
    points: Sequence[Tuple[float, float, int]],
    cluster_labels: Sequence[str],
    *,
    width: int = 840,
    height: int = 460,
    title: str = "",
) -> str:
    """Cluster scatter: ≥8px markers with a 2px surface ring, categorical
    color per cluster, legend present (identity never color-alone)."""
    pad, pad_top = 24, 48
    plot_w = width - 2 * pad
    plot_h = height - pad_top - pad

    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    x_lo, x_hi = xs.min(), xs.max()
    y_lo, y_hi = ys.min(), ys.max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    parts = [
        f'<text x="{pad}" y="16" fill="var(--text-primary)" font-size="12" '
        f'font-weight="600">{html.escape(title)}</text>',
        _legend(cluster_labels, pad, 34),
    ]
    for x, y, cluster in points:
        cx = pad + plot_w * (x - x_lo) / x_span
        cy = pad_top + plot_h * (1.0 - (y - y_lo) / y_span)
        color = SERIES_VARS[cluster % len(SERIES_VARS)]
        label = cluster_labels[cluster] if cluster < len(cluster_labels) else str(cluster)
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="{color}" '
            'stroke="var(--surface-1)" stroke-width="2">'
            f"<title>{html.escape(label)}</title></circle>"
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img">{"".join(parts)}</svg>'
    )


def data_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """The table view shipped with every chart."""
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        "<details open><summary>Data table</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        "</details>"
    )


def figure_page(
    title: str, subtitle: str, svg: str, table_html: str
) -> str:
    """Assemble one self-contained HTML figure page."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        "<body class='viz-root'>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='subtitle'>{html.escape(subtitle)}</p>"
        f"{svg}{table_html}</body></html>"
    )


def write_figure(path: PathLike, page: str) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(page)
    return path
