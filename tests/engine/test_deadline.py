"""Unit tests for the failure-domain policy object (`repro.engine.deadline`).

Covers the pure-policy half of the deadline layer: validation, the
straggler-threshold derivation (quantile, floor, cap), environment
parsing, the process-default/scope plumbing, and the decorrelated-jitter
backoff helper the dispatch driver sleeps on.
"""

import random

import pytest

from repro.engine import parallel
from repro.engine.deadline import (
    HARD_TIMEOUT_ENV,
    SOFT_TIMEOUT_ENV,
    TaskDeadline,
    TaskTimeoutError,
    clear_default_deadline,
    deadline_from_env,
    deadline_scope,
    get_default_deadline,
    set_default_deadline,
)
from repro.obs.metrics import Histogram


@pytest.fixture(autouse=True)
def _clean_default():
    clear_default_deadline()
    yield
    clear_default_deadline()


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_defaults_are_structural_only():
    deadline = TaskDeadline()
    assert deadline.soft_timeout_s is None
    assert deadline.hard_timeout_s is None
    assert deadline.quarantine_after == 2
    assert deadline.degrade_min_failures == 4
    # speculation is on by default, so the loop still polls
    assert deadline.watches


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(soft_timeout_s=0.0),
        dict(hard_timeout_s=-1.0),
        dict(soft_timeout_s=5.0, hard_timeout_s=1.0),
        dict(straggler_quantile=0.0),
        dict(straggler_quantile=101.0),
        dict(straggler_factor=0.0),
        dict(min_straggler_samples=0),
        dict(quarantine_after=-1),
        dict(degrade_failure_ratio=0.0),
        dict(degrade_failure_ratio=1.5),
        dict(degrade_min_failures=-1),
        dict(poll_interval_s=0.0),
    ],
)
def test_rejects_bad_config(kwargs):
    with pytest.raises(ValueError):
        TaskDeadline(**kwargs)


def test_watches_off_only_when_nothing_polls():
    assert not TaskDeadline(speculative=False).watches
    assert TaskDeadline(speculative=False, hard_timeout_s=1.0).watches
    assert TaskDeadline(speculative=True).watches


def test_timeout_error_carries_dispatch_context():
    error = TaskTimeoutError("stage", 3, 2, 1.5)
    assert error.label == "stage"
    assert error.shard_id == 3
    assert error.attempt == 2
    assert error.timeout_s == 1.5
    assert "stage" in str(error) and "1.5" in str(error)
    assert isinstance(error, RuntimeError)


# ----------------------------------------------------------------------
# straggler threshold derivation
# ----------------------------------------------------------------------
def _histogram(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


def test_threshold_none_when_speculation_off():
    deadline = TaskDeadline(speculative=False, soft_timeout_s=1.0)
    assert deadline.straggler_threshold_s(_histogram([1.0] * 100)) is None


def test_threshold_falls_back_to_soft_floor_without_samples():
    deadline = TaskDeadline(soft_timeout_s=2.0, min_straggler_samples=16)
    assert deadline.straggler_threshold_s(None) == 2.0
    assert deadline.straggler_threshold_s(_histogram([0.1] * 4)) == 2.0


def test_threshold_none_when_no_source_can_supply_one():
    deadline = TaskDeadline()  # speculative, but no floor and no histogram
    assert deadline.straggler_threshold_s(None) is None
    assert deadline.straggler_threshold_s(_histogram([0.1] * 4)) is None


def test_threshold_scales_quantile_and_respects_floor():
    hist = _histogram([1.0] * 32)
    deadline = TaskDeadline(straggler_factor=3.0, min_straggler_samples=16)
    threshold = deadline.straggler_threshold_s(hist)
    assert threshold == pytest.approx(3.0, rel=0.2)

    # a large soft floor dominates a small quantile estimate
    floored = TaskDeadline(
        soft_timeout_s=10.0, straggler_factor=3.0, min_straggler_samples=16
    )
    assert floored.straggler_threshold_s(hist) == pytest.approx(10.0)


def test_threshold_capped_at_hard_deadline():
    hist = _histogram([5.0] * 32)
    deadline = TaskDeadline(
        hard_timeout_s=4.0, straggler_factor=3.0, min_straggler_samples=16
    )
    assert deadline.straggler_threshold_s(hist) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# environment parsing
# ----------------------------------------------------------------------
def test_env_deadline_absent_by_default(monkeypatch):
    monkeypatch.delenv(HARD_TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(SOFT_TIMEOUT_ENV, raising=False)
    assert deadline_from_env() is None
    assert get_default_deadline() is None


def test_env_deadline_parses_both_timeouts(monkeypatch):
    monkeypatch.setenv(HARD_TIMEOUT_ENV, "12.5")
    monkeypatch.setenv(SOFT_TIMEOUT_ENV, "3")
    deadline = deadline_from_env()
    assert deadline == TaskDeadline(soft_timeout_s=3.0, hard_timeout_s=12.5)
    # the env deadline is what pooled stages see when nothing is installed
    assert get_default_deadline() == deadline


def test_env_deadline_ignores_garbage_and_clamps_soft(monkeypatch):
    monkeypatch.setenv(HARD_TIMEOUT_ENV, "not-a-number")
    monkeypatch.setenv(SOFT_TIMEOUT_ENV, "-5")
    assert deadline_from_env() is None

    monkeypatch.setenv(HARD_TIMEOUT_ENV, "2.0")
    monkeypatch.setenv(SOFT_TIMEOUT_ENV, "9.0")
    deadline = deadline_from_env()
    assert deadline.hard_timeout_s == 2.0
    assert deadline.soft_timeout_s == 2.0  # clamped, not rejected


# ----------------------------------------------------------------------
# the process default and deadline_scope
# ----------------------------------------------------------------------
def test_set_default_none_forces_deadlines_off(monkeypatch):
    monkeypatch.setenv(HARD_TIMEOUT_ENV, "5.0")
    assert get_default_deadline() is not None
    set_default_deadline(None)  # explicit None beats the environment
    assert get_default_deadline() is None
    clear_default_deadline()
    assert get_default_deadline() is not None


def test_deadline_scope_installs_and_restores():
    outer = TaskDeadline(hard_timeout_s=60.0)
    inner = TaskDeadline(hard_timeout_s=1.0)
    set_default_deadline(outer)
    with deadline_scope(inner) as installed:
        assert installed is inner
        assert get_default_deadline() is inner
    assert get_default_deadline() is outer


def test_deadline_scope_none_is_transparent():
    outer = TaskDeadline(hard_timeout_s=60.0)
    set_default_deadline(outer)
    with deadline_scope(None) as installed:
        assert installed is None
        assert get_default_deadline() is outer
    assert get_default_deadline() is outer


def test_deadline_scope_restores_on_exception():
    with pytest.raises(RuntimeError):
        with deadline_scope(TaskDeadline(hard_timeout_s=1.0)):
            raise RuntimeError("boom")
    assert get_default_deadline() is None


# ----------------------------------------------------------------------
# decorrelated-jitter backoff
# ----------------------------------------------------------------------
def test_backoff_zero_base_never_sleeps():
    rng = random.Random(0)
    assert parallel._decorrelated_backoff(0.0, 0.0, rng) == 0.0
    assert parallel._decorrelated_backoff(-1.0, 5.0, rng) == 0.0


def test_backoff_stays_within_decorrelated_bounds():
    rng = random.Random(1234)
    base, previous = 0.1, 0.1
    for _ in range(200):
        delay = parallel._decorrelated_backoff(base, previous, rng)
        assert base <= delay <= max(base, previous * 3)
        assert delay <= parallel.MAX_RETRY_BACKOFF_S
        previous = max(delay, base)


def test_backoff_is_capped():
    rng = random.Random(7)
    for _ in range(50):
        delay = parallel._decorrelated_backoff(10.0, 1e9, rng)
        assert 10.0 <= delay <= parallel.MAX_RETRY_BACKOFF_S


def test_backoff_varies_across_draws():
    rng = random.Random(99)
    draws = {
        round(parallel._decorrelated_backoff(0.5, 2.0, rng), 6) for _ in range(32)
    }
    assert len(draws) > 1  # jitter, not a constant schedule
