"""Deterministic infrastructure fault injection for the worker pool.

:mod:`repro.faults` injects faults into the *telemetry* the system reasons
about; this module injects faults into the *infrastructure* the system
runs on — the worker processes of the parallel data plane.  It exists so
the failure-domain layer (:mod:`repro.engine.deadline`,
:mod:`repro.engine.parallel`) can be proven against every failure mode the
paper's production environment exhibits, deterministically and in CI:

============== =====================================================
kind           worker-side effect
============== =====================================================
``hang``       sleep past any plausible deadline (watchdog territory)
``slow``       sleep ``duration_s`` then complete (straggler territory)
``kill``       ``os._exit`` — the worker dies without cleanup
``exception``  raise :class:`InjectedFault`
``oversized_bundle``  emit ``payload_events`` events so the telemetry
               bundle shipped home is pathologically large
``shm_exhaust``  raise ``OSError(ENOSPC)`` as a ``/dev/shm``-full
               allocation would
============== =====================================================

Faults are configured by the ``REPRO_INFRA_FAULTS`` environment variable —
a JSON object or list of objects, e.g.::

    REPRO_INFRA_FAULTS='{"kind": "kill", "shards": [1], "times": 2}'

— and **activated only inside pool workers**: the pool's worker
initializer calls :func:`activate`, which both parses the spec and flips
the worker-process flag.  The coordinator never activates, so quarantined
shards and degraded (serial) stages run fault-free by construction — which
is exactly the recovery guarantee the scenario suite asserts (results
bit-identical to a fault-free serial run).

Injection is a pure function of ``(fault spec, shard_id, attempt)``:
a fault fires on attempts ``1..times`` of its matching shards (plus an
optional deterministic per-``(seed, shard, attempt)`` coin flip when
``probability < 1``), so every run of a scenario injects exactly the same
faults in exactly the same places.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "InfraFault",
    "InjectedFault",
    "activate",
    "call_with_faults",
    "configured",
    "deactivate",
    "faults_from_env",
    "inject",
    "parse_faults",
]

#: Environment variable carrying the JSON fault spec(s).
FAULTS_ENV = "REPRO_INFRA_FAULTS"

#: Every failure mode the injector knows how to produce.
FAULT_KINDS = (
    "hang",
    "slow",
    "kill",
    "exception",
    "oversized_bundle",
    "shm_exhaust",
)

#: Exit status of a ``kill``-faulted worker (distinct from real crashes).
KILL_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """The exception raised by an ``exception``-kind infra fault."""


@dataclass(frozen=True)
class InfraFault:
    """One deterministic fault: what to do, where, and how many times."""

    #: One of :data:`FAULT_KINDS`.
    kind: str

    #: Shard ids the fault applies to; ``None`` means every shard.
    shards: Optional[Tuple[int, ...]] = None

    #: The fault fires on attempts ``1..times`` of a matching shard, so a
    #: ``times=1`` fault is recovered by the first retry and a
    #: ``times >= max_attempts`` fault is a permanent casualty.
    times: int = 1

    #: Sleep length for ``hang`` / ``slow`` faults.  A hang should dwarf
    #: the hard deadline under test; a slow should merely exceed the
    #: straggler threshold.
    duration_s: float = 30.0

    #: Events emitted by an ``oversized_bundle`` fault.
    payload_events: int = 5000

    #: Fire probability, decided by a deterministic per-(seed, shard,
    #: attempt) draw — ``1.0`` always fires.
    probability: float = 1.0

    #: Seed for the probability draw (and nothing else).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown infra fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be at least 1")
        if self.duration_s < 0:
            raise ValueError("duration_s cannot be negative")
        if self.payload_events < 0:
            raise ValueError("payload_events cannot be negative")
        if not 0 < self.probability <= 1:
            raise ValueError("probability must be in (0, 1]")

    # ------------------------------------------------------------------
    def matches(self, shard_id: int, attempt: int) -> bool:
        """Does this fault fire for ``shard_id``'s ``attempt``-th try?"""
        if self.shards is not None and shard_id not in self.shards:
            return False
        if attempt > self.times:
            return False
        if self.probability < 1.0:
            # mix (seed, shard, attempt) into one int — random.Random only
            # seeds from scalars, and this stays stable across processes
            mixed = (self.seed * 1_000_003 + shard_id) * 1_000_003 + attempt
            draw = random.Random(mixed).random()
            if draw >= self.probability:
                return False
        return True

    def apply(self, shard_id: int, attempt: int) -> None:
        """Produce the failure (worker side)."""
        from ..obs import events as obs_events

        obs_events.emit(
            obs_events.FAULT_INJECTION,
            severity="warning",
            source="chaos_infra",
            fault=self.kind,
            shard=shard_id,
            attempt=attempt,
        )
        if self.kind == "hang":
            time.sleep(self.duration_s)
        elif self.kind == "slow":
            time.sleep(self.duration_s)
        elif self.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        elif self.kind == "exception":
            raise InjectedFault(
                f"injected worker exception (shard {shard_id}, attempt {attempt})"
            )
        elif self.kind == "oversized_bundle":
            for index in range(self.payload_events):
                obs_events.emit(
                    obs_events.FAULT_INJECTION,
                    source="chaos_infra.payload",
                    shard=shard_id,
                    index=index,
                )
        elif self.kind == "shm_exhaust":
            raise OSError(
                errno.ENOSPC,
                f"injected shared-memory exhaustion (shard {shard_id}, "
                f"attempt {attempt})",
            )


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def parse_faults(text: str) -> Tuple[InfraFault, ...]:
    """Parse the ``REPRO_INFRA_FAULTS`` JSON: one object or a list."""
    text = (text or "").strip()
    if not text:
        return ()
    payload = json.loads(text)
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ValueError("infra fault spec must be a JSON object or list")
    faults = []
    for entry in payload:
        if not isinstance(entry, dict):
            raise ValueError("each infra fault must be a JSON object")
        entry = dict(entry)
        shards = entry.get("shards")
        if shards is not None:
            entry["shards"] = tuple(int(s) for s in shards)
        faults.append(InfraFault(**entry))
    return tuple(faults)


def faults_from_env() -> Tuple[InfraFault, ...]:
    """The faults the environment configures (empty when unset)."""
    return parse_faults(os.environ.get(FAULTS_ENV, ""))


def configured() -> bool:
    """Is a fault spec present in the environment?

    Coordinator-side gate: the dispatch loop only routes tasks through the
    injection wrapper when this is true, so the fault-free fast path pays
    nothing.  Raises on an unparsable spec — a chaos run with a typoed
    spec must fail loudly, not silently run fault-free.
    """
    return bool(faults_from_env())


# ----------------------------------------------------------------------
# worker-side activation and injection
# ----------------------------------------------------------------------
#: Faults active in THIS process.  Only :func:`activate` — called from the
#: pool's worker initializer — populates it, so the coordinator (and any
#: quarantined in-process execution it performs) never injects.
_ACTIVE: Tuple[InfraFault, ...] = ()


def activate() -> Tuple[InfraFault, ...]:
    """Arm the injectors from the environment (worker initializer hook)."""
    global _ACTIVE
    _ACTIVE = faults_from_env()
    return _ACTIVE


def deactivate() -> None:
    """Disarm the injectors in this process (test isolation hook)."""
    global _ACTIVE
    _ACTIVE = ()


def inject(shard_id: int, attempt: int) -> None:
    """Apply every armed fault matching ``(shard_id, attempt)``.

    Near-free no-op when nothing is armed (the coordinator, fault-free
    runs, quarantined serial execution).
    """
    if not _ACTIVE:
        return
    for fault in _ACTIVE:
        if fault.matches(shard_id, attempt):
            fault.apply(shard_id, attempt)


def call_with_faults(fn, shard_id: int, attempt: int, *args):
    """Run ``fn(*args)`` with armed faults applied first (worker side).

    The dispatch loop routes tasks through this wrapper only when a fault
    spec is configured; it is module-level so it pickles into workers.
    """
    inject(shard_id, attempt)
    return fn(*args)
