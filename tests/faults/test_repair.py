"""Unit tests for the telemetry sanitisation pipeline."""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    GridMisalignment,
    NegativeGlitch,
    PowerSpike,
    RawTelemetry,
    RepairPolicy,
    SensorDropout,
    StuckSensor,
    dirty_copy,
    realign,
    repair_telemetry,
)
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 10, 288)


def smooth_traces(n_rows=6, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(GRID.n_samples)
    base = 100.0 + 30.0 * np.sin(2 * np.pi * t / 144)
    matrix = base + rng.normal(0, 1.5, (n_rows, GRID.n_samples))
    return TraceSet(GRID, [f"s{i}" for i in range(n_rows)], np.maximum(matrix, 1.0))


class TestCleanPassThrough:
    def test_clean_input_unchanged(self):
        traces = smooth_traces()
        outcome = repair_telemetry(traces)
        assert outcome.report.n_flagged == 0
        np.testing.assert_allclose(outcome.traces.matrix, traces.matrix)

    def test_accepts_traceset_directly(self):
        outcome = repair_telemetry(smooth_traces())
        assert isinstance(outcome.traces, TraceSet)


class TestGapRepair:
    def test_gaps_interpolated(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces, FaultPlan((SensorDropout(fraction_of_traces=1.0),), seed=1)
        )
        outcome = repair_telemetry(dirty)
        assert np.isfinite(outcome.traces.matrix).all()
        assert outcome.report.n_missing_input > 0
        assert outcome.report.n_interpolated >= outcome.report.n_missing_input
        # Interpolation lands near the clean signal.
        err = np.abs(outcome.traces.matrix - traces.matrix).max()
        assert err < 10.0

    def test_dead_trace_zero_filled(self):
        traces = smooth_traces(n_rows=2)
        matrix = traces.matrix.copy()
        matrix[0, 10:] = np.nan  # >80% missing
        outcome = repair_telemetry(RawTelemetry(GRID, list(traces.ids), matrix))
        assert outcome.report.dead_traces == ["s0"]
        assert outcome.traces.row("s0").max() == 0.0
        assert outcome.traces.row("s1").max() > 0


class TestDetectors:
    def test_negative_readings_flagged(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces, FaultPlan((NegativeGlitch(fraction_of_traces=1.0),), seed=2)
        )
        outcome = repair_telemetry(dirty)
        assert outcome.report.n_negative > 0
        assert (outcome.traces.matrix >= 0).all()

    def test_spikes_removed(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces,
            FaultPlan((PowerSpike(fraction_of_traces=1.0, spikes_per_trace=2),), seed=3),
        )
        outcome = repair_telemetry(dirty)
        assert outcome.report.n_spikes > 0
        assert outcome.traces.matrix.max() < traces.matrix.max() * 2

    def test_stuck_runs_repaired(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces,
            FaultPlan((StuckSensor(fraction_of_traces=1.0, stuck_samples=36),), seed=4),
        )
        outcome = repair_telemetry(dirty)
        assert outcome.report.n_stuck > 0

    def test_flat_trace_not_flagged_as_stuck(self):
        matrix = np.full((1, GRID.n_samples), 42.0)
        outcome = repair_telemetry(RawTelemetry(GRID, ["flat"], matrix))
        assert outcome.report.n_stuck == 0
        np.testing.assert_allclose(outcome.traces.row("flat"), 42.0)


class TestRealign:
    def test_misaligned_grid_snapped_back(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces, FaultPlan((GridMisalignment(offset_minutes=3),), seed=5)
        )
        outcome = repair_telemetry(dirty)
        assert outcome.traces.grid == GRID
        assert outcome.report.realigned_minutes == 3
        # A 3-minute skew on a smooth diurnal signal is nearly invisible.
        err = np.abs(outcome.traces.matrix - traces.matrix).max()
        assert err < 10.0

    def test_explicit_target_grid(self):
        traces = smooth_traces()
        shifted = RawTelemetry(
            TimeGrid(3, 10, GRID.n_samples), list(traces.ids), traces.matrix.copy()
        )
        aligned = realign(shifted, GRID)
        assert aligned.grid == GRID

    def test_resampling_rejected(self):
        traces = smooth_traces()
        raw = RawTelemetry.from_traceset(traces)
        with pytest.raises(ValueError):
            realign(raw, TimeGrid(0, 5, GRID.n_samples))


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RepairPolicy(despike_window=2)
        with pytest.raises(ValueError):
            RepairPolicy(despike_factor=1.0)
        with pytest.raises(ValueError):
            RepairPolicy(stuck_min_run=1)
        with pytest.raises(ValueError):
            RepairPolicy(max_dead_fraction=0.0)


class TestReport:
    def test_summary_and_fraction(self):
        traces = smooth_traces()
        dirty = dirty_copy(
            traces,
            FaultPlan(
                (
                    SensorDropout(fraction_of_traces=0.5),
                    NegativeGlitch(fraction_of_traces=0.5),
                ),
                seed=6,
            ),
        )
        report = repair_telemetry(dirty).report
        summary = report.summary()
        assert summary["missing"] == report.n_missing_input
        assert 0 < report.repaired_fraction < 1
