"""Unit tests for topology builders."""

import pytest

from repro.infra import (
    Level,
    LevelSpec,
    TopologySpec,
    build_topology,
    ocp_spec,
    two_level_spec,
)


class TestSpecs:
    def test_levelspec_rejects_zero_fanout(self):
        with pytest.raises(ValueError):
            LevelSpec(Level.SUITE, 0)

    def test_topologyspec_requires_levels(self):
        with pytest.raises(ValueError):
            TopologySpec(name="x", levels=())

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(
                name="x",
                levels=(LevelSpec(Level.SUITE, 2), LevelSpec(Level.SUITE, 2)),
            )

    def test_n_leaves(self):
        spec = ocp_spec("dc", suites=2, msbs_per_suite=2, sbs_per_msb=2,
                        rpps_per_sb=2, racks_per_rpp=2, servers_per_rack=10)
        assert spec.n_leaves() == 32
        assert spec.total_capacity() == 320


class TestBuild:
    def test_ocp_structure(self):
        topo = build_topology(ocp_spec("dc"))
        assert len(topo.nodes_at_level(Level.SUITE)) == 4
        assert len(topo.nodes_at_level(Level.MSB)) == 8
        assert len(topo.nodes_at_level(Level.SB)) == 16
        assert len(topo.nodes_at_level(Level.RPP)) == 48
        assert len(topo.nodes_at_level(Level.RACK)) == 192

    def test_hierarchical_names(self):
        topo = build_topology(ocp_spec("dc"))
        leaf = topo.leaves()[0]
        assert leaf.name == "dc/suite0/msb0/sb0/rpp0/rack0"

    def test_leaf_capacity_set(self):
        topo = build_topology(ocp_spec("dc", servers_per_rack=17))
        assert all(leaf.capacity == 17 for leaf in topo.leaves())

    def test_internal_nodes_unbounded(self):
        topo = build_topology(ocp_spec("dc"))
        assert topo.node("dc/suite0").capacity is None

    def test_two_level(self):
        topo = build_topology(two_level_spec("toy", leaves=3, leaf_capacity=5))
        assert len(topo.leaves()) == 3
        assert topo.total_leaf_capacity() == 15
        assert topo.levels() == [Level.DATACENTER, Level.RPP]

    def test_root_is_datacenter(self):
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=1))
        assert topo.root.level == Level.DATACENTER
        assert topo.root.name == "toy"
