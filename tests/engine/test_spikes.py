"""Unit tests for the correlated power-spike fault model and policy."""

import numpy as np
import pytest

from conftest import make_demand, make_fleet, make_grid, make_runtime_parts
from repro.engine import (
    PowerSpikePolicy,
    PowerSpikeSchedule,
    ScenarioSpec,
    SpikeEvent,
    build_pipeline,
    execute,
)
from repro.obs import events as obs_events


# ----------------------------------------------------------------------
# SpikeEvent / PowerSpikeSchedule
# ----------------------------------------------------------------------
def test_spike_event_validation():
    with pytest.raises(ValueError, match="start_index"):
        SpikeEvent(start_index=-1, duration_samples=1, extra_watts=1.0)
    with pytest.raises(ValueError, match="duration"):
        SpikeEvent(start_index=0, duration_samples=0, extra_watts=1.0)
    with pytest.raises(ValueError, match="extra_watts"):
        SpikeEvent(start_index=0, duration_samples=1, extra_watts=-1.0)


def test_extra_power_stacks_overlaps_and_clips_the_tail():
    schedule = PowerSpikeSchedule(
        events=(
            SpikeEvent(start_index=2, duration_samples=3, extra_watts=100.0),
            SpikeEvent(start_index=3, duration_samples=2, extra_watts=50.0),
            SpikeEvent(start_index=8, duration_samples=10, extra_watts=25.0),
            SpikeEvent(start_index=99, duration_samples=5, extra_watts=1e9),
        )
    )
    extra = schedule.extra_power(10)
    assert extra.shape == (10,)
    assert extra[2] == 100.0
    assert extra[3] == extra[4] == 150.0  # overlapping bursts stack
    assert extra[8] == extra[9] == 25.0  # truncated at the horizon
    assert extra[:2].sum() == 0.0
    # 3*100 + 2*50 + 2*25 steps of extra draw, 30 minutes each.
    assert schedule.spike_watt_minutes(10, 30.0) == pytest.approx(450.0 * 30)


def test_empty_schedule_is_all_zeros():
    assert PowerSpikeSchedule().extra_power(5).sum() == 0.0


def test_random_schedule_is_seed_deterministic():
    grid = make_grid()
    kwargs = dict(extra_watts_low=100.0, extra_watts_high=500.0)
    first = PowerSpikeSchedule.random(grid, seed=3, **kwargs)
    again = PowerSpikeSchedule.random(grid, seed=3, **kwargs)
    other = PowerSpikeSchedule.random(grid, seed=4, **kwargs)
    assert first == again
    assert first != other
    for event in first.events:
        assert 100.0 <= event.extra_watts <= 500.0
    with pytest.raises(ValueError, match="extra_watts"):
        PowerSpikeSchedule.random(
            grid, extra_watts_low=10.0, extra_watts_high=5.0
        )


# ----------------------------------------------------------------------
# the spike_chaos mode end to end
# ----------------------------------------------------------------------
def _spike_spec(schedule, budget_watts=80_000.0):
    fleet, conversion, _, _ = make_runtime_parts(budget_watts)
    return ScenarioSpec(
        mode="spike_chaos",
        fleet=fleet,
        demand=make_demand(),
        conversion=conversion,
        spikes=schedule,
    )


def test_spike_chaos_pipeline_contains_the_policy():
    policies, actuators = build_pipeline(_spike_spec(PowerSpikeSchedule()))
    assert any(isinstance(p, PowerSpikePolicy) for p in policies)
    assert actuators  # emergency capping guards the mode


def test_spikes_add_exactly_their_extra_power():
    """With a generous budget the spiked run is baseline + schedule."""
    schedule = PowerSpikeSchedule(
        events=(SpikeEvent(start_index=5, duration_samples=4, extra_watts=2_000.0),)
    )
    clean = execute(_spike_spec(PowerSpikeSchedule())).result.scenario
    spiked = execute(_spike_spec(schedule)).result
    extra = schedule.extra_power(clean.total_power.size)
    # The budget is generous, so the capping fallback must stay disengaged
    # and the spiked draw is exactly baseline + schedule.
    assert not spiked.recovery.engaged
    assert np.allclose(
        spiked.scenario.total_power, clean.total_power + extra
    )


def test_spike_policy_emits_a_fault_injection_event():
    schedule = PowerSpikeSchedule(
        events=(SpikeEvent(start_index=0, duration_samples=2, extra_watts=500.0),)
    )
    with obs_events.recording() as log:
        execute(_spike_spec(schedule))
    faults = log.by_kind(obs_events.FAULT_INJECTION)
    assert len(faults) == 1
    assert faults[0].fields["fault"] == "power_spikes"
    assert faults[0].fields["peak_extra_watts"] == 500.0


def test_spike_policy_without_schedule_is_inert():
    with obs_events.recording() as log:
        execute(_spike_spec(None))
    assert not log.by_kind(obs_events.FAULT_INJECTION)
