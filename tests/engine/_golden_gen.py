"""Regenerate ``tests/engine/golden.json`` — the parity fingerprints.

The committed golden file was produced by the *pre-refactor* runtimes
(``ReshapingRuntime`` / ``ChaosReshapingRuntime`` / ``run_chaos_suite``
before ``repro.engine`` existed), so the parity suite proves the engine
reproduces them bit-for-bit.  Re-run this script only when a deliberate
behaviour change is being made, and say so in the commit message:

    PYTHONPATH=src python tests/engine/_golden_gen.py
"""

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import conftest  # noqa: E402  (the shared builders)


def reshaping_goldens():
    from repro.reshaping import ReshapingRuntime

    fleet, conversion, throttle, dvfs = conftest.make_runtime_parts()
    runtime = ReshapingRuntime(fleet, conversion, throttle=throttle, dvfs=dvfs)
    demand = conftest.make_demand()
    return {
        "pre": conftest.scenario_fingerprint(runtime.run_pre(demand)),
        "lc_only": conftest.scenario_fingerprint(
            runtime.run_lc_only(demand.scaled(1.1), 10)
        ),
        "conversion": conftest.scenario_fingerprint(
            runtime.run_conversion(demand.scaled(1.1), 10)
        ),
        "throttle_boost": conftest.scenario_fingerprint(
            runtime.run_throttle_boost(demand.scaled(1.15), 10, 5)
        ),
    }


def chaos_goldens():
    from repro.faults import run_chaos_suite

    outcomes = run_chaos_suite(dc_name="DC1", **conftest.SMALL)
    return {
        outcome.scenario.name: conftest.chaos_fingerprint(outcome)
        for outcome in outcomes
    }


def main():
    document = {
        "scale": conftest.SMALL,
        "reshaping": reshaping_goldens(),
        "chaos": chaos_goldens(),
    }
    path = HERE / "golden.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
