"""Integration tests: the full SmoothOperator pipeline on the demo DC."""

import numpy as np
import pytest

from repro.baselines import random_placement
from repro.core import (
    PlacementConfig,
    RemapConfig,
    SmoothOperator,
    SmoothOperatorConfig,
    node_asynchrony_scores,
)
from repro.infra import BreakerModel, Level, NodePowerView, audit_view
from repro.reshaping import (
    ConversionPolicy,
    ReshapingRuntime,
    derive_demand,
    describe_fleet,
    learn_conversion_threshold,
)
from repro.traces import training_trace_set


@pytest.fixture(scope="module")
def optimized(demo_datacenter):
    operator = SmoothOperator(
        SmoothOperatorConfig(placement=PlacementConfig(seed=0, kmeans_n_init=2))
    )
    outcome = operator.optimize(demo_datacenter.records, demo_datacenter.topology)
    report = operator.evaluate(
        demo_datacenter.records,
        demo_datacenter.baseline,
        outcome.assignment,
        budget_margin=0.05,
    )
    return outcome, report


class TestPlacementEndToEnd:
    def test_rpp_peak_reduction_positive(self, optimized):
        _, report = optimized
        assert report.peak_reduction[Level.RPP] > 0

    def test_reduction_grows_toward_leaves(self, optimized):
        _, report = optimized
        assert (
            report.peak_reduction[Level.DATACENTER]
            <= report.peak_reduction[Level.SB] + 1e-9
        )
        assert report.peak_reduction[Level.SUITE] <= report.peak_reduction[Level.RPP] + 0.02

    def test_hosts_extra_servers(self, optimized):
        _, report = optimized
        assert report.expansion.total_extra > 0

    def test_at_least_as_good_as_random(self, demo_datacenter, optimized):
        """SmoothOperator must match or beat random spreading on average.

        On an easy mix random is a strong de-fragmenter, so the margin can
        be thin; we compare against the mean of several random draws.
        """
        outcome, _ = optimized
        traces = demo_datacenter.test_traces()
        opt_view = NodePowerView(demo_datacenter.topology, outcome.assignment, traces)
        random_peaks = []
        for seed in (5, 6, 7):
            random = random_placement(
                demo_datacenter.records, demo_datacenter.topology, seed=seed
            )
            random_peaks.append(
                NodePowerView(demo_datacenter.topology, random, traces).sum_of_peaks(
                    Level.RPP
                )
            )
        assert opt_view.sum_of_peaks(Level.RPP) <= np.mean(random_peaks) * 1.002

    def test_generalizes_to_test_week(self, demo_datacenter, optimized):
        """Placement derived on training traces must help on the held-out week."""
        outcome, report = optimized
        assert report.peak_reduction[Level.RPP] > 0  # report uses test week

    def test_power_safety_on_test_week(self, demo_datacenter, optimized):
        """Optimised placement must not meaningfully overload any node.

        Sub-hour, few-watt excursions on the held-out week are the domain of
        the production power-capping system the paper explicitly delegates
        to (Sec. 3.6); sustained overloads would be placement failures.
        """
        outcome, _ = optimized
        traces = demo_datacenter.test_traces()
        view = NodePowerView(demo_datacenter.topology, outcome.assignment, traces)
        # Budgets were provisioned (hierarchically) during evaluate().
        trips = audit_view(view, BreakerModel(tolerance_minutes=120))
        for node_trips in trips.values():
            for trip in node_trips:
                budget = demo_datacenter.topology.node(trip.node_name).budget_watts
                assert trip.peak_overload_watts < 0.05 * budget
        assert len(trips) <= 3

    def test_asynchrony_improves(self, demo_datacenter, optimized):
        outcome, _ = optimized
        traces = training_trace_set(demo_datacenter.records)
        base_scores = node_asynchrony_scores(
            demo_datacenter.baseline, traces, Level.RPP
        )
        opt_scores = node_asynchrony_scores(outcome.assignment, traces, Level.RPP)
        assert np.mean(list(opt_scores.values())) > np.mean(list(base_scores.values()))


class TestRemappingEndToEnd:
    def test_remapping_improves_stale_placement(self, demo_datacenter):
        operator = SmoothOperator(
            SmoothOperatorConfig(
                placement=PlacementConfig(seed=0, kmeans_n_init=2),
                remap=RemapConfig(level=Level.RPP, max_swaps=10, candidate_nodes=3),
            )
        )
        outcome = operator.optimize(demo_datacenter.records, demo_datacenter.topology)
        assert outcome.remap is not None
        # Remapping never hurts the placement-level objective.
        traces = training_trace_set(demo_datacenter.records)
        placed = NodePowerView(
            demo_datacenter.topology, outcome.placement.assignment, traces
        ).sum_of_peaks(Level.RPP)
        remapped = NodePowerView(
            demo_datacenter.topology, outcome.assignment, traces
        ).sum_of_peaks(Level.RPP)
        assert remapped <= placed * 1.001


class TestReshapingEndToEnd:
    def test_full_reshaping_flow(self, demo_datacenter, optimized):
        outcome, report = optimized
        budget = demo_datacenter.topology.root.budget_watts
        assert budget is not None

        fleet = describe_fleet(demo_datacenter.records, budget_watts=budget)
        training = derive_demand(demo_datacenter.records, use_test=False)
        threshold = learn_conversion_threshold(training, fleet.n_lc)
        runtime = ReshapingRuntime(fleet, ConversionPolicy(threshold))

        extra = report.expansion.total_extra
        test_demand = derive_demand(demo_datacenter.records, use_test=True)
        grown = test_demand.scaled(1.0 + extra / fleet.n_lc)

        pre = runtime.run_pre(test_demand)
        conv = runtime.run_conversion(grown, extra)
        assert conv.lc_total() > pre.lc_total()
        assert conv.batch_total() >= pre.batch_total()
        assert conv.overload_steps() == 0
        assert pre.overload_steps() == 0
