"""Shared builders and fingerprint helpers for the engine parity suite.

The golden-parity tests pin the engine's output to fingerprints captured
from the pre-refactor runtimes (``tests/engine/golden.json``, produced by
``tests/engine/_golden_gen.py``).  Equality is exact (``==`` on floats):
the refactor moved code, it must not change a single bit of the results.
"""

import numpy as np
import pytest

from repro.reshaping import (
    ConversionPolicy,
    FleetDescription,
    ThrottleBoostPolicy,
)
from repro.sim import DemandTrace, DVFSModel, ServerPowerModel
from repro.traces import TimeGrid

#: The chaos-harness scale every engine test runs at (fast, deterministic).
SMALL = dict(n_instances=96, step_minutes=60, weeks=2)


def make_grid():
    return TimeGrid.for_days(2, step_minutes=60)


def make_fleet(budget_watts=45_000.0):
    return FleetDescription(
        n_lc=100,
        n_batch=40,
        lc_model=ServerPowerModel(90, 240),
        batch_model=ServerPowerModel(150, 235),
        budget_watts=budget_watts,
    )


def make_demand(grid=None):
    """Diurnal demand: peak per-server load 0.85 on the original fleet."""
    grid = grid if grid is not None else make_grid()
    hours = grid.hours_of_day()
    shape = 0.35 + 0.5 * np.exp(2.0 * (np.cos(2 * np.pi * (hours - 14) / 24) - 1))
    return DemandTrace(grid, shape * 100.0)


def make_runtime_parts(budget_watts=45_000.0):
    """(fleet, conversion, throttle, dvfs) for the reshaping fixtures."""
    return (
        make_fleet(budget_watts),
        ConversionPolicy(conversion_threshold=0.85),
        ThrottleBoostPolicy(),
        DVFSModel(),
    )


# ----------------------------------------------------------------------
# fingerprints: position-weighted checksums catch any per-step change
# ----------------------------------------------------------------------
def scenario_fingerprint(result):
    w = np.arange(1.0, result.total_power.size + 1.0)
    return {
        "name": result.name,
        "lc_total": float(result.lc_served.sum()),
        "batch_total": float(result.batch_throughput.sum()),
        "dropped_fraction": result.dropped_fraction(),
        "peak_power": float(result.total_power.max()),
        "energy_slack": result.energy_slack(),
        "overload_steps": int(result.overload_steps()),
        "power_checksum": float(np.dot(result.total_power, w)),
        "freq_checksum": float(np.dot(result.batch_freq, w)),
        "n_lc_checksum": float(np.dot(result.n_lc_active, w)),
        "n_batch_checksum": float(np.dot(result.n_batch_active, w)),
        "parked_checksum": (
            float(np.dot(result.parked, w)) if result.parked is not None else None
        ),
    }


def chaos_fingerprint(outcome):
    run = outcome.reshaping
    recovery = run.recovery
    fingerprint = {
        "scenario": scenario_fingerprint(run.scenario),
        "raw": scenario_fingerprint(run.raw),
        "engaged": recovery.engaged,
        "overload_before": recovery.overload_steps_before,
        "overload_after": recovery.overload_steps_after,
        "trips_before": len(recovery.trips_before),
        "trips_after": len(recovery.trips_after),
        "forced_shutdown_watt_minutes": recovery.forced_shutdown_watt_minutes,
        "lc_energy_shed": recovery.lc_energy_shed,
        "failure_downtime": recovery.failure_downtime_server_steps,
        "quality_clean": outcome.quality_clean,
        "quality_chaos": outcome.quality_chaos,
        "placement_trips": outcome.placement_trips,
        "passed": outcome.passed,
    }
    if recovery.capping is not None:
        fingerprint["capping"] = {
            "total_event_steps": recovery.capping.total_event_steps,
            "residual_overload_steps": recovery.capping.residual_overload_steps,
            "shed_by_kind": dict(sorted(recovery.capping.shed_by_kind.items())),
        }
    if recovery.conversion_lc is not None:
        log = recovery.conversion_lc
        fingerprint["conversion_lc"] = [
            log.n_transitions,
            log.n_failed_attempts,
            log.n_aborted,
            log.delayed_server_steps,
        ]
    return fingerprint


@pytest.fixture(scope="session")
def golden():
    import json
    import pathlib

    path = pathlib.Path(__file__).parent / "golden.json"
    with open(path) as handle:
        return json.load(handle)
