"""Exhaustive optimal placement for tiny instances.

Minimising the sum of leaf peaks is a set-partitioning problem; for real
fleets only heuristics are tractable, but for a handful of instances the
optimum can be enumerated exactly.  That gives the test suite a ground
truth: the workload-aware placer and the greedy placer can be scored
against the true optimum (`tests/core/test_optimal.py`), and papers-grade
claims like "close to optimal" become checkable.

Complexity: balanced assignments of ``n`` instances to ``q`` leaves are
enumerated via multiset permutations — fine for ``n`` up to ~12.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..infra.assignment import Assignment
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord

#: Refuse to enumerate beyond this many instances (combinatorial blow-up).
MAX_INSTANCES = 12


@dataclass(frozen=True)
class OptimalResult:
    """The optimum and how it was found."""

    assignment: Assignment
    sum_of_leaf_peaks: float
    evaluated_layouts: int


def optimal_leaf_placement(
    records: Sequence[InstanceRecord],
    topology: PowerTopology,
) -> OptimalResult:
    """Brute-force the minimum-sum-of-leaf-peaks placement.

    The search is restricted to near-equal leaf occupancy (sizes differ by
    at most one), matching the paper's balanced placements; an unbalanced
    search grows much faster and is rarely what a datacenter wants anyway.
    """
    records = list(records)
    if not records:
        raise ValueError("nothing to place")
    if len(records) > MAX_INSTANCES:
        raise ValueError(
            f"exhaustive search limited to {MAX_INSTANCES} instances, "
            f"got {len(records)}"
        )
    leaves = topology.leaves()
    q = len(leaves)
    n = len(records)
    capacity_total = topology.total_leaf_capacity()
    if capacity_total is not None and n > capacity_total:
        raise ValueError("fleet exceeds capacity")

    matrix = np.vstack([r.training_trace.values for r in records])

    # Candidate leaf-label vectors: each position i gets a leaf index.
    base, remainder = divmod(n, q)
    labels: List[int] = []
    for leaf_index in range(q):
        labels.extend([leaf_index] * (base + (1 if leaf_index < remainder else 0)))

    best_layout: Optional[Tuple[int, ...]] = None
    best_value = float("inf")
    evaluated = 0
    seen = set()
    for layout in permutations(labels):
        if layout in seen:
            continue
        seen.add(layout)
        evaluated += 1
        value = 0.0
        for leaf_index in range(q):
            rows = [i for i, label in enumerate(layout) if label == leaf_index]
            if not rows:
                continue
            value += float(matrix[rows].sum(axis=0).max())
            if value >= best_value:
                break
        if value < best_value:
            best_value = value
            best_layout = layout
    assert best_layout is not None

    # Capacity check (balanced layouts may still exceed a tiny leaf).
    for leaf_index, leaf in enumerate(leaves):
        count = sum(1 for label in best_layout if label == leaf_index)
        if leaf.capacity is not None and count > leaf.capacity:
            raise ValueError(
                f"balanced optimum needs {count} slots on {leaf.name}, "
                f"capacity {leaf.capacity}"
            )

    mapping: Dict[str, str] = {
        records[i].instance_id: leaves[label].name
        for i, label in enumerate(best_layout)
    }
    return OptimalResult(
        assignment=Assignment(topology, mapping),
        sum_of_leaf_peaks=best_value,
        evaluated_layouts=evaluated,
    )
