"""Tests for the longitudinal drift + adaptation simulation."""

import numpy as np
import pytest

from repro.analysis.longitudinal import (
    DriftingFleet,
    LongitudinalSimulation,
    amplitude_drift,
    combined_drift,
    no_drift,
    phase_drift,
)
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.infra import Level, build_topology, ocp_spec
from repro.traces import (
    TraceSynthesizer,
    cache_profile,
    db_profile,
    hadoop_profile,
    web_profile,
)


PROFILES = {
    "web": web_profile(),
    "cache": cache_profile(),
    "db": db_profile(),
    "hadoop": hadoop_profile(),
}


@pytest.fixture(scope="module")
def setting():
    synthesizer = TraceSynthesizer(weeks=2, step_minutes=60, seed=5)
    records = synthesizer.fleet(
        [
            (web_profile(), 24),
            (cache_profile(), 16),
            (db_profile(), 16),
            (hadoop_profile(), 8),
        ],
        test_weeks=0,
    )
    topology = build_topology(
        ocp_spec(
            "long",
            suites=2,
            msbs_per_suite=1,
            sbs_per_msb=2,
            rpps_per_sb=2,
            racks_per_rpp=1,
            servers_per_rack=10,
        )
    )
    placement = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2)).place(
        records, topology
    )
    return records, topology, placement.assignment


class TestDriftFunctions:
    def test_no_drift(self):
        profile = web_profile()
        assert no_drift(profile, 10) is profile

    def test_phase_drift_shifts(self):
        drift = phase_drift(1.0)
        assert drift(web_profile(), 3).peak_hour == pytest.approx(17.0)

    def test_phase_drift_wraps(self):
        drift = phase_drift(6.0)
        assert drift(web_profile(), 3).peak_hour == pytest.approx(8.0)

    def test_amplitude_drift_grows(self):
        drift = amplitude_drift(0.1)
        base = web_profile()
        grown = drift(base, 2)
        assert grown.swing_watts == pytest.approx(base.swing_watts * 1.21)

    def test_combined(self):
        drift = combined_drift(phase_drift(1.0), amplitude_drift(0.1))
        out = drift(web_profile(), 1)
        assert out.peak_hour == pytest.approx(15.0)
        assert out.swing_watts > web_profile().swing_watts


class TestDriftingFleet:
    def test_week_shapes(self, setting):
        records, _, _ = setting
        fleet = DriftingFleet(records, PROFILES, no_drift, step_minutes=60, seed=1)
        week = fleet.week(0)
        assert len(week) == len(records)
        assert week.grid.covers_whole_weeks()

    def test_personalities_stable_across_weeks(self, setting):
        """The same instance keeps its relative standing week over week."""
        records, _, _ = setting
        fleet = DriftingFleet(records, PROFILES, no_drift, step_minutes=60, seed=1)
        w0 = fleet.week(0)
        w1 = fleet.week(1)
        web_ids = [r.instance_id for r in records if r.service == "web"]
        peaks0 = np.array([w0.row(i).max() for i in web_ids])
        peaks1 = np.array([w1.row(i).max() for i in web_ids])
        # Strong rank correlation: personality (amplitude) persists.
        order0 = np.argsort(peaks0)
        order1 = np.argsort(peaks1)
        agreement = np.mean(order0[:8] == order1[:8])
        assert np.corrcoef(peaks0, peaks1)[0, 1] > 0.8 or agreement > 0.5

    def test_weeks_differ(self, setting):
        records, _, _ = setting
        fleet = DriftingFleet(records, PROFILES, no_drift, step_minutes=60, seed=1)
        assert not np.allclose(fleet.week(0).matrix, fleet.week(1).matrix)

    def test_drift_visible(self, setting):
        records, _, _ = setting
        fleet = DriftingFleet(
            records, PROFILES, phase_drift(2.0), step_minutes=60, seed=1
        )
        web_ids = [r.instance_id for r in records if r.service == "web"]
        w0 = fleet.week(0).subset(web_ids).total()
        w5 = fleet.week(5).subset(web_ids).total()
        assert abs(w0.peak_hour() - w5.peak_hour()) >= 4


class TestSimulation:
    def test_stable_world_needs_no_swaps(self, setting):
        records, topology, assignment = setting
        fleet = DriftingFleet(records, PROFILES, no_drift, step_minutes=60, seed=1)
        sim = LongitudinalSimulation(fleet, assignment, level=Level.RPP)
        result = sim.run(3)
        assert len(result.adaptive) == 3
        # Without drift the placement stays healthy: few or no swaps.
        assert result.total_swaps() <= 4

    def test_adaptation_tracks_drift(self, setting):
        records, topology, assignment = setting
        fleet = DriftingFleet(
            records, PROFILES, phase_drift(1.5), step_minutes=60, seed=1
        )
        sim = LongitudinalSimulation(fleet, assignment, level=Level.RPP)
        result = sim.run(6)
        # The adaptive arm must end at least as good as the frozen one.
        assert result.adaptive[-1].sum_of_peaks <= result.static[-1] * 1.005

    def test_rejects_zero_weeks(self, setting):
        records, topology, assignment = setting
        fleet = DriftingFleet(records, PROFILES, no_drift, step_minutes=60, seed=1)
        sim = LongitudinalSimulation(fleet, assignment, level=Level.RPP)
        with pytest.raises(ValueError):
            sim.run(0)
