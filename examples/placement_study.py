"""Placement study across the three datacenters of the paper (Sec. 5.2.1).

Reproduces the Figure 10 experiment at a configurable scale: for each of
DC1/DC2/DC3, derive the workload-aware placement, measure per-level peak
reductions on the held-out week, and compare against round-robin and random
baselines.

Run:  python examples/placement_study.py [n_instances]
"""

import sys

from repro.analysis import experiments as E
from repro.analysis import format_percent, format_table
from repro.baselines import random_placement, round_robin_placement
from repro.infra import Level, NodePowerView


def main(n_instances: int = 480) -> None:
    scale = dict(n_instances=n_instances, step_minutes=10)
    levels = [Level.SUITE, Level.MSB, Level.SB, Level.RPP]

    rows = []
    baseline_rows = []
    for name in E.DATACENTER_NAMES:
        dc = E.get_datacenter(name, **scale)
        study = E.run_placement_study(dc)
        reduction = study.report.peak_reduction
        rows.append(
            [name]
            + [format_percent(reduction[level]) for level in levels]
            + [format_percent(study.report.extra_server_fraction)]
        )

        # How do trace-blind spreaders compare at the RPP level?
        test = dc.test_traces()
        base = NodePowerView(dc.topology, dc.baseline, test).sum_of_peaks(Level.RPP)
        entries = [name]
        for label, assignment in (
            ("round-robin", round_robin_placement(dc.records, dc.topology)),
            ("random", random_placement(dc.records, dc.topology, seed=1)),
            ("SmoothOperator", study.optimized.assignment),
        ):
            peaks = NodePowerView(dc.topology, assignment, test).sum_of_peaks(Level.RPP)
            entries.append(format_percent(1.0 - peaks / base))
        baseline_rows.append(entries)

    print(
        format_table(
            ["DC", "SUITE", "MSB", "SB", "RPP", "extra servers"],
            rows,
            title=f"Peak reduction by level ({n_instances} instances/DC, test week)",
        )
    )
    print()
    print(
        format_table(
            ["DC", "round-robin", "random", "SmoothOperator"],
            baseline_rows,
            title="RPP-level reduction vs the original placement, by policy",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 480)
