"""Figure 14: average and off-peak power-slack reduction per datacenter.

Paper: dynamic power profile reshaping reduces average power slack by 44%,
41% and 18% in DC1-3 — DC3 benefits least because it has the smallest Batch
share to throttle/boost and convert into.

Here the reduction isolates the dynamic reshaping itself: throttle_boost is
compared against deploying the same extra servers as static LC capacity
(see EXPERIMENTS.md for the interpretation note); the vs-pre numbers are
also reported.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table

PAPER_AVG = {"DC1": 0.44, "DC2": 0.41, "DC3": 0.18}


def _run(full_scale):
    return E.run_figure14(**full_scale)


@pytest.mark.benchmark(group="figure14")
def test_fig14_slack(benchmark, emit_report, full_scale):
    result = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = [
        [
            name,
            format_percent(row["average"]),
            format_percent(row["off_peak"]),
            format_percent(PAPER_AVG[name]),
            format_percent(row["average_vs_pre"]),
            format_percent(row["off_peak_vs_pre"]),
        ]
        for name, row in result.items()
    ]
    table = format_table(
        ["DC", "avg", "off-peak", "paper avg", "avg vs pre", "off-peak vs pre"],
        rows,
        title="Figure 14 — power slack reduction from dynamic reshaping",
    )
    emit_report("fig14_slack", table)

    for name, row in result.items():
        # Reshaping genuinely eats slack (budget does more work).
        assert row["average"] > 0.05
        assert row["average_vs_pre"] > 0.10
    # DC3 benefits least from reshaping (paper's 18% vs 44/41%).
    assert result["DC3"]["average"] <= result["DC1"]["average"] + 0.01
