"""Workload-aware hierarchical service placement (Sec. 3.5).

The placer walks the power tree top-down.  At each internal node it

1. extracts the S-traces of the top power-consumer services among the
   instances to be placed under that node,
2. computes every instance's I-to-S asynchrony-score vector,
3. runs balanced k-means into ``h`` equal-size clusters (``h`` a multiple of
   the child count ``q``),
4. deals each cluster's members round-robin across the children so every
   child receives ``|c_j| / q`` instances of every cluster,

then recurses until instances reach leaf power nodes.  Synchronous instances
(same cluster) end up spread evenly; each node's aggregate peak drops.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..infra.assignment import Assignment, AssignmentError
from ..infra.topology import PowerNode, PowerTopology
from ..traces.instance import InstanceRecord
from ..traces.series import PowerTrace
from ..traces.service import extract_basis_traces
from ..traces.traceset import TraceSet
from .asynchrony import DEFAULT_SCORE_MAX_BYTES, score_matrix
from .clustering import balanced_kmeans


@dataclass(frozen=True)
class PlacementConfig:
    """Tuning knobs for the workload-aware placer.

    Attributes
    ----------
    top_m_services:
        Size of the S-trace basis |B| (the paper uses the top ~10 power
        consumers; clamped to the number of distinct services present).
    clusters_per_child:
        ``h = q × clusters_per_child`` clusters at a node with ``q``
        children (the paper configures h as a multiple of q).
    seed:
        Root seed; per-node seeds are derived deterministically from it.
    rebuild_basis_per_node:
        Re-extract S-traces from the local instance subset at every
        recursion step (matches Sec. 3.5's description).  When False the
        datacenter-level basis is reused throughout, which is faster.
    score_max_bytes:
        Ceiling on the broadcast block one scoring chunk may materialise
        (see :func:`repro.core.asynchrony.score_matrix`); ``None`` disables
        the bound and chunks purely by ``score_chunk_size``.
    score_workers:
        Worker processes for the I-to-S scoring stage.  Above 1, fleet-
        scale :func:`~repro.core.asynchrony.score_matrix` calls shard their
        rows across the persistent pool over shared memory; small per-node
        batches stay serial, and results are identical either way (row
        scores are independent).
    score_dtype:
        Exactness toggle forwarded to the scorer: ``None`` (default) keeps
        the bit-exact float64 broadcast, ``numpy.float32`` halves the
        scoring stage's memory traffic at the cost of float32 rounding.
    """

    top_m_services: int = 10
    clusters_per_child: int = 2
    seed: int = 0
    kmeans_n_init: int = 3
    kmeans_max_iter: int = 50
    rebuild_basis_per_node: bool = True
    score_chunk_size: int = 256
    score_max_bytes: Optional[int] = DEFAULT_SCORE_MAX_BYTES
    score_workers: int = 1
    score_dtype: Optional[object] = None

    def __post_init__(self) -> None:
        if self.top_m_services <= 0:
            raise ValueError("top_m_services must be positive")
        if self.clusters_per_child <= 0:
            raise ValueError("clusters_per_child must be positive")
        if self.score_max_bytes is not None and self.score_max_bytes <= 0:
            raise ValueError("score_max_bytes must be positive or None")
        if self.score_workers < 1:
            raise ValueError("score_workers must be at least 1")


@dataclass
class PlacementResult:
    """An assignment plus the diagnostics gathered while deriving it."""

    assignment: Assignment
    basis_services: List[str]
    #: node name → cluster label per instance id placed under that node
    cluster_labels: Dict[str, Dict[str, int]] = field(default_factory=dict)


def scoped_placement(
    records: Sequence[InstanceRecord],
    baseline: Assignment,
    scope_level: str,
    config: Optional[PlacementConfig] = None,
    *,
    workers: int = 1,
) -> Assignment:
    """Re-place each ``scope_level`` subtree independently, keeping every
    instance inside the subtree that currently powers it.

    The paper's Figure 9 works exactly this way (the placement is applied
    to the subtree of one node N, "our placement policy does not move
    service instances into or out of the subtree").  Operationally this is
    the cheap variant: migrations stay within a suite or SB, no cross-room
    moves.  The cost is that cross-subtree imbalance in the original
    placement cannot be fixed — the global placer's reductions upper-bound
    the scoped ones.

    Subtrees are independent by construction, so ``workers > 1`` fans them
    out across the persistent pool: the fleet's training traces are
    published once into shared memory and each task carries only its
    subtree's row indices and metadata (see
    :mod:`repro.engine.sharedmem`).  Per-node seeds derive from node names,
    so the result is identical for any worker count.
    """
    topology = baseline.topology
    by_id = {record.instance_id: record for record in records}
    missing = [i for i in baseline.instance_ids() if i not in by_id]
    if missing:
        raise ValueError(f"records missing for placed instances: {missing[:5]}")

    scoped = []
    for node in topology.nodes_at_level(scope_level):
        member_ids = baseline.instances_under(node.name)
        if member_ids:
            scoped.append((node, member_ids))

    mapping: Dict[str, str] = {}
    if workers <= 1 or len(scoped) <= 1:
        placer = WorkloadAwarePlacer(config)
        for node, member_ids in scoped:
            subtree = PowerTopology(node)
            local = placer.place([by_id[i] for i in member_ids], subtree)
            mapping.update(local.assignment.as_mapping())
        return Assignment(topology, mapping)

    # Parallel path: one shared segment for every training trace, one task
    # per subtree.  Lazy imports keep repro.core free of a module-scope
    # dependency on repro.engine (which imports core via the chaos harness).
    from ..engine.parallel import get_pool
    from ..engine.sharedmem import SharedMatrix

    ordered = list(records)
    row_of = {record.instance_id: row for row, record in enumerate(ordered)}
    matrix = np.stack([record.training_trace.values for record in ordered])
    grid = ordered[0].training_trace.grid
    resolved = config if config is not None else PlacementConfig()
    pool = get_pool(workers)
    with SharedMatrix.create(matrix) as shared:
        tasks = []
        for node, member_ids in scoped:
            members = [by_id[i] for i in member_ids]
            tasks.append(
                (
                    shared.handle,
                    grid,
                    tuple(row_of[m.instance_id] for m in members),
                    tuple(m.instance_id for m in members),
                    tuple(m.service for m in members),
                    tuple(m.kind for m in members),
                    node,
                    resolved,
                )
            )
        obs.count("place.scope_shards", len(tasks))
        for shard_mapping in pool.map_shards(
            _scoped_place_shard, tasks, label="place.shard"
        ):
            mapping.update(shard_mapping)
    return Assignment(topology, mapping)


def _scoped_place_shard(
    handle: object,
    grid: object,
    rows: Tuple[int, ...],
    ids: Tuple[str, ...],
    services: Tuple[str, ...],
    kinds: Tuple[str, ...],
    node: PowerNode,
    config: PlacementConfig,
) -> Dict[str, str]:
    """Place one scope subtree from shared-memory trace rows (pool task)."""
    from ..engine.sharedmem import attached_view
    from ..traces.instance import ServiceInstance

    view = attached_view(handle)
    records = [
        InstanceRecord(
            instance=ServiceInstance(instance_id=i, service=s, kind=k),
            training_trace=PowerTrace(grid, view[row]),
        )
        for row, i, s, k in zip(rows, ids, services, kinds)
    ]
    placer = WorkloadAwarePlacer(config)
    result = placer.place(records, PowerTopology(node))
    return result.assignment.as_mapping()


class WorkloadAwarePlacer:
    """SmoothOperator's placement engine (Figure 7, steps 2-4)."""

    def __init__(self, config: Optional[PlacementConfig] = None) -> None:
        self.config = config if config is not None else PlacementConfig()

    # ------------------------------------------------------------------
    def place(
        self, records: Sequence[InstanceRecord], topology: PowerTopology
    ) -> PlacementResult:
        """Derive a workload-aware assignment of ``records`` onto ``topology``."""
        if not records:
            raise ValueError("nothing to place")
        capacity = topology.total_leaf_capacity()
        if capacity is not None and len(records) > capacity:
            raise AssignmentError(
                f"{len(records)} instances exceed total leaf capacity {capacity}"
            )
        with obs.span("place", instances=len(records)):
            global_basis = extract_basis_traces(records, self.config.top_m_services)
            mapping: Dict[str, str] = {}
            diagnostics: Dict[str, Dict[str, int]] = {}
            self._place_under(
                topology.root, list(records), global_basis, mapping, diagnostics
            )
            assignment = Assignment(topology, mapping)
            obs.count("place.instances_placed", len(mapping))
            return PlacementResult(
                assignment=assignment,
                basis_services=list(global_basis.ids),
                cluster_labels=diagnostics,
            )

    # ------------------------------------------------------------------
    def _place_under(
        self,
        node: PowerNode,
        records: List[InstanceRecord],
        basis: TraceSet,
        mapping: Dict[str, str],
        diagnostics: Dict[str, Dict[str, int]],
    ) -> None:
        if not records:
            return
        if node.is_leaf:
            if node.capacity is not None and len(records) > node.capacity:
                raise AssignmentError(
                    f"leaf {node.name} receives {len(records)} instances, "
                    f"capacity {node.capacity}"
                )
            for record in records:
                mapping[record.instance_id] = node.name
            return
        if len(node.children) == 1:
            self._place_under(node.children[0], records, basis, mapping, diagnostics)
            return

        obs.count("place.nodes_clustered")
        clusters, labels = self._cluster(node, records, basis)
        diagnostics[node.name] = {
            record.instance_id: int(label)
            for record, label in zip(records, labels)
        }
        shares = self._child_shares(node, records)
        buckets = self._deal_round_robin(node, records, clusters, shares)
        for child, bucket in zip(node.children, buckets):
            child_basis = basis
            if self.config.rebuild_basis_per_node and bucket:
                child_basis = extract_basis_traces(bucket, self.config.top_m_services)
            self._place_under(child, bucket, child_basis, mapping, diagnostics)

    # ------------------------------------------------------------------
    def _cluster(
        self,
        node: PowerNode,
        records: List[InstanceRecord],
        basis: TraceSet,
    ) -> Tuple[List[List[InstanceRecord]], np.ndarray]:
        """Cluster the local instances in asynchrony-score space."""
        local_basis = basis
        if self.config.rebuild_basis_per_node:
            local_basis = extract_basis_traces(records, self.config.top_m_services)
        traces = TraceSet.from_traces(
            {record.instance_id: record.training_trace for record in records}
        )
        scores = score_matrix(
            traces,
            local_basis,
            chunk_size=self.config.score_chunk_size,
            max_bytes=self.config.score_max_bytes,
            dtype=self.config.score_dtype,
            workers=self.config.score_workers,
        )
        q = len(node.children)
        h = min(len(records), q * self.config.clusters_per_child)
        h = max(h, 1)
        result = balanced_kmeans(
            scores,
            h,
            seed=self._node_seed(node),
            n_init=self.config.kmeans_n_init,
            max_iter=self.config.kmeans_max_iter,
        )
        clusters: List[List[InstanceRecord]] = [[] for _ in range(result.k)]
        for record, label in zip(records, result.labels):
            clusters[int(label)].append(record)
        # Deterministic intra-cluster order: deal the power-hungriest
        # instances first so the heaviest members spread widest.
        for cluster in clusters:
            cluster.sort(
                key=lambda r: (-r.training_trace.peak(), r.instance_id)
            )
        return clusters, result.labels

    def _node_seed(self, node: PowerNode) -> int:
        return (self.config.seed * 2654435761 + zlib.crc32(node.name.encode())) % (2**32)

    # ------------------------------------------------------------------
    @staticmethod
    def _subtree_capacity(node: PowerNode) -> Optional[int]:
        total = 0
        for leaf in node.leaves():
            if leaf.capacity is None:
                return None
            total += leaf.capacity
        return total

    def _child_shares(
        self, node: PowerNode, records: List[InstanceRecord]
    ) -> List[int]:
        """How many instances each child should receive.

        Even split, adjusted down where a child's subtree capacity binds and
        the overflow pushed to children with room.
        """
        q = len(node.children)
        n = len(records)
        capacities = [self._subtree_capacity(child) for child in node.children]
        shares = [n // q + (1 if i < n % q else 0) for i in range(q)]
        # Waterfill overflow from capacity-bound children.
        for _ in range(q):
            overflow = 0
            for i, capacity in enumerate(capacities):
                if capacity is not None and shares[i] > capacity:
                    overflow += shares[i] - capacity
                    shares[i] = capacity
            if overflow == 0:
                break
            for i, capacity in enumerate(capacities):
                if overflow == 0:
                    break
                room = float("inf") if capacity is None else capacity - shares[i]
                take = int(min(room, overflow))
                shares[i] += take
                overflow -= take
            if overflow > 0:
                raise AssignmentError(
                    f"subtree of {node.name} cannot hold {n} instances"
                )
        return shares

    @staticmethod
    def _deal_round_robin(
        node: PowerNode,
        records: List[InstanceRecord],
        clusters: List[List[InstanceRecord]],
        shares: List[int],
    ) -> List[List[InstanceRecord]]:
        """Deal each cluster's members across children like cards.

        Iterating cluster-by-cluster and child-by-child gives every child
        ``≈ |c_j| / q`` members of each cluster j — the paper's round-robin
        heuristic.  Children that reached their share are skipped.
        """
        q = len(node.children)
        buckets: List[List[InstanceRecord]] = [[] for _ in range(q)]
        child_cursor = 0
        for cluster in clusters:
            for record in cluster:
                placed = False
                for _ in range(q):
                    index = child_cursor % q
                    child_cursor += 1
                    if len(buckets[index]) < shares[index]:
                        buckets[index].append(record)
                        placed = True
                        break
                if not placed:
                    raise AssignmentError(
                        f"no child of {node.name} can take instance "
                        f"{record.instance_id}"
                    )
        return buckets
