"""Unit tests for the SmoothOperator pipeline facade."""

import pytest

from repro.core import (
    PlacementConfig,
    RemapConfig,
    SmoothOperator,
    SmoothOperatorConfig,
)
from repro.infra import Level


@pytest.fixture
def operator():
    return SmoothOperator(
        SmoothOperatorConfig(placement=PlacementConfig(seed=3, kmeans_n_init=2))
    )


class TestOptimize:
    def test_returns_assignment(self, operator, tiny_records, tiny_topology):
        outcome = operator.optimize(tiny_records, tiny_topology)
        assert len(outcome.assignment) == len(tiny_records)
        assert outcome.remap is None

    def test_with_remapping(self, tiny_records, tiny_topology):
        operator = SmoothOperator(
            SmoothOperatorConfig(
                placement=PlacementConfig(seed=3, kmeans_n_init=2),
                remap=RemapConfig(level=Level.RPP, max_swaps=5),
            )
        )
        outcome = operator.optimize(tiny_records, tiny_topology)
        assert outcome.remap is not None
        assert len(outcome.assignment) == len(tiny_records)


class TestEvaluate:
    def test_report_structure(self, operator, tiny_records, tiny_topology):
        from repro.baselines import oblivious_placement

        outcome = operator.optimize(tiny_records, tiny_topology)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        report = operator.evaluate(tiny_records, baseline, outcome.assignment)
        assert set(report.peak_reduction) == set(tiny_topology.levels())
        assert report.extra_server_fraction >= 0.0

    def test_leaf_reduction_positive(self, operator, tiny_records, tiny_topology):
        from repro.baselines import oblivious_placement

        outcome = operator.optimize(tiny_records, tiny_topology)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        report = operator.evaluate(tiny_records, baseline, outcome.assignment)
        assert report.peak_reduction[Level.RACK] > 0

    def test_budgets_written_to_topology(self, operator, tiny_records, tiny_topology):
        from repro.baselines import oblivious_placement

        outcome = operator.optimize(tiny_records, tiny_topology)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        operator.evaluate(tiny_records, baseline, outcome.assignment)
        assert tiny_topology.root.budget_watts is not None

    def test_evaluate_on_training_week(self, operator, tiny_records, tiny_topology):
        from repro.baselines import oblivious_placement

        outcome = operator.optimize(tiny_records, tiny_topology)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        report = operator.evaluate(
            tiny_records, baseline, outcome.assignment, use_test_week=False
        )
        assert report.sum_of_peaks_before[Level.RACK] > 0

    def test_custom_per_server_watts(self, operator, tiny_records, tiny_topology):
        from repro.baselines import oblivious_placement

        outcome = operator.optimize(tiny_records, tiny_topology)
        baseline = oblivious_placement(tiny_records, tiny_topology)
        frugal = operator.evaluate(
            tiny_records, baseline, outcome.assignment, per_server_watts=50.0
        )
        hungry = operator.evaluate(
            tiny_records, baseline, outcome.assignment, per_server_watts=500.0
        )
        assert frugal.expansion.total_extra >= hungry.expansion.total_extra
