"""Hierarchical power capping — the Dynamo-style safety substrate.

The paper delegates short-term power spikes to "commonly deployed emergency
measures such as power capping solutions [Dynamo]" (Sec. 3.6) and argues
that with an oblivious placement, latency-critical nodes "need to be
largely capped, even when there are still ample amounts of power headroom
at other leaf nodes" (Sec. 1).  This module implements that capping loop so
the claim can be *measured*: walk the tree bottom-up at every time step,
and wherever a node exceeds its budget, shed the excess from the servers
beneath it — batch first, storage/other second, latency-critical last, each
class down to a floor.

The headline metric is **LC energy shed**: work taken away from user-facing
services, the paper's proxy for QoS damage.

This is the canonical home of the capping loop; ``repro.infra.capping``
re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs import events as obs_events
from ..traces.instance import ServiceKind
from ..traces.traceset import TraceSet
from ..infra.assignment import Assignment
from ..infra.topology import PowerNode, PowerTopology

#: Capping order: who gets throttled first when a node is over budget.
DEFAULT_PRIORITY: Tuple[str, ...] = (
    ServiceKind.BATCH,
    ServiceKind.OTHER,
    ServiceKind.STORAGE,
    ServiceKind.LATENCY_CRITICAL,
)


@dataclass(frozen=True)
class CappingPolicy:
    """How much of each class's *dynamic* power capping may shed.

    Floors are fractions of the instantaneous draw that must be preserved:
    batch can be throttled deeply, latency-critical only lightly (capping
    LC is exactly the QoS damage operators dread).
    """

    floors: Mapping[str, float] = field(
        default_factory=lambda: {
            ServiceKind.BATCH: 0.4,
            ServiceKind.OTHER: 0.5,
            ServiceKind.STORAGE: 0.7,
            ServiceKind.LATENCY_CRITICAL: 0.7,
        }
    )
    priority: Tuple[str, ...] = DEFAULT_PRIORITY

    def __post_init__(self) -> None:
        for kind, floor in self.floors.items():
            if not 0.0 <= floor <= 1.0:
                raise ValueError(f"floor for {kind} must be in [0, 1], got {floor}")
        if set(self.priority) != set(ServiceKind.ALL):
            raise ValueError("priority must order every service kind exactly once")

    def floor_for(self, kind: str) -> float:
        return self.floors.get(kind, 1.0)


@dataclass
class NodeCappingStats:
    """Per-node capping outcome over the simulated span."""

    node_name: str
    event_steps: int
    shed_by_kind: Dict[str, float]
    residual_overload_steps: int

    @property
    def total_shed(self) -> float:
        return sum(self.shed_by_kind.values())


@dataclass
class CappingReport:
    """Fleet-wide capping outcome.

    ``shed_by_kind`` is in watt-samples; multiply by the grid step for
    watt-minutes.  ``lc_energy_shed`` is the QoS-damage headline.
    """

    step_minutes: int
    nodes: Dict[str, NodeCappingStats]
    shed_by_kind: Dict[str, float]
    total_event_steps: int
    residual_overload_steps: int

    @property
    def lc_energy_shed(self) -> float:
        """Latency-critical energy shed, in watt-minutes."""
        return self.shed_by_kind.get(ServiceKind.LATENCY_CRITICAL, 0.0) * self.step_minutes

    @property
    def batch_energy_shed(self) -> float:
        return self.shed_by_kind.get(ServiceKind.BATCH, 0.0) * self.step_minutes

    @property
    def total_energy_shed(self) -> float:
        return sum(self.shed_by_kind.values()) * self.step_minutes

    def capped_nodes(self) -> List[str]:
        return [name for name, stats in self.nodes.items() if stats.event_steps > 0]


class CappingSimulator:
    """Simulates hierarchical capping of one placement against node budgets.

    Every node of the topology must carry a budget.  The simulator is
    side-effect free: the input traces are not modified.
    """

    def __init__(
        self,
        topology: PowerTopology,
        assignment: Assignment,
        traces: TraceSet,
        kinds: Mapping[str, str],
        *,
        policy: Optional[CappingPolicy] = None,
    ) -> None:
        missing_budget = [n.name for n in topology.nodes() if n.budget_watts is None]
        if missing_budget:
            raise ValueError(f"nodes without budgets: {missing_budget[:5]}")
        unknown_kind = [
            i for i in assignment.instance_ids() if kinds.get(i) not in ServiceKind.ALL
        ]
        if unknown_kind:
            raise ValueError(f"instances without a valid kind: {unknown_kind[:5]}")
        self.topology = topology
        self.assignment = assignment
        self.traces = traces
        self.kinds = dict(kinds)
        self.policy = policy if policy is not None else CappingPolicy()

    # ------------------------------------------------------------------
    def run(self) -> CappingReport:
        """Run the capping loop over the whole trace span."""
        report, _ = self._run()
        return report

    def run_capped(self) -> Tuple[CappingReport, TraceSet]:
        """Like :meth:`run`, but also return the post-capping traces.

        The second element holds every placed instance's draw *after* the
        caps bit — what the servers actually drew.  Used by the emergency
        fallback of :mod:`repro.engine` to rebuild a power-safe scenario
        from the capped components.
        """
        report, values = self._run()
        return report, TraceSet(
            self.traces.grid, self.assignment.instance_ids(), values
        )

    def _run(self) -> Tuple[CappingReport, np.ndarray]:
        # Working copy of every placed instance's draw, mutated as caps bite.
        ids = self.assignment.instance_ids()
        index_of = {instance_id: row for row, instance_id in enumerate(ids)}
        values = np.vstack([self.traces.row(i) for i in ids]).copy()

        members_under: Dict[str, List[int]] = {}
        for node in self.topology.nodes():
            members_under[node.name] = [
                index_of[i] for i in self.assignment.instances_under(node.name)
            ]

        node_stats: Dict[str, NodeCappingStats] = {}
        shed_totals: Dict[str, float] = {kind: 0.0 for kind in ServiceKind.ALL}
        residual_total = 0

        # Bottom-up: cap at the leaves first (that is where breakers live
        # closest to servers), then resolve what is left at each ancestor.
        for node in self._postorder(self.topology.root):
            rows = members_under[node.name]
            if not rows:
                node_stats[node.name] = NodeCappingStats(node.name, 0, {}, 0)
                continue
            aggregate = values[rows].sum(axis=0)
            excess = np.maximum(aggregate - node.budget_watts, 0.0)
            events = int(np.count_nonzero(excess > 1e-9))
            shed_by_kind: Dict[str, float] = {}
            if events:
                remaining = excess.copy()
                for kind in self.policy.priority:
                    kind_rows = [r for r in rows if self.kinds[ids[r]] == kind]
                    if not kind_rows:
                        continue
                    shed = self._shed_class(values, kind_rows, remaining, kind)
                    if shed > 0:
                        shed_by_kind[kind] = shed
                        shed_totals[kind] += shed
                    if not np.any(remaining > 1e-9):
                        break
                residual = int(np.count_nonzero(remaining > 1e-9))
            else:
                residual = 0
            residual_total += residual
            node_stats[node.name] = NodeCappingStats(
                node_name=node.name,
                event_steps=events,
                shed_by_kind=shed_by_kind,
                residual_overload_steps=residual,
            )
            if events:
                obs_events.emit(
                    obs_events.CAPPING,
                    severity="warning" if residual == 0 else "critical",
                    source="infra.capping",
                    node=node.name,
                    event_steps=events,
                    shed_by_kind=dict(shed_by_kind),
                    residual_overload_steps=residual,
                )

        report = CappingReport(
            step_minutes=self.traces.grid.step_minutes,
            nodes=node_stats,
            shed_by_kind={k: v for k, v in shed_totals.items() if v > 0},
            total_event_steps=sum(s.event_steps for s in node_stats.values()),
            residual_overload_steps=residual_total,
        )
        return report, values

    # ------------------------------------------------------------------
    def _shed_class(
        self,
        values: np.ndarray,
        kind_rows: Sequence[int],
        remaining: np.ndarray,
        kind: str,
    ) -> float:
        """Shed as much of ``remaining`` as the class floor allows.

        Members of the class are scaled uniformly (a proportional cap, the
        common Dynamo allocation).  Mutates ``values`` and ``remaining``;
        returns the watt-samples shed.
        """
        class_power = values[kind_rows].sum(axis=0)
        reducible = class_power * (1.0 - self.policy.floor_for(kind))
        shed = np.minimum(remaining, reducible)
        active = shed > 1e-12
        if not np.any(active):
            return 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                active & (class_power > 0), 1.0 - shed / np.maximum(class_power, 1e-12), 1.0
            )
        values[kind_rows] *= scale[np.newaxis, :]
        remaining -= shed
        return float(shed.sum())

    @staticmethod
    def _postorder(node: PowerNode):
        for child in node.children:
            yield from CappingSimulator._postorder(child)
        yield node


def compare_capping(
    reports: Mapping[str, CappingReport]
) -> List[Tuple[str, float, float, int]]:
    """Rank placements by LC energy shed (the QoS-damage headline).

    Returns ``(label, lc_shed_watt_minutes, total_shed, event_steps)``
    sorted best (least LC shed) first.
    """
    rows = [
        (
            label,
            report.lc_energy_shed,
            report.total_energy_shed,
            report.total_event_steps,
        )
        for label, report in reports.items()
    ]
    return sorted(rows, key=lambda row: row[1])
