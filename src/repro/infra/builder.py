"""Topology builders: construct OCP-style power trees from fan-out specs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .topology import Level, PowerNode, PowerTopology


@dataclass(frozen=True)
class LevelSpec:
    """Fan-out description for one level of the tree.

    ``fanout`` children of level ``level`` are created under every node of
    the previous level.
    """

    level: str
    fanout: int

    def __post_init__(self) -> None:
        if self.fanout <= 0:
            raise ValueError(f"fanout must be positive, got {self.fanout}")


@dataclass(frozen=True)
class TopologySpec:
    """Complete description of a regular power tree.

    Attributes
    ----------
    name:
        Name of the root (datacenter) node.
    levels:
        Fan-outs below the root, root-to-leaf order.
    leaf_capacity:
        Instance capacity of each leaf node (servers per leaf).
    """

    name: str
    levels: Tuple[LevelSpec, ...]
    leaf_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("topology needs at least one level below the root")
        seen = {Level.DATACENTER}
        for spec in self.levels:
            if spec.level in seen:
                raise ValueError(f"duplicate level {spec.level!r}")
            seen.add(spec.level)

    def n_leaves(self) -> int:
        count = 1
        for spec in self.levels:
            count *= spec.fanout
        return count

    def total_capacity(self) -> Optional[int]:
        if self.leaf_capacity is None:
            return None
        return self.n_leaves() * self.leaf_capacity


def build_topology(spec: TopologySpec) -> PowerTopology:
    """Materialise a :class:`PowerTopology` from a :class:`TopologySpec`.

    Node names are hierarchical (``dc1/suite0/msb1/...``) so that a name
    alone identifies the node's position.
    """
    root = PowerNode(spec.name, Level.DATACENTER)
    frontier = [root]
    for depth, level_spec in enumerate(spec.levels):
        is_leaf_level = depth == len(spec.levels) - 1
        next_frontier: List[PowerNode] = []
        for parent in frontier:
            for index in range(level_spec.fanout):
                child = PowerNode(
                    f"{parent.name}/{level_spec.level}{index}",
                    level_spec.level,
                    capacity=spec.leaf_capacity if is_leaf_level else None,
                )
                parent.add_child(child)
                next_frontier.append(child)
        frontier = next_frontier
    return PowerTopology(root)


def ocp_spec(
    name: str,
    *,
    suites: int = 4,
    msbs_per_suite: int = 2,
    sbs_per_msb: int = 2,
    rpps_per_sb: int = 3,
    racks_per_rpp: int = 4,
    servers_per_rack: int = 30,
) -> TopologySpec:
    """The paper's Open-Compute-style four-level tree (Figure 2).

    Datacenter → suites → MSBs → SBs → RPPs → racks; servers live in racks.
    Defaults give a manageable experiment scale (a real Facebook DC has tens
    of thousands of servers; scale the fan-outs up for larger studies).
    """
    return TopologySpec(
        name=name,
        levels=(
            LevelSpec(Level.SUITE, suites),
            LevelSpec(Level.MSB, msbs_per_suite),
            LevelSpec(Level.SB, sbs_per_msb),
            LevelSpec(Level.RPP, rpps_per_sb),
            LevelSpec(Level.RACK, racks_per_rpp),
        ),
        leaf_capacity=servers_per_rack,
    )


def two_level_spec(name: str, leaves: int, leaf_capacity: int) -> TopologySpec:
    """The simplified two-level datacenter of Figures 1 and 3."""
    return TopologySpec(
        name=name,
        levels=(LevelSpec(Level.RPP, leaves),),
        leaf_capacity=leaf_capacity,
    )
