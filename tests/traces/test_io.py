"""Unit tests for trace and fleet persistence."""

import numpy as np
import pytest

from repro.traces import (
    PowerTrace,
    TimeGrid,
    TraceSet,
    export_csv,
    import_csv,
    load_fleet,
    load_trace_set,
    save_fleet,
    save_trace_set,
)


@pytest.fixture
def sample_set():
    grid = TimeGrid(0, 60, 24)
    return TraceSet.from_traces(
        {
            "a": PowerTrace(grid, np.linspace(0, 10, 24)),
            "b": PowerTrace.constant(grid, 5.5),
        }
    )


class TestTraceSetRoundTrip:
    def test_npz_roundtrip(self, sample_set, tmp_path):
        path = tmp_path / "traces.npz"
        save_trace_set(sample_set, path)
        loaded = load_trace_set(path)
        assert loaded.ids == sample_set.ids
        assert loaded.grid == sample_set.grid
        assert np.allclose(loaded.matrix, sample_set.matrix)

    def test_bad_version_rejected(self, sample_set, tmp_path):
        path = tmp_path / "traces.npz"
        save_trace_set(sample_set, path)
        data = dict(np.load(path, allow_pickle=True))
        data["version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_trace_set(path)


class TestCSV:
    def test_csv_roundtrip(self, sample_set, tmp_path):
        path = tmp_path / "traces.csv"
        export_csv(sample_set, path)
        loaded = import_csv(path)
        assert loaded.ids == sample_set.ids
        assert loaded.grid == sample_set.grid
        assert np.allclose(loaded.matrix, sample_set.matrix, atol=1e-4)

    def test_import_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n0,1\n")
        with pytest.raises(ValueError):
            import_csv(path)

    def test_import_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("minute,a\n")
        with pytest.raises(ValueError):
            import_csv(path)

    def test_single_row_needs_step(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("minute,a\n0,4.5\n")
        with pytest.raises(ValueError):
            import_csv(path)
        loaded = import_csv(path, step_minutes=10)
        assert loaded.grid.n_samples == 1


class TestFleetRoundTrip:
    def test_fleet_roundtrip(self, tiny_records, tmp_path):
        save_fleet(tiny_records, tmp_path / "fleet")
        loaded = load_fleet(tmp_path / "fleet")
        assert len(loaded) == len(tiny_records)
        original = {r.instance_id: r for r in tiny_records}
        for record in loaded:
            source = original[record.instance_id]
            assert record.service == source.service
            assert record.kind == source.kind
            assert record.training_trace == source.training_trace
            assert record.test_trace == source.test_trace

    def test_fleet_without_test_traces(self, synthesizer, tmp_path):
        from repro.traces import web_profile

        records = synthesizer.service_instances(web_profile(), 3, test_weeks=0)
        save_fleet(records, tmp_path / "fleet")
        loaded = load_fleet(tmp_path / "fleet")
        assert all(r.test_trace is None for r in loaded)
        assert not (tmp_path / "fleet" / "test.npz").exists()

    def test_empty_fleet_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_fleet([], tmp_path / "fleet")

    def test_mixed_test_presence_rejected(self, tiny_records, synthesizer, tmp_path):
        from repro.traces import web_profile

        no_test = synthesizer.service_instances(
            web_profile(), 1, id_prefix="extra", test_weeks=0
        )
        with pytest.raises(ValueError):
            save_fleet(list(tiny_records) + no_test, tmp_path / "fleet")
