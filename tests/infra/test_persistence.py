"""Unit tests for topology / assignment persistence."""

import pytest

from repro.infra import (
    Assignment,
    build_topology,
    load_assignment,
    load_topology,
    ocp_spec,
    save_assignment,
    save_topology,
    topology_from_dict,
    topology_to_dict,
    two_level_spec,
)


@pytest.fixture
def topo():
    t = build_topology(two_level_spec("dc", leaves=3, leaf_capacity=4))
    t.node("dc").budget_watts = 100.0
    t.node("dc/rpp0").budget_watts = 40.0
    return t


class TestTopologyRoundTrip:
    def test_dict_roundtrip(self, topo):
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert {n.name for n in rebuilt.nodes()} == {n.name for n in topo.nodes()}
        assert rebuilt.node("dc").budget_watts == 100.0
        assert rebuilt.node("dc/rpp0").budget_watts == 40.0
        assert rebuilt.node("dc/rpp1").budget_watts is None
        assert rebuilt.node("dc/rpp0").capacity == 4

    def test_file_roundtrip(self, topo, tmp_path):
        path = tmp_path / "topo.json"
        save_topology(topo, path)
        rebuilt = load_topology(path)
        assert rebuilt.describe() == topo.describe()

    def test_deep_tree(self, tmp_path):
        deep = build_topology(ocp_spec("big"))
        path = tmp_path / "deep.json"
        save_topology(deep, path)
        rebuilt = load_topology(path)
        assert len(rebuilt.leaves()) == len(deep.leaves())
        assert rebuilt.levels() == deep.levels()

    def test_bad_version(self, topo):
        payload = topology_to_dict(topo)
        payload["version"] = 99
        with pytest.raises(ValueError):
            topology_from_dict(payload)


class TestAssignmentRoundTrip:
    def test_roundtrip(self, topo, tmp_path):
        assignment = Assignment(topo, {"a": "dc/rpp0", "b": "dc/rpp2"})
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path)
        loaded = load_assignment(path)
        assert loaded.as_mapping() == assignment.as_mapping()

    def test_bind_to_live_topology(self, topo, tmp_path):
        assignment = Assignment(topo, {"a": "dc/rpp0"})
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path)
        loaded = load_assignment(path, topology=topo)
        assert loaded.topology is topo

    def test_bind_rejects_mismatched_topology(self, topo, tmp_path):
        assignment = Assignment(topo, {"a": "dc/rpp0"})
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path)
        other = build_topology(two_level_spec("other", leaves=2, leaf_capacity=4))
        with pytest.raises(ValueError):
            load_assignment(path, topology=other)

    def test_capacity_enforced_on_load(self, topo, tmp_path):
        import json

        assignment = Assignment(topo, {"a": "dc/rpp0"})
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path)
        payload = json.loads(path.read_text())
        payload["mapping"] = {f"i{k}": "dc/rpp0" for k in range(9)}
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_assignment(path)
