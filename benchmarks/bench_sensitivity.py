"""Sensitivity: what drives the size of the placement win?

The paper attributes the DC1 < DC2 < DC3 spread of Figure 10 to two fleet
properties (Sec. 5.2.1): instance-level heterogeneity and how balanced the
original placement already was.  This sweep varies exactly those two knobs
on a fixed service mix and measures the RPP-level reduction surface.

Findings (see EXPERIMENTS.md): the *original placement's mixing* dominates
— a fully service-grouped baseline leaves ~4x more to gain than a
half-mixed one.  Our random-jitter *heterogeneity* knob runs mildly in the
opposite direction from the paper's narrative: uncorrelated per-instance
jitter de-synchronises even the grouped baseline, shrinking the gap.  The
paper's "heterogeneity" is better read as exploitable cross-pattern
diversity, which in this substrate lives in the service mix, not the
jitter.
"""

import pytest

from repro.analysis.report import format_percent, format_table
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.datasets.facebook import DatacenterSpec, build_datacenter
from repro.datasets import dc3_spec
from repro.infra import Level, NodePowerView

HETEROGENEITIES = (0.5, 1.0, 1.5)
MIXINGS = (0.0, 0.3, 0.6)


def _reduction(heterogeneity: float, mixing: float) -> float:
    base = dc3_spec(n_instances=480)
    spec = DatacenterSpec(
        name=f"sweep-h{heterogeneity}-m{mixing}",
        composition=base.composition,
        heterogeneity=heterogeneity,
        baseline_mixing=mixing,
        topology=base.topology,
        n_instances=base.n_instances,
        seed=base.seed,
    )
    dc = build_datacenter(spec, weeks=3, step_minutes=10)
    placement = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(
        dc.records, dc.topology
    )
    test = dc.test_traces()
    before = NodePowerView(dc.topology, dc.baseline, test).sum_of_peaks(Level.RPP)
    after = NodePowerView(dc.topology, placement.assignment, test).sum_of_peaks(
        Level.RPP
    )
    return 1.0 - after / before


def _run():
    return {
        (h, m): _reduction(h, m) for h in HETEROGENEITIES for m in MIXINGS
    }


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_surface(benchmark, emit_report):
    surface = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [f"heterogeneity {h:.1f}"]
        + [format_percent(surface[(h, m)]) for m in MIXINGS]
        for h in HETEROGENEITIES
    ]
    emit_report(
        "sensitivity",
        format_table(
            ["(DC3 mix, 480 instances)"] + [f"mixing {m:.1f}" for m in MIXINGS],
            rows,
            title="RPP peak-reduction surface: heterogeneity x original-placement mixing",
        ),
    )

    # More pre-mixed baselines leave less to gain (rows decrease left->right)
    # — the knob that carries the DC1 < DC2 < DC3 calibration.
    for h in HETEROGENEITIES:
        assert surface[(h, 0.0)] >= surface[(h, 0.3)] >= surface[(h, 0.6)] - 0.005
    # The fully-grouped column dominates the half-mixed one by a wide margin.
    for h in HETEROGENEITIES:
        assert surface[(h, 0.0)] > 2 * surface[(h, 0.6)]