"""Property-based tests for remapping and monitoring invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import FragmentationMonitor, MonitorConfig
from repro.core import RemapConfig, RemappingEngine
from repro.infra import Assignment, Level, NodePowerView, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


@st.composite
def remap_scenes(draw):
    """A random fleet on a random 2-4 leaf topology, contiguously placed."""
    leaves = draw(st.integers(2, 4))
    per_leaf = draw(st.integers(2, 4))
    n = leaves * per_leaf
    matrix = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, 24),
            elements=st.floats(0.1, 100, allow_nan=False, allow_infinity=False),
        )
    )
    topo = build_topology(two_level_spec("r", leaves=leaves, leaf_capacity=per_leaf))
    ids = [f"i{k}" for k in range(n)]
    traces = TraceSet(GRID, ids, matrix)
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k // per_leaf] for k in range(n)}
    return topo, Assignment(topo, mapping), traces


class TestRemappingInvariants:
    @given(scene=remap_scenes(), max_swaps=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_preserves_fleet_and_capacity(self, scene, max_swaps):
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=max_swaps))
        result = engine.run(assignment, traces)
        # Same instances, nothing lost or duplicated.
        assert sorted(result.assignment.instance_ids()) == sorted(
            assignment.instance_ids()
        )
        # Capacity still honoured everywhere.
        for leaf in topo.leaves():
            assert (
                len(result.assignment.instances_on_leaf(leaf.name)) <= leaf.capacity
            )

    @given(scene=remap_scenes())
    @settings(max_examples=25, deadline=None)
    def test_swaps_preserve_per_leaf_counts(self, scene):
        """Swaps exchange instances 1:1: occupancies never change."""
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        result = engine.run(assignment, traces)
        assert result.assignment.occupancy() == assignment.occupancy()

    @given(scene=remap_scenes())
    @settings(max_examples=20, deadline=None)
    def test_total_power_invariant(self, scene):
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        result = engine.run(assignment, traces)
        before = NodePowerView(topo, assignment, traces).node_trace(topo.root.name)
        after = NodePowerView(topo, result.assignment, traces).node_trace(
            topo.root.name
        )
        assert np.allclose(before.values, after.values)


class TestMonitorInvariants:
    @given(scene=remap_scenes(), tolerance=st.floats(0.01, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_observing_calibration_traces_is_healthy(self, scene, tolerance):
        """Identical telemetry can never raise a sum-of-peaks advisory."""
        _, assignment, traces = scene
        monitor = FragmentationMonitor(
            assignment,
            MonitorConfig(
                level=Level.RPP,
                sum_of_peaks_tolerance=tolerance,
                min_asynchrony=1.0,
            ),
        )
        monitor.calibrate(traces)
        snapshot = monitor.observe("same", traces)
        assert snapshot.healthy
