"""Week-ahead power forecasting and predictability validation.

SmoothOperator's whole premise is that "user traffic has strong
day-of-the-week activity patterns" (Sec. 3.3/5.1): a placement derived from
the averaged training weeks must still be right on the *next* week.  This
module makes that assumption testable:

* :func:`seasonal_naive_forecast` — predict next week as the averaged
  training I-trace (exactly what the placement consumes);
* error metrics (MAPE, peak error, peak-time error);
* :func:`predictability_report` — fleet-level summary quantifying how
  forecastable the synthetic (or any) telemetry is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .grid import MINUTES_PER_HOUR
from .instance import InstanceRecord
from .series import PowerTrace


def seasonal_naive_forecast(record: InstanceRecord) -> PowerTrace:
    """Next-week forecast: the averaged training I-trace itself (Eq. 4).

    The strongest simple baseline for strongly weekly-periodic series, and
    precisely the signal the placer optimises against.
    """
    return PowerTrace(
        record.training_trace.grid, record.training_trace.values.copy()
    )


def _require_comparable(forecast: PowerTrace, actual: PowerTrace) -> None:
    """Forecast and actual must align sample-for-sample at the same
    time-of-week — they cover *different* weeks by construction, so only
    step, length, and weekly phase must agree."""
    from .grid import MINUTES_PER_WEEK

    if (
        forecast.grid.step_minutes != actual.grid.step_minutes
        or forecast.grid.n_samples != actual.grid.n_samples
        or (forecast.grid.start_minute - actual.grid.start_minute) % MINUTES_PER_WEEK
        != 0
    ):
        raise ValueError(
            f"forecast grid {forecast.grid} is not week-aligned with "
            f"actual grid {actual.grid}"
        )


def mape(forecast: PowerTrace, actual: PowerTrace) -> float:
    """Mean absolute percentage error, ignoring near-zero actuals."""
    _require_comparable(forecast, actual)
    denom = np.maximum(actual.values, 1e-9)
    mask = actual.values > 1e-6
    if not mask.any():
        return 0.0
    errors = np.abs(forecast.values - actual.values) / denom
    return float(errors[mask].mean())


def peak_error(forecast: PowerTrace, actual: PowerTrace) -> float:
    """Relative error of the forecast peak vs the realised peak.

    Positive = under-forecast (dangerous: the placement under-reserves);
    negative = over-forecast (wasteful).
    """
    _require_comparable(forecast, actual)
    actual_peak = actual.peak()
    if actual_peak == 0:
        return 0.0
    return (actual_peak - forecast.peak()) / actual_peak


def peak_time_error_minutes(forecast: PowerTrace, actual: PowerTrace) -> float:
    """Circular distance between forecast and realised peak time-of-day."""
    _require_comparable(forecast, actual)
    step = forecast.grid.step_minutes
    day = 24 * MINUTES_PER_HOUR
    f_minute = (forecast.peak_time_index() * step) % day
    a_minute = (actual.peak_time_index() * step) % day
    raw = abs(f_minute - a_minute)
    return float(min(raw, day - raw))


@dataclass
class PredictabilityReport:
    """Fleet-level forecast-quality summary (training weeks → test week)."""

    per_instance_mape: Dict[str, float]
    per_instance_peak_error: Dict[str, float]
    per_instance_peak_time_error: Dict[str, float]

    @property
    def mean_mape(self) -> float:
        return float(np.mean(list(self.per_instance_mape.values())))

    @property
    def mean_abs_peak_error(self) -> float:
        return float(np.mean(np.abs(list(self.per_instance_peak_error.values()))))

    @property
    def mean_peak_time_error_minutes(self) -> float:
        return float(np.mean(list(self.per_instance_peak_time_error.values())))

    def worst_instances(self, n: int = 5) -> List[str]:
        """The least predictable instances (highest MAPE) — placement risk."""
        ranked = sorted(
            self.per_instance_mape.items(), key=lambda item: -item[1]
        )
        return [instance_id for instance_id, _ in ranked[:n]]


def predictability_report(
    records: Sequence[InstanceRecord],
) -> PredictabilityReport:
    """Score the Eq.-4 forecast against every instance's held-out week."""
    mapes: Dict[str, float] = {}
    peak_errors: Dict[str, float] = {}
    time_errors: Dict[str, float] = {}
    for record in records:
        if record.test_trace is None:
            raise ValueError(f"{record.instance_id} has no held-out week")
        forecast = seasonal_naive_forecast(record)
        mapes[record.instance_id] = mape(forecast, record.test_trace)
        peak_errors[record.instance_id] = peak_error(forecast, record.test_trace)
        time_errors[record.instance_id] = peak_time_error_minutes(
            forecast, record.test_trace
        )
    return PredictabilityReport(
        per_instance_mape=mapes,
        per_instance_peak_error=peak_errors,
        per_instance_peak_time_error=time_errors,
    )
