"""Unified run report for the parallel data plane.

The capture/ship/merge layer (:mod:`repro.obs.remote`) makes worker
telemetry *visible*; this module makes it *legible*.  Every pooled stage —
``run_many`` batches and ``map_shards`` sharded stages alike — records one
:class:`StageRecord` into the process-global collector: which shards ran,
on which worker pids, how long each executed inside the worker versus how
long it spent queued, and how many attempts it took.  :func:`build_report`
turns the accumulated records into one JSON-ready document answering the
questions a fleet-scale benchmark run raises:

* **per-worker utilization** — of the stage's wall time, what fraction was
  each worker pid actually executing shards?  Idle workers mean shards too
  coarse or a pool too wide;
* **imbalance** — max over mean shard execution wall.  1.0 is a perfectly
  balanced stage; 2.0 means the slowest shard ran twice the average and the
  stage's critical path is one straggler;
* **slowest shards** — the stragglers themselves, by shard id and pid;
* **span topology** — when a tracer is live at build time, the merged
  cross-process span forest is embedded, so one document carries both the
  timing tree and the worker-level economics.

Reports are rendered by ``smoothoperator report`` and written
automatically when the ``REPRO_RUN_REPORT`` environment variable names a
path (one write per recorded stage — the file is always the report of the
run so far, so even a crashed run leaves a usable document).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from . import spans as _spans

__all__ = [
    "REPORT_ENV",
    "RunReportCollector",
    "StageRecord",
    "TaskStats",
    "build_report",
    "collector",
    "record_stage",
    "render_report",
    "report_path",
    "reset_report",
    "write_report",
]

#: When set, every recorded stage rewrites the run report to this path.
REPORT_ENV = "REPRO_RUN_REPORT"


def report_path() -> Optional[pathlib.Path]:
    """The auto-write destination from ``REPRO_RUN_REPORT``, if set."""
    raw = os.environ.get(REPORT_ENV, "").strip()
    return pathlib.Path(raw) if raw else None


@dataclass(frozen=True)
class TaskStats:
    """One pool task's economics, as observed by the coordinator.

    ``exec_s``/``cpu_s`` come from the worker's own root span (measured
    inside the worker, so cross-process clock skew cannot touch them);
    ``roundtrip_s`` is coordinator-side submit-to-result wall; ``queue_s``
    is their difference clamped at zero — time the task spent queued,
    pickled, and in transit rather than executing.
    """

    shard_id: int
    worker_pid: int
    attempt: int = 1
    exec_s: float = 0.0
    cpu_s: float = 0.0
    roundtrip_s: float = 0.0
    queue_s: float = 0.0
    ok: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "worker_pid": self.worker_pid,
            "attempt": self.attempt,
            "exec_s": self.exec_s,
            "cpu_s": self.cpu_s,
            "roundtrip_s": self.roundtrip_s,
            "queue_s": self.queue_s,
            "ok": self.ok,
        }


@dataclass
class StageRecord:
    """One pooled stage: a ``map_shards`` call or a ``run_many`` batch."""

    label: str
    workers: int
    wall_s: float
    generation: Optional[int] = None
    tasks: List[TaskStats] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Derived stage economics (imbalance, utilization, stragglers)."""
        tasks = sorted(self.tasks, key=lambda t: (t.shard_id, t.attempt))
        execs = [t.exec_s for t in tasks if t.ok]
        mean_exec = sum(execs) / len(execs) if execs else 0.0
        max_exec = max(execs) if execs else 0.0
        by_worker: Dict[int, Dict[str, float]] = {}
        for task in tasks:
            row = by_worker.setdefault(
                task.worker_pid, {"tasks": 0, "busy_s": 0.0, "cpu_s": 0.0}
            )
            row["tasks"] += 1
            row["busy_s"] += task.exec_s
            row["cpu_s"] += task.cpu_s
        workers = {
            str(pid): {
                "tasks": int(row["tasks"]),
                "busy_s": row["busy_s"],
                "cpu_s": row["cpu_s"],
                "utilization": (row["busy_s"] / self.wall_s) if self.wall_s > 0 else 0.0,
            }
            for pid, row in sorted(by_worker.items())
        }
        slowest = [
            {"shard_id": t.shard_id, "worker_pid": t.worker_pid, "exec_s": t.exec_s}
            for t in sorted(tasks, key=lambda t: (-t.exec_s, t.shard_id))[:5]
        ]
        payload: Dict[str, object] = {
            "label": self.label,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "tasks": len(tasks),
            "retries": sum(1 for t in tasks if t.attempt > 1),
            "failures": sum(1 for t in tasks if not t.ok),
            "mean_exec_s": mean_exec,
            "max_exec_s": max_exec,
            "imbalance": (max_exec / mean_exec) if mean_exec > 0 else 1.0,
            "mean_queue_s": (
                sum(t.queue_s for t in tasks) / len(tasks) if tasks else 0.0
            ),
            "per_worker": workers,
            "slowest_shards": slowest,
            "task_stats": [t.to_dict() for t in tasks],
        }
        if self.generation is not None:
            payload["pool_generation"] = self.generation
        return payload


class RunReportCollector:
    """Accumulates stage records for one process (or one test)."""

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: List[StageRecord] = []

    # ------------------------------------------------------------------
    def record_stage(
        self,
        label: str,
        *,
        workers: int,
        wall_s: float,
        tasks: Sequence[TaskStats] = (),
        generation: Optional[int] = None,
    ) -> StageRecord:
        """Record one pooled stage (and auto-write when the env asks)."""
        record = StageRecord(
            label=label,
            workers=workers,
            wall_s=wall_s,
            generation=generation,
            tasks=list(tasks),
        )
        self.stages.append(record)
        destination = report_path()
        if destination is not None:
            try:
                write_report(destination, collector=self)
            except OSError:  # pragma: no cover - unwritable autowrite path
                pass
        return record

    def reset(self) -> None:
        self.stages.clear()

    # ------------------------------------------------------------------
    def build(self, *, include_spans: bool = True) -> Dict[str, object]:
        """The JSON-ready run report for everything recorded so far."""
        stages = [record.summary() for record in self.stages]
        busy: Dict[str, float] = {}
        tasks_total = 0
        for stage in stages:
            tasks_total += int(stage["tasks"])  # type: ignore[arg-type]
            for pid, row in stage["per_worker"].items():  # type: ignore[union-attr]
                busy[pid] = busy.get(pid, 0.0) + float(row["busy_s"])
        wall_total = sum(float(stage["wall_s"]) for stage in stages)
        report: Dict[str, object] = {
            "schema": "repro.run_report/v1",
            "stages": stages,
            "totals": {
                "stages": len(stages),
                "tasks": tasks_total,
                "wall_s": wall_total,
                "worker_pids": sorted(busy, key=int),
                "per_worker_utilization": {
                    pid: (busy[pid] / wall_total) if wall_total > 0 else 0.0
                    for pid in sorted(busy, key=int)
                },
            },
        }
        if include_spans:
            tracer = _spans.get_tracer()
            if tracer is not None:
                report["spans"] = [root.to_dict() for root in tracer.roots]
        return report


# ----------------------------------------------------------------------
# the process-global collector and module-level API
# ----------------------------------------------------------------------
_COLLECTOR = RunReportCollector()


def collector() -> RunReportCollector:
    """The process-global collector pooled stages record into."""
    return _COLLECTOR


def record_stage(
    label: str,
    *,
    workers: int,
    wall_s: float,
    tasks: Sequence[TaskStats] = (),
    generation: Optional[int] = None,
) -> StageRecord:
    """Record a stage into the process-global collector."""
    return _COLLECTOR.record_stage(
        label, workers=workers, wall_s=wall_s, tasks=tasks, generation=generation
    )


def reset_report() -> None:
    """Forget every recorded stage (tests and benchmark repetitions)."""
    _COLLECTOR.reset()


def build_report(*, include_spans: bool = True) -> Dict[str, object]:
    """Build the run report from the process-global collector."""
    return _COLLECTOR.build(include_spans=include_spans)


def write_report(
    path: Union[str, pathlib.Path],
    *,
    collector: Optional[RunReportCollector] = None,
    include_spans: bool = True,
) -> pathlib.Path:
    """Write the run report as JSON to ``path`` and return the path."""
    source = collector if collector is not None else _COLLECTOR
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(source.build(include_spans=include_spans), indent=2, sort_keys=True)
        + "\n"
    )
    return path


# ----------------------------------------------------------------------
# rendering (the ``smoothoperator report`` command)
# ----------------------------------------------------------------------
def render_report(report: Dict[str, object]) -> str:
    """A terminal-friendly rendering of a run report document."""
    lines: List[str] = []
    totals = report.get("totals", {})
    lines.append(
        "run report: {stages} stage(s), {tasks} task(s), {wall:.3f}s pooled wall".format(
            stages=totals.get("stages", 0),
            tasks=totals.get("tasks", 0),
            wall=float(totals.get("wall_s", 0.0)),
        )
    )
    for stage in report.get("stages", ()):  # type: ignore[union-attr]
        lines.append(
            "  {label}: {tasks} task(s) on {workers} worker(s), "
            "{wall:.3f}s wall, imbalance {imbalance:.2f}x, "
            "mean queue {queue:.1f}ms".format(
                label=stage["label"],
                tasks=stage["tasks"],
                workers=stage["workers"],
                wall=float(stage["wall_s"]),
                imbalance=float(stage["imbalance"]),
                queue=float(stage["mean_queue_s"]) * 1e3,
            )
        )
        retries = int(stage.get("retries", 0))
        failures = int(stage.get("failures", 0))
        if retries or failures:
            lines.append(f"    retries={retries} failures={failures}")
        for pid, row in stage.get("per_worker", {}).items():  # type: ignore[union-attr]
            lines.append(
                "    pid {pid}: {tasks} task(s), busy {busy:.3f}s "
                "({util:.0%} of stage wall)".format(
                    pid=pid,
                    tasks=row["tasks"],
                    busy=float(row["busy_s"]),
                    util=float(row["utilization"]),
                )
            )
        slowest = stage.get("slowest_shards", ())
        if slowest:
            worst = ", ".join(
                "#{shard}@{pid} {exec_s:.1f}ms".format(
                    shard=entry["shard_id"],
                    pid=entry["worker_pid"],
                    exec_s=float(entry["exec_s"]) * 1e3,
                )
                for entry in slowest
            )
            lines.append(f"    slowest: {worst}")
    per_worker = totals.get("per_worker_utilization", {})
    if per_worker:
        lines.append("  overall worker utilization:")
        for pid, utilization in per_worker.items():  # type: ignore[union-attr]
            lines.append(f"    pid {pid}: {float(utilization):.0%}")
    return "\n".join(lines)
