"""Worker telemetry across the pool boundary: capture, failure, kill switch.

Pins the cross-process observability contract end to end:

* a sharded job on a real pool yields ONE merged span tree — per-shard
  child spans under the dispatching span, tagged with worker pid and
  shard id — plus merged counters/histograms and pool health metrics;
* a raising task still ships its telemetry (span error + ``task_error``
  event reach the coordinator's event log);
* a worker dying mid-task loses that attempt's bundle, but the *retried*
  task's bundle arrives with the retry — telemetry is only ever lost with
  the process that held it;
* ``REPRO_OBS_CAPTURE=0`` disables capture entirely: tasks run bare and
  the coordinator registry receives zero entries;
* merged metric totals are a function of the work, not of completion
  order or worker count.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.engine.parallel import RunFailure, WorkerPool, run_many
from repro.engine.sharedmem import SharedMatrix, attach_rows, shard_ranges
from repro.obs import events as obs_events
from repro.obs import export as obs_export


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    yield
    obs.reset_metrics()
    obs.reset_report()


# ----------------------------------------------------------------------
# module-level callables (must pickle into fork workers)
# ----------------------------------------------------------------------
def traced_shard_sum(handle, start, stop):
    """Sums a row block while exercising every telemetry surface."""
    obs.count("shard.rows", stop - start)
    obs.observe("shard.rows_hist", stop - start)
    obs.emit("advisory", source="shard", start=start)
    with obs.span("shard.inner"):
        return float(attach_rows(handle, start, stop).sum())


def emit_then_raise(handle, start, stop):
    obs.emit("advisory", source="doomed", start=start)
    raise ValueError(f"shard [{start}, {stop}) is doomed")


class DieOnceThenSum:
    """Kills its worker on first run (flag file), sums the shard after."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def __call__(self, handle, start, stop):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as f:
                f.write("died")
            os._exit(17)
        return traced_shard_sum(handle, start, stop)


def spec_raises():
    obs.emit("advisory", source="spec", note="about to fail")
    raise ValueError("deliberate failure")


def forty_two():
    return 42


# ----------------------------------------------------------------------
# the merged picture on a healthy pool
# ----------------------------------------------------------------------
def test_sharded_stage_produces_one_merged_tree_and_registry():
    matrix = np.arange(400, dtype=np.float64).reshape(100, 4)
    ranges = shard_ranges(100, 4)
    with obs.tracing() as tracer, obs_events.recording() as log:
        with obs.span("stage"):
            with WorkerPool(2) as pool:
                with SharedMatrix.create(matrix) as shared:
                    tasks = [(shared.handle, a, b) for a, b in ranges]
                    results = pool.map_shards(
                        traced_shard_sum, tasks, label="score.shard"
                    )
    # Results are exactly what an in-process loop would produce.
    assert results == [float(matrix[a:b].sum()) for a, b in ranges]

    # One tree: the per-shard spans hang under the dispatching span, in
    # shard order, each tagged with shard id and a real worker pid.
    [stage] = tracer.roots
    shard_spans = [c for c in stage.children if c.name == "score.shard"]
    assert [s.meta["shard"] for s in shard_spans] == [0, 1, 2, 3]
    assert all(s.meta["pid"] != os.getpid() for s in shard_spans)
    assert all(s.wall_s > 0 for s in shard_spans)
    assert [c.name for s in shard_spans for c in s.children] == ["shard.inner"] * 4

    # Worker counters merged into the coordinator registry, exactly.
    snapshot = obs.snapshot_metrics()
    assert snapshot["counters"]["shard.rows"] == 100.0
    assert snapshot["histograms"]["shard.rows_hist"]["count"] == 4

    # Pool health metrics recorded coordinator-side.
    assert snapshot["counters"]["pool.tasks_dispatched"] == 4.0
    assert snapshot["counters"]["pool.tasks_completed"] == 4.0
    assert snapshot["histograms"]["pool.task_exec_s"]["count"] == 4
    assert snapshot["histograms"]["pool.task_queue_s"]["count"] == 4
    assert snapshot["gauges"]["pool.workers"] == 2.0

    # Worker events landed in the coordinator log, remapped and tagged.
    advisories = log.by_kind("advisory")
    assert sorted(e.fields["start"] for e in advisories) == [a for a, _ in ranges]
    merged_ids = {s.span_id for s in shard_spans}
    assert all(e.span_id in merged_ids for e in advisories)
    assert all(e.fields["worker_pid"] != os.getpid() for e in advisories)

    # The run report saw the stage.
    report = obs.build_report()
    [stage_summary] = report["stages"]
    assert stage_summary["label"] == "score.shard"
    assert stage_summary["tasks"] == 4
    assert stage_summary["imbalance"] >= 1.0
    assert len(report["totals"]["per_worker_utilization"]) >= 1


def test_pool_health_metrics_reach_prometheus_export():
    matrix = np.ones((20, 3))
    with WorkerPool(2) as pool:
        with SharedMatrix.create(matrix) as shared:
            tasks = [(shared.handle, a, b) for a, b in shard_ranges(20, 2)]
            pool.map_shards(traced_shard_sum, tasks, label="score.shard")
    text = obs_export.prometheus_text(obs.global_registry())
    assert "repro_pool_tasks_completed_total 2.0" in text
    assert "repro_pool_task_exec_s_count 2.0" in text
    assert "repro_shm_segments_live 0.0" in text


def test_merged_totals_independent_of_worker_count():
    """The merged registry is a function of the work done, not of how many
    workers did it (chunk counters aside, which this task does not use)."""
    matrix = np.arange(240, dtype=np.float64).reshape(60, 4)

    def run(workers, shards):
        obs.reset_metrics()
        with WorkerPool(workers) as pool:
            with SharedMatrix.create(matrix) as shared:
                tasks = [
                    (shared.handle, a, b) for a, b in shard_ranges(60, shards)
                ]
                results = pool.map_shards(traced_shard_sum, tasks)
        counters = dict(obs.snapshot_metrics()["counters"])
        hist = obs.global_registry().histogram("shard.rows_hist")
        return results, counters["shard.rows"], hist.count, hist.total

    results_2, rows_2, count_2, total_2 = run(2, 4)
    results_3, rows_3, count_3, total_3 = run(3, 4)
    assert results_2 == results_3
    assert rows_2 == rows_3 == 60.0
    assert count_2 == count_3 == 4
    assert total_2 == total_3 == 60.0


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------
def test_raising_task_ships_its_events_and_span_error():
    matrix = np.ones((10, 2))
    with obs.tracing() as tracer, obs_events.recording() as log:
        with obs.span("stage"):
            with WorkerPool(2) as pool:
                with SharedMatrix.create(matrix) as shared:
                    tasks = [(shared.handle, a, b) for a, b in shard_ranges(10, 2)]
                    with pytest.raises(ValueError, match="doomed"):
                        pool.map_shards(
                            emit_then_raise, tasks, label="doomed.shard", max_attempts=1
                        )
    # Both shards' pre-failure events AND task_error events arrived.
    assert len(log.by_kind("advisory")) == 2
    task_errors = log.by_kind(obs_events.TASK_ERROR)
    assert len(task_errors) == 2
    assert all(e.fields["error_type"] == "ValueError" for e in task_errors)
    # The failed shards' spans are in the tree, marked with the error.
    [stage] = tracer.roots
    doomed = [c for c in stage.children if c.name == "doomed.shard"]
    assert len(doomed) == 2
    assert all("ValueError" in s.meta["error"] for s in doomed)
    assert obs.counter_value("pool.tasks_failed") == 2.0


def test_worker_death_does_not_lose_the_retried_tasks_bundle(tmp_path):
    """The attempt that died with its worker ships nothing — but the retry
    runs to completion and its bundle must arrive intact."""
    matrix = np.arange(40, dtype=np.float64).reshape(10, 4)
    task = DieOnceThenSum(tmp_path / "died.flag")
    ranges = shard_ranges(10, 2)
    with obs.tracing() as tracer, obs_events.recording() as log:
        with obs.span("stage"):
            with WorkerPool(2) as pool:
                with SharedMatrix.create(matrix) as shared:
                    tasks = [(shared.handle, a, b) for a, b in ranges]
                    results = pool.map_shards(task, tasks, label="fragile.shard")
    assert results == [float(matrix[a:b].sum()) for a, b in ranges]
    # Every shard's successful attempt shipped: merged counters cover the
    # full matrix and every shard span is present.
    assert obs.counter_value("shard.rows") == 10.0
    [stage] = tracer.roots
    shard_spans = [c for c in stage.children if c.name == "fragile.shard"]
    assert sorted(s.meta["shard"] for s in shard_spans) == [0, 1]
    # The death was observed as pool health.
    assert obs.counter_value("pool.worker_deaths") >= 1.0
    assert obs.counter_value("pool.rebuilds") >= 1.0
    assert obs.counter_value("pool.tasks_retried") >= 1.0
    assert len(log.by_kind("advisory")) == 2


def test_run_many_failure_keeps_original_error_type_under_capture():
    results = run_many(
        [spec_raises, spec_raises], workers=2, max_attempts=1, retry_backoff_s=0
    )
    assert all(isinstance(r, RunFailure) for r in results)
    assert all(r.error_type == "ValueError" for r in results)
    assert all("deliberate failure" in r.error for r in results)


def test_run_many_batch_lands_in_run_report():
    run_many([forty_two, forty_two, forty_two], workers=2)
    report = obs.build_report()
    labels = [stage["label"] for stage in report["stages"]]
    assert labels == ["run.many"]
    assert report["stages"][0]["tasks"] == 3


# ----------------------------------------------------------------------
# the kill switch
# ----------------------------------------------------------------------
def test_capture_disabled_adds_zero_registry_entries(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_CAPTURE", "0")
    matrix = np.arange(40, dtype=np.float64).reshape(10, 4)
    ranges = shard_ranges(10, 2)
    with obs.tracing() as tracer:
        with WorkerPool(2) as pool:
            with SharedMatrix.create(matrix) as shared:
                tasks = [(shared.handle, a, b) for a, b in ranges]
                results = pool.map_shards(traced_shard_sum, tasks)
    assert results == [float(matrix[a:b].sum()) for a, b in ranges]
    snapshot = obs.snapshot_metrics()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}
    assert tracer.roots == []
    assert obs.build_report()["stages"] == []


def test_capture_disabled_run_many_still_reports_failures(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_CAPTURE", "0")
    results = run_many(
        [spec_raises, spec_raises], workers=2, max_attempts=1, retry_backoff_s=0
    )
    assert all(isinstance(r, RunFailure) for r in results)
    assert all(r.error_type == "ValueError" for r in results)
