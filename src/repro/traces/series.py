"""Power traces: the time-series vectors of Sec. 3.3.

A :class:`PowerTrace` is a sampled power signal on a :class:`TimeGrid`.  The
paper treats traces as plain vectors ("since power traces are simply
vectors, vector arithmetic can be directly applied"), so this class supports
addition, scalar scaling, peaks, percentiles, and the slack metrics of
Sec. 2.2 (Eq. 1–2).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .grid import TimeGrid

Number = Union[int, float]

#: Member traces materialised per stacked block by :meth:`PowerTrace.aggregate`
#: — bounds peak memory at ``block_rows × n_samples`` floats regardless of
#: fleet size.
AGGREGATE_BLOCK_ROWS = 1024


class PowerTrace:
    """A power time series on a uniform sampling grid.

    Values are watts (or any consistent power unit — the paper normalises,
    and so do the experiments).  Negative readings are rejected: a power
    sensor never reports negative draw.
    """

    __slots__ = ("grid", "values")

    def __init__(self, grid: TimeGrid, values: Iterable[Number]) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError(f"trace values must be 1-D, got shape {array.shape}")
        if array.shape[0] != grid.n_samples:
            raise ValueError(
                f"trace has {array.shape[0]} samples but grid expects {grid.n_samples}"
            )
        if not np.all(np.isfinite(array)):
            raise ValueError("trace values must be finite")
        if np.any(array < 0):
            raise ValueError("power readings cannot be negative")
        self.grid = grid
        self.values = array

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, grid: TimeGrid, level: Number) -> "PowerTrace":
        """A flat trace at ``level`` watts."""
        return cls(grid, np.full(grid.n_samples, float(level)))

    @classmethod
    def zeros(cls, grid: TimeGrid) -> "PowerTrace":
        return cls(grid, np.zeros(grid.n_samples))

    @classmethod
    def aggregate(
        cls,
        traces: Sequence["PowerTrace"],
        *,
        exact: bool = True,
        block_rows: int = AGGREGATE_BLOCK_ROWS,
    ) -> "PowerTrace":
        """Element-wise sum of ``traces`` (the aggregate power at a node).

        Accumulation is blocked — at most ``block_rows`` member traces are
        materialised as one stack at a time — so a fleet-scale aggregate
        never allocates the full ``(n, T)`` tensor.  ``exact=True`` (the
        default) adds rows in sequence in float64, bit-identical to the
        historical implementation; ``exact=False`` is the fleet-scale fast
        path, reducing each block in float32 before accumulating into a
        float64 running total — half the memory traffic, with per-sample
        error bounded by float32 rounding of a block.
        """
        if not traces:
            raise ValueError("cannot aggregate an empty set of traces")
        if block_rows < 1:
            raise ValueError("block_rows must be positive")
        grid = traces[0].grid
        for trace in traces:
            grid.require_same(trace.grid)
        total = np.zeros(grid.n_samples)
        if exact:
            # Sequential row adds: identical order (hence identical floats)
            # to the single stacked axis-0 reduce this replaces.
            for trace in traces:
                total += trace.values
        else:
            for start in range(0, len(traces), block_rows):
                block = np.stack(
                    [trace.values for trace in traces[start : start + block_rows]]
                ).astype(np.float32, copy=False)
                total += block.sum(axis=0, dtype=np.float32)
        return cls(grid, total)

    # ------------------------------------------------------------------
    # vector arithmetic (Sec. 3.3: traces are vectors)
    # ------------------------------------------------------------------
    def __add__(self, other: "PowerTrace") -> "PowerTrace":
        if not isinstance(other, PowerTrace):
            return NotImplemented
        self.grid.require_same(other.grid)
        return PowerTrace(self.grid, self.values + other.values)

    def __sub__(self, other: "PowerTrace") -> "PowerTrace":
        if not isinstance(other, PowerTrace):
            return NotImplemented
        self.grid.require_same(other.grid)
        result = self.values - other.values
        return PowerTrace(self.grid, np.maximum(result, 0.0))

    def __mul__(self, factor: Number) -> "PowerTrace":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise ValueError("cannot scale a power trace by a negative factor")
        return PowerTrace(self.grid, self.values * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "PowerTrace":
        if not isinstance(divisor, (int, float)):
            return NotImplemented
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        return PowerTrace(self.grid, self.values / float(divisor))

    def __len__(self) -> int:
        return self.grid.n_samples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PowerTrace):
            return NotImplemented
        return self.grid == other.grid and np.array_equal(self.values, other.values)

    def __hash__(self) -> None:  # traces are mutable-ish containers
        raise TypeError("PowerTrace is unhashable")

    def __repr__(self) -> str:
        return (
            f"PowerTrace(n={self.grid.n_samples}, step={self.grid.step_minutes}m, "
            f"peak={self.peak():.3f}, mean={self.mean():.3f})"
        )

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    def peak(self) -> float:
        """Maximum instantaneous power — the provisioning-relevant number."""
        return float(self.values.max())

    def valley(self) -> float:
        return float(self.values.min())

    def mean(self) -> float:
        return float(self.values.mean())

    def peak_time_index(self) -> int:
        """Sample index at which the peak occurs (first occurrence)."""
        return int(self.values.argmax())

    def percentile(self, q: Number) -> float:
        """The ``q``-th percentile power reading (used by StatProf, Sec. 5.2.1)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.values, q))

    def peak_to_mean(self) -> float:
        """Peak-to-average ratio; 1.0 for a perfectly flat trace."""
        mean = self.mean()
        if mean == 0:
            return 1.0
        return self.peak() / mean

    # ------------------------------------------------------------------
    # slack metrics (Sec. 2.2, Eq. 1-2)
    # ------------------------------------------------------------------
    def power_slack(self, budget: Number) -> np.ndarray:
        """Instantaneous power slack ``P_budget - P_instant,t`` (Eq. 1)."""
        budget = float(budget)
        if budget < self.peak():
            raise ValueError(
                f"budget {budget:.3f} below trace peak {self.peak():.3f}: "
                "the breaker would trip"
            )
        return budget - self.values

    def energy_slack(self, budget: Number) -> float:
        """Integral of power slack over the trace timespan (Eq. 2).

        Returned in watt-minutes (power unit × minutes).
        """
        slack = self.power_slack(budget)
        return float(slack.sum()) * self.grid.step_minutes

    def energy(self) -> float:
        """Total energy of the trace in watt-minutes."""
        return float(self.values.sum()) * self.grid.step_minutes

    # ------------------------------------------------------------------
    # reshaping over time structure
    # ------------------------------------------------------------------
    def slice(self, start_index: int, stop_index: int) -> "PowerTrace":
        """Contiguous sub-trace covering ``[start_index, stop_index)``."""
        if not 0 <= start_index < stop_index <= self.grid.n_samples:
            raise ValueError(
                f"invalid slice [{start_index}, {stop_index}) for "
                f"{self.grid.n_samples} samples"
            )
        sub_grid = TimeGrid(
            self.grid.start_minute + start_index * self.grid.step_minutes,
            self.grid.step_minutes,
            stop_index - start_index,
        )
        return PowerTrace(sub_grid, self.values[start_index:stop_index])

    def week(self, week_index: int) -> "PowerTrace":
        """The ``week_index``-th whole week of the trace (Eq. 3's ``PI_{i,w}``)."""
        per_week = self.grid.samples_per_week
        n_weeks = self.grid.n_samples // per_week
        if not 0 <= week_index < n_weeks:
            raise IndexError(f"week {week_index} outside trace ({n_weeks} weeks)")
        start = week_index * per_week
        return self.slice(start, start + per_week)

    def split_weeks(self) -> list:
        """All whole weeks of the trace as single-week traces."""
        per_week = self.grid.samples_per_week
        n_weeks = self.grid.n_samples // per_week
        return [self.week(w) for w in range(n_weeks)]

    def average_weeks(self) -> "PowerTrace":
        """Average the trace's weeks into one 7-day trace (Eq. 4).

        Each element of the result is the mean of the readings taken at the
        same time-of-week across all whole weeks of the trace.
        """
        if not self.grid.covers_whole_weeks():
            raise ValueError("trace does not cover whole weeks")
        weeks, per_week = self.grid.week_view_shape()
        stacked = self.values.reshape(weeks, per_week)
        averaged = stacked.mean(axis=0)
        return PowerTrace(self.grid.one_week(), averaged)

    def smooth(self, window_minutes: int) -> "PowerTrace":
        """Centered moving average over ``window_minutes`` (telemetry denoising)."""
        if window_minutes < self.grid.step_minutes:
            return PowerTrace(self.grid, self.values.copy())
        window = max(1, int(round(window_minutes / self.grid.step_minutes)))
        kernel = np.ones(window) / window
        padded = np.concatenate(
            [self.values[: window // 2][::-1], self.values, self.values[-(window // 2) :][::-1]]
        ) if window > 1 else self.values
        smoothed = np.convolve(padded, kernel, mode="same")
        if window > 1:
            half = window // 2
            smoothed = smoothed[half : half + self.grid.n_samples]
        return PowerTrace(self.grid, np.maximum(smoothed, 0.0))

    def hourly_means(self) -> np.ndarray:
        """Mean power per hour-of-day, shape ``(24,)`` — the diurnal profile."""
        hours = self.grid.hours_of_day().astype(int)
        means = np.zeros(24)
        for hour in range(24):
            mask = hours == hour
            if mask.any():
                means[hour] = self.values[mask].mean()
        return means

    def peak_hour(self) -> int:
        """Hour of day (0-23) at which the mean diurnal profile peaks."""
        return int(self.hourly_means().argmax())

    def resample(self, step_minutes: int) -> "PowerTrace":
        """Resample to a coarser grid by block-averaging."""
        if step_minutes == self.grid.step_minutes:
            return PowerTrace(self.grid, self.values.copy())
        if step_minutes % self.grid.step_minutes != 0:
            raise ValueError(
                f"target step {step_minutes} must be a multiple of "
                f"{self.grid.step_minutes}"
            )
        factor = step_minutes // self.grid.step_minutes
        if self.grid.n_samples % factor != 0:
            raise ValueError("trace length is not divisible by the resampling factor")
        blocked = self.values.reshape(-1, factor).mean(axis=1)
        new_grid = TimeGrid(self.grid.start_minute, step_minutes, blocked.shape[0])
        return PowerTrace(new_grid, blocked)


def normalize_traces(traces: Sequence[PowerTrace]) -> list:
    """Normalise traces to the maximum single reading across the set.

    Matches Figure 6's convention: "Y axis is normalized to the maximum power
    reading observed on a single server in the datacenter".
    """
    if not traces:
        return []
    ceiling = max(trace.peak() for trace in traces)
    if ceiling == 0:
        return [PowerTrace(t.grid, t.values.copy()) for t in traces]
    return [trace / ceiling for trace in traces]
