"""Unit tests for the per-power-node flight recorder."""

import numpy as np
import pytest

from repro.obs import events, telemetry
from repro.obs.telemetry import (
    FlightRecorder,
    PrecursorConfig,
    RingBuffer,
    detect_precursors,
)


class TestRingBuffer:
    def test_append_and_array(self):
        buffer = RingBuffer(capacity=4)
        for value in (1.0, 2.0, 3.0):
            buffer.append(value)
        assert len(buffer) == 3
        assert buffer.n_total == 3
        np.testing.assert_allclose(buffer.array(), [1.0, 2.0, 3.0])
        assert buffer.last() == 3.0

    def test_wraparound_keeps_newest(self):
        buffer = RingBuffer(capacity=3)
        for value in range(5):
            buffer.append(float(value))
        assert len(buffer) == 3
        assert buffer.n_total == 5
        np.testing.assert_allclose(buffer.array(), [2.0, 3.0, 4.0])

    def test_extend_matches_appends(self):
        by_append = RingBuffer(capacity=5)
        by_extend = RingBuffer(capacity=5)
        chunks = [np.arange(3.0), np.arange(4.0), np.arange(2.0)]
        for chunk in chunks:
            by_extend.extend(chunk)
            for value in chunk:
                by_append.append(float(value))
        np.testing.assert_allclose(by_extend.array(), by_append.array())
        assert by_extend.n_total == by_append.n_total == 9

    def test_extend_larger_than_capacity(self):
        buffer = RingBuffer(capacity=4)
        buffer.extend(np.arange(10.0))
        np.testing.assert_allclose(buffer.array(), [6.0, 7.0, 8.0, 9.0])

    def test_extend_empty_is_noop(self):
        buffer = RingBuffer(capacity=4)
        buffer.extend(np.array([]))
        assert len(buffer) == 0

    def test_empty_buffer_behaviour(self):
        buffer = RingBuffer(capacity=4)
        assert buffer.summary() == {"count": 0}
        with pytest.raises(ValueError):
            buffer.last()

    def test_summary_moments(self):
        buffer = RingBuffer(capacity=8)
        buffer.extend(np.array([1.0, 3.0, 2.0]))
        summary = buffer.summary()
        assert summary["count"] == 3
        assert summary["retained"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["last"] == 2.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


class TestFlightRecorder:
    def test_record_scalar_and_array(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record("dc/rpp0", "utilization", 0.5)
        recorder.record("dc/rpp0", "utilization", np.array([0.6, 0.7]))
        np.testing.assert_allclose(
            recorder.series("dc/rpp0", "utilization"), [0.5, 0.6, 0.7]
        )

    def test_paths_and_names(self):
        recorder = FlightRecorder()
        recorder.record("a", "utilization", 1.0)
        recorder.record("b", "slack", 2.0)
        recorder.record("a", "slack", 3.0)
        assert recorder.paths() == ["a", "b"]
        assert set(recorder.names("a")) == {"utilization", "slack"}

    def test_summary_shape(self):
        recorder = FlightRecorder()
        recorder.record("dc", "utilization", np.array([0.2, 0.4]))
        summary = recorder.summary()
        assert summary["dc"]["utilization"]["count"] == 2
        assert recorder.to_dict()["capacity"] == recorder.capacity


class TestPrecursorDetection:
    def test_rising_ramp_fires_trend(self):
        # Climbs steadily toward the ceiling but never crosses it.
        utilization = np.linspace(0.5, 0.99, 60)
        found = detect_precursors(
            utilization, PrecursorConfig(window=6, horizon=12, warning_fraction=0.999)
        )
        assert found
        assert any(p.reason == "trend" for p in found)
        assert all(p.slope_per_step > 0 for p in found if p.reason == "trend")

    def test_flat_series_is_quiet(self):
        utilization = np.full(60, 0.5)
        assert detect_precursors(utilization) == []

    def test_warning_band_fires_without_slope(self):
        utilization = np.full(30, 0.97)
        found = detect_precursors(
            utilization, PrecursorConfig(warning_fraction=0.95)
        )
        # Constant series: one run start, reason is the band not the trend.
        assert len(found) == 1
        assert found[0].reason == "warning_band"
        assert found[0].index == 0

    def test_violating_steps_do_not_fire(self):
        utilization = np.full(30, 1.2)
        assert detect_precursors(utilization) == []

    def test_consecutive_firing_collapses_to_run_starts(self):
        utilization = np.concatenate(
            [np.full(10, 0.5), np.full(10, 0.97), np.full(10, 0.5), np.full(10, 0.97)]
        )
        found = detect_precursors(utilization, PrecursorConfig(window=12, horizon=1))
        band = [p for p in found if p.reason == "warning_band"]
        assert [p.index for p in band] == [10, 30]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrecursorConfig(window=1)
        with pytest.raises(ValueError):
            PrecursorConfig(horizon=0)
        with pytest.raises(ValueError):
            PrecursorConfig(warning_fraction=0.0)


class TestRecordPower:
    def test_noop_when_nothing_installed(self):
        assert telemetry.get_recorder() is None
        assert events.get_event_log() is None
        # Must not raise, must not allocate anything observable.
        telemetry.record_power("dc", np.array([1.0, 2.0]), 10.0)

    def test_series_recorded(self):
        power = np.array([4.0, 8.0, 6.0])
        with telemetry.recording() as recorder:
            telemetry.record_power("dc/rpp0", power, 10.0)
        np.testing.assert_allclose(
            recorder.series("dc/rpp0", "utilization"), [0.4, 0.8, 0.6]
        )
        np.testing.assert_allclose(recorder.series("dc/rpp0", "slack"), [6.0, 2.0, 4.0])
        # Headroom uses the running peak, so it never recovers.
        np.testing.assert_allclose(
            recorder.series("dc/rpp0", "headroom"), [6.0, 2.0, 2.0]
        )
        np.testing.assert_allclose(recorder.series("dc/rpp0", "capped"), [4.0, 8.0, 6.0])

    def test_violation_event_per_contiguous_run(self):
        power = np.array([5.0, 12.0, 13.0, 5.0, 11.0, 5.0])
        with events.recording() as log:
            telemetry.record_power("dc/sb0", power, 10.0, step_minutes=30.0)
        violations = log.by_kind(events.VIOLATION)
        assert len(violations) == 2
        first, second = violations
        assert first.fields["start_index"] == 1
        assert first.fields["duration_samples"] == 2
        assert first.fields["duration_minutes"] == 60.0
        assert first.fields["peak_overload_watts"] == pytest.approx(3.0)
        assert second.fields["start_index"] == 4
        assert second.fields["duration_samples"] == 1

    def test_violation_run_reaching_end_of_trace(self):
        power = np.array([5.0, 12.0, 12.0])
        with events.recording() as log:
            telemetry.record_power("dc", power, 10.0)
        (violation,) = log.by_kind(events.VIOLATION)
        assert violation.fields["start_index"] == 1
        assert violation.fields["duration_samples"] == 2

    def test_advisory_for_warning_band(self):
        power = np.full(30, 9.7)
        with events.recording() as log:
            telemetry.record_power("dc", power, 10.0)
        advisories = log.by_kind(events.ADVISORY)
        assert len(advisories) == 1
        assert advisories[0].fields["reason"] == "warning_band"

    def test_nonpositive_budget_skipped(self):
        with telemetry.recording() as recorder:
            telemetry.record_power("dc", np.array([1.0]), 0.0)
        assert recorder.paths() == []

    def test_recording_restores_previous(self):
        with telemetry.recording() as outer:
            with telemetry.recording() as inner:
                telemetry.record("p", "s", 1.0)
            assert telemetry.get_recorder() is outer
        assert telemetry.get_recorder() is None
        assert inner.paths() == ["p"]
        assert outer.paths() == []


class TestRecordView:
    def test_records_every_budgeted_node(self):
        from repro.analysis import experiments
        from repro.infra.aggregation import NodePowerView
        from repro.infra.budget import provision_hierarchical

        dc = experiments.get_datacenter("DC1", n_instances=48)
        view = NodePowerView(
            dc.topology, experiments.run_placement_study(dc).optimized.assignment,
            dc.test_traces(),
        )
        provision_hierarchical(view, margin=0.05)
        with telemetry.recording() as recorder:
            recorded = telemetry.record_view(view)
        budgeted = [n for n in dc.topology.nodes() if n.budget_watts is not None]
        assert recorded == len(budgeted)
        assert set(recorder.paths()) == {n.name for n in budgeted}
        for path in recorder.paths():
            assert set(recorder.names(path)) == set(telemetry.SERIES_NAMES)

    def test_noop_when_nothing_installed(self):
        class _Boom:
            def __getattr__(self, name):
                raise AssertionError("record_view touched a disabled view")

        assert telemetry.record_view(_Boom()) == 0


class TestRecordDelta:
    def _fleet(self):
        import numpy as np

        from repro.infra import Assignment, NodePowerView, build_topology, two_level_spec
        from repro.infra.budget import provision_from_view
        from repro.traces import TimeGrid, TraceSet

        grid = TimeGrid(0, 60, 24)
        rng = np.random.default_rng(3)
        topo = build_topology(two_level_spec("dc", leaves=3, leaf_capacity=4))
        ids = [f"i{k}" for k in range(9)]
        traces = TraceSet(grid, ids, rng.uniform(1, 10, size=(9, 24)))
        mapping = {ids[k]: topo.leaf_names()[k % 3] for k in range(9)}
        view = NodePowerView(topo, Assignment(topo, mapping), traces)
        provision_from_view(view, margin=0.1)
        return topo, view

    def test_records_only_dirty_budgeted_nodes(self):
        from repro.engine.delta import FleetDelta

        topo, view = self._fleet()
        dirty = view.apply_delta(FleetDelta.swap("i0", "dc/rpp0", "i1", "dc/rpp1"))
        with telemetry.recording() as recorder:
            recorded = telemetry.record_delta(view, dirty)
        budgeted_dirty = [
            name for name in dirty if topo.node(name).budget_watts is not None
        ]
        assert recorded == len(budgeted_dirty)
        assert set(recorder.paths()) == set(budgeted_dirty)
        # The untouched leaf stays out of the feed.
        assert "dc/rpp2" not in recorder.paths()

    def test_noop_when_nothing_installed(self):
        class _Boom:
            def __getattr__(self, name):
                raise AssertionError("record_delta touched a disabled view")

        assert telemetry.record_delta(_Boom(), ["x"]) == 0
