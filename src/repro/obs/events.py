"""Structured event log: what the simulated power system *did*, in order.

Spans (:mod:`repro.obs.spans`) observe the code; this module observes the
system.  Instrumented sites — the reshaping runtime, the remapping swap
loop, the chaos harness, the breaker/capping infrastructure, the
fragmentation monitor — call :func:`emit` with a *kind* and free-form
fields; when a log is installed via :func:`recording`, every call appends
an :class:`Event` carrying a monotonic sequence number and, when a tracer
is active, the id and path of the innermost open span (so the JSONL log
can be joined back against the span-tree profile).  With no log installed,
:func:`emit` is a near-free no-op.

Canonical kinds (the constants below) cover the behaviours the paper cares
about: budget violations, breaker trips, conversion actions, throttle and
boost actions, swap accept/reject decisions, fault injections, capping
interventions, and monitoring advisories.

Typical use::

    from repro.obs import events

    with events.recording() as log:
        run_scenario()
    log.write("events.jsonl")
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from . import spans as _spans

__all__ = [
    "ADVISORY",
    "BOOST",
    "BREAKER_TRIP",
    "CAPPING",
    "CONVERSION",
    "Event",
    "EventLog",
    "FAULT_INJECTION",
    "POOL_DEGRADED",
    "SHARD_QUARANTINE",
    "SPECULATIVE_DISPATCH",
    "SWAP_ACCEPT",
    "SWAP_REJECT",
    "TASK_ERROR",
    "TASK_TIMEOUT",
    "THROTTLE",
    "VIOLATION",
    "emit",
    "get_event_log",
    "recording",
]

# ----------------------------------------------------------------------
# canonical event kinds
# ----------------------------------------------------------------------
VIOLATION = "violation"  # a node's aggregate power exceeded its budget
BREAKER_TRIP = "breaker_trip"  # the overload persisted long enough to trip
CONVERSION = "conversion"  # conversion servers changed pools
THROTTLE = "throttle"  # batch fleet throttled during LC-heavy Phase
BOOST = "boost"  # batch fleet boosted into slack
SWAP_ACCEPT = "swap_accept"  # remapping accepted an instance exchange
SWAP_REJECT = "swap_reject"  # remapping found no acceptable exchange
FAULT_INJECTION = "fault_injection"  # a chaos fault was applied
CAPPING = "capping"  # the capping loop shed power at a node
ADVISORY = "advisory"  # a precursor/monitoring finding, pre-violation
TASK_ERROR = "task_error"  # a pool task raised inside a worker process
TASK_TIMEOUT = "task_timeout"  # the watchdog killed a task past its deadline
SPECULATIVE_DISPATCH = "speculative_dispatch"  # a straggler got a twin
SHARD_QUARANTINE = "shard_quarantine"  # a poison shard moved to in-process
POOL_DEGRADED = "pool_degraded"  # the stage circuit breaker tripped to serial


@dataclass(frozen=True)
class Event:
    """One structured log entry.

    ``seq`` is monotonic within the log it was recorded into; ``span_id``
    and ``span_path`` tie the event to the innermost span open when it was
    emitted (``None`` outside any traced region).
    """

    seq: int
    kind: str
    severity: str  # "info" | "advisory" | "warning" | "critical"
    source: str  # emitting subsystem or topology path
    fields: Dict[str, object] = field(default_factory=dict)
    span_id: Optional[int] = None
    span_path: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "severity": self.severity,
            "source": self.source,
        }
        if self.fields:
            payload["fields"] = dict(self.fields)
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.span_path is not None:
            payload["span_path"] = self.span_path
        return payload


class EventLog:
    """An append-only, sequence-numbered list of :class:`Event` objects."""

    __slots__ = ("_events", "_seq")

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._seq = 0

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        severity: str = "info",
        source: str = "",
        **fields: object,
    ) -> Event:
        """Append one event, stamping sequence number and span correlation."""
        span_id: Optional[int] = None
        span_path: Optional[str] = None
        tracer = _spans.get_tracer()
        if tracer is not None:
            current = tracer.current()
            if current is not None:
                span_id = current.span_id
                span_path = "/".join(tracer.stack_names())
        self._seq += 1
        event = Event(
            seq=self._seq,
            kind=kind,
            severity=severity,
            source=source,
            fields=fields,
            span_id=span_id,
            span_path=span_path,
        )
        self._events.append(event)
        return event

    def append(self, event: Event) -> Event:
        """Append a pre-built event, restamping only its sequence number.

        Unlike :meth:`emit` this preserves the event's span correlation as
        given instead of sampling the coordinator's open span — it is the
        merge path for events shipped from worker processes, whose
        ``span_id`` has already been remapped onto the rebuilt span tree.
        """
        self._seq += 1
        stamped = Event(
            seq=self._seq,
            kind=event.kind,
            severity=event.severity,
            source=event.source,
            fields=dict(event.fields),
            span_id=event.span_id,
            span_path=event.span_path,
        )
        self._events.append(stamped)
        return stamped

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def by_kind(self, kind: str) -> List[Event]:
        return [event for event in self._events if event.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The whole log as JSON Lines (one compact object per event)."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True, default=str)
            for event in self._events
        )

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSONL log to ``path`` (trailing newline included)."""
        path = pathlib.Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "")
        return path


# ----------------------------------------------------------------------
# module-level API: a process-global active log
#
# Unlike the tracer the event log is process-global, not thread-local: the
# system-level record should interleave every worker's events in one
# sequence.  ``list.append`` is atomic under the GIL, so concurrent emits
# are safe (sequence numbers may race only across threads, never within
# one).
# ----------------------------------------------------------------------
_ACTIVE: Optional[EventLog] = None


def get_event_log() -> Optional[EventLog]:
    """The currently installed event log, if recording is on."""
    return _ACTIVE


def emit(
    kind: str, *, severity: str = "info", source: str = "", **fields: object
) -> Optional[Event]:
    """Emit to the active log (cheap no-op returning ``None`` when none)."""
    log = _ACTIVE
    if log is None:
        return None
    return log.emit(kind, severity=severity, source=source, **fields)


class recording:
    """Install an event log as the process-global active log.

    ::

        with events.recording() as log:
            run_scenario()
        log.write("events.jsonl")

    Nesting restores the previously active log on exit.
    """

    __slots__ = ("log", "_previous")

    def __init__(self, log: Optional[EventLog] = None) -> None:
        self.log = log if log is not None else EventLog()
        self._previous: Optional[EventLog] = None

    def __enter__(self) -> EventLog:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.log
        return self.log

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False
